//! Workspace root of the density-contrast reproduction.
//!
//! This package exists to host the workspace-wide integration tests (`tests/`)
//! and the runnable examples (`examples/`); the library surface lives in the
//! [`dcs`] facade crate and the crates it re-exports.  See `README.md` for the
//! workspace map.

#![forbid(unsafe_code)]

pub use dcs;
pub use dcs_server;

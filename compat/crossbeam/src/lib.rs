//! Offline shim for the `crossbeam` crate.
//!
//! Two pieces of the upstream API are provided:
//!
//! * the scoped-thread API ([`scope`] + [`Scope::spawn`]), implemented on top
//!   of `std::thread::scope` (stable since Rust 1.63).  One behavioural
//!   difference: a panicking child thread propagates its panic when the scope
//!   joins instead of being captured into the returned `Result`, so callers'
//!   `.expect(...)` never observes `Err` — acceptable for the workspace,
//!   which only uses the panic path to abort;
//! * the work-stealing deques of `crossbeam-deque` (the [`deque`] module:
//!   `Worker` / `Stealer` / `Injector` / `Steal`), mutex-backed.

pub mod deque;

use std::thread;

/// Handle passed to the closure of [`scope`]; spawns scoped worker threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread.  The closure receives a [`Scope`] handle so
    /// nested spawns are possible (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Creates a scope in which threads borrowing from the enclosing stack frame
/// can be spawned; all spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_locals() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let data = vec![1usize, 2, 3, 4];
        super::scope(|s| {
            for &x in &data {
                s.spawn(move |_| {
                    counter_ref.fetch_add(x, Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn scope_returns_the_closure_value() {
        let out = super::scope(|_| 7).expect("scope");
        assert_eq!(out, 7);
    }
}

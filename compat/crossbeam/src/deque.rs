//! Offline shim for `crossbeam-deque`: the work-stealing deque triple
//! ([`Worker`] / [`Stealer`] / [`Injector`]) with the upstream API shape.
//!
//! The real crate uses lock-free Chase–Lev deques; this shim uses a
//! `Mutex<VecDeque>` per queue.  That is slower under heavy contention but
//! observationally identical: `pop` takes from the worker's own end, `steal`
//! takes from the opposite end, and the [`Steal`] enum distinguishes an empty
//! queue from a lost race (the shim never loses races, so `Retry` is never
//! returned — callers must still handle it to stay source-compatible with the
//! real crate).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The attempt lost a race and should be retried (never produced by this
    /// shim, kept for API compatibility).
    Retry,
}

impl<T> Steal<T> {
    /// The stolen task, if the attempt succeeded.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(task) => Some(task),
            _ => None,
        }
    }

    /// Whether the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// Whether a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// Whether the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

/// A worker-owned queue: the owner pushes and pops locally, other threads
/// steal through [`Stealer`] handles from the opposite end.
#[derive(Debug)]
pub struct Worker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
    flavor: Flavor,
}

impl<T> Worker<T> {
    /// A FIFO worker queue: `pop` takes the oldest task (the same end steals
    /// come from, so local order matches global order).
    pub fn new_fifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            flavor: Flavor::Fifo,
        }
    }

    /// A LIFO worker queue: `pop` takes the most recently pushed task while
    /// steals still take the oldest.
    pub fn new_lifo() -> Self {
        Worker {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            flavor: Flavor::Lifo,
        }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.inner.lock().expect("deque poisoned").push_back(task);
    }

    /// Pops a task from the owner's end (per the queue's flavor).
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().expect("deque poisoned");
        match self.flavor {
            Flavor::Fifo => q.pop_front(),
            Flavor::Lifo => q.pop_back(),
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("deque poisoned").is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }

    /// Creates a new stealer handle onto this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A handle other threads use to steal from a [`Worker`]'s queue.
#[derive(Debug)]
pub struct Stealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Steals the oldest task from the queue.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().expect("deque poisoned").pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("deque poisoned").is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque poisoned").len()
    }
}

/// A shared FIFO injector queue: any thread pushes, any thread steals.
#[derive(Debug, Default)]
pub struct Injector<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task onto the queue.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .expect("injector poisoned")
            .push_back(task);
    }

    /// Steals the oldest task from the queue.
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().expect("injector poisoned").pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().expect("injector poisoned").is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("injector poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_pop_and_steal_take_the_oldest() {
        let w: Worker<u32> = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert!(s.steal().is_empty());
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn lifo_pop_takes_newest_but_steal_takes_oldest() {
        let w: Worker<u32> = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_is_fifo_and_shared() {
        let inj: Injector<u32> = Injector::new();
        inj.push(7);
        inj.push(8);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal().success(), Some(7));
        assert_eq!(inj.steal().success(), Some(8));
        assert!(inj.steal().is_empty());
        assert!(inj.is_empty());
    }

    #[test]
    fn stealers_work_across_threads() {
        let w: Worker<usize> = Worker::new_fifo();
        for i in 0..100 {
            w.push(i);
        }
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let total = &total;
                scope.spawn(move || {
                    while let Some(v) = s.steal().success() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            total.load(std::sync::atomic::Ordering::Relaxed),
            99 * 100 / 2
        );
        assert!(w.is_empty());
    }
}

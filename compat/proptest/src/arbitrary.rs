//! `any::<T>()` — canonical strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite floats over a wide range (no NaN/infinities).
        (rng.unit_f64() - 0.5) * 2e9
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated values readable.
        char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or('?')
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

//! String generation from simplified regex patterns.
//!
//! Supports the pattern subset the workspace's property tests use: literal
//! characters, `\`-escapes, character classes (`[a-z0-9_./-]` with ranges and
//! literal symbols) and the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+`
//! (unbounded quantifiers cap at 8 repetitions).  Unsupported syntax panics,
//! so a silently wrong generator cannot masquerade as coverage.

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    /// A character class: the expanded list of candidate characters.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let span = (piece.max - piece.min + 1) as u64;
        let count = piece.min + rng.below(span) as usize;
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(chars) => {
                    let idx = rng.below(chars.len() as u64) as usize;
                    out.push(chars[idx]);
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next;
                Atom::Class(class)
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Literal(c)
            }
            '(' | ')' | '|' | '^' | '$' => {
                panic!(
                    "unsupported regex syntax {:?} in pattern {pattern:?}",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i, pattern);
        i = next;
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
    let mut class = Vec::new();
    if chars.get(i) == Some(&'^') {
        panic!("negated character classes are not supported in pattern {pattern:?}");
    }
    while let Some(&c) = chars.get(i) {
        match c {
            ']' => return (class, i + 1),
            '\\' => {
                let escaped = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                class.push(escaped);
                i += 2;
            }
            _ => {
                // A range `a-z` (the `-` must not be the last class member).
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                    let (lo, hi) = (c, chars[i + 2]);
                    assert!(lo <= hi, "inverted range {lo}-{hi} in pattern {pattern:?}");
                    for code in lo as u32..=hi as u32 {
                        if let Some(ch) = char::from_u32(code) {
                            class.push(ch);
                        }
                    }
                    i += 3;
                } else {
                    class.push(c);
                    i += 1;
                }
            }
        }
    }
    panic!("unterminated character class in pattern {pattern:?}");
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = body
                        .parse()
                        .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in {pattern:?}"));
                    (n, n)
                }
                Some((lo, hi)) => {
                    let lo = lo
                        .parse()
                        .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in {pattern:?}"));
                    let hi = if hi.is_empty() {
                        lo + 8
                    } else {
                        hi.parse()
                            .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in {pattern:?}"))
                    };
                    (lo, hi)
                }
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            (min, max, close + 1)
        }
        _ => (1, 1, i),
    }
}

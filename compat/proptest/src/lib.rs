//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! strategies built from ranges, tuples, `Just`, `any::<T>()`, simple
//! regex-like string patterns, `prop::sample::select`, `prop_oneof!`,
//! `proptest::collection::vec`, `.prop_map` / `.prop_flat_map`, and the
//! `proptest!` / `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from the real crate: inputs are generated from a deterministic
//! per-test RNG (seeded from the test name), there is **no shrinking** — a
//! failing case reports the generated inputs as-is — and rejected cases
//! (`prop_assume!`) simply retry up to a bounded number of attempts.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

/// Everything a property-test module usually imports.
pub mod prelude {
    /// Module alias so `prop::sample::select(..)`, `prop::collection::vec(..)`
    /// etc. work after a glob import, as with the real crate.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body for many generated inputs.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(64);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    let values = ( $( $crate::strategy::Strategy::generate(&($strat), &mut rng), )+ );
                    let rendered = format!("{:?}", values);
                    let ( $($pat,)+ ) = values;
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed on case {}: {}\ninputs: {}",
                                stringify!($name), accepted + 1, msg, rendered
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the current case (without
/// panicking past the runner) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    };
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left != *right,
                    "assertion failed: {} != {} (both {:?})",
                    stringify!($left),
                    stringify!($right),
                    left
                );
            }
        }
    };
}

/// Rejects the current case (it is retried with fresh inputs, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let mut union = $crate::strategy::Union::empty();
        $( union.push($weight as u32, $strat); )+
        union
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![ $(1 => $strat),+ ]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Token {
        Word(String),
        Number(u32),
    }

    fn arb_token() -> impl Strategy<Value = Token> {
        let word = "[a-z]{1,6}".prop_map(Token::Word);
        let number = (0u32..100).prop_map(Token::Number);
        prop_oneof![2 => word, 1 => number]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u32..15), x in -2.0f64..2.0) {
            prop_assert!(a < 10);
            prop_assert!((5..15).contains(&b));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_and_flat_map(xs in (1usize..6).prop_flat_map(|n| prop::collection::vec(0u32..(n as u32 + 1), n))) {
            prop_assert!(!xs.is_empty() && xs.len() < 6);
        }

        #[test]
        fn exact_size_vec(bits in prop::collection::vec(any::<bool>(), 24)) {
            prop_assert_eq!(bits.len(), 24);
        }

        #[test]
        fn select_and_oneof(token in arb_token(), name in prop::sample::select(vec!["a", "b"])) {
            match &token {
                Token::Word(w) => prop_assert!((1..=6).contains(&w.len())),
                Token::Number(n) => prop_assert!(*n < 100),
            }
            prop_assert!(name == "a" || name == "b");
            prop_assert_ne!(name, "c");
        }

        #[test]
        fn patterns_match_their_alphabet(s in "[a-z][a-z0-9_./-]{0,12}") {
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(s.len() <= 13);
            for c in chars {
                prop_assert!(c.is_ascii_lowercase() || c.is_ascii_digit() || "_./-".contains(c), "bad char {c:?}");
            }
        }

        #[test]
        fn assume_retries(n in 0u32..20) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn inner(n in 0u32..10) {
                prop_assert!(n < 10_000);
                prop_assert!(n == 10_000, "n was {}", n);
            }
        }
        inner();
    }
}

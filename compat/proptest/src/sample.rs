//! Sampling strategies (`proptest::sample::select`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Picks uniformly from a fixed list of options.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone + Debug> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}

//! Test-runner support types: configuration, case outcome, and the
//! deterministic RNG driving input generation.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case: an assertion failure or a rejection
/// (`prop_assume!`).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the payload is the failure message.
    Fail(String),
    /// The inputs do not satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure outcome.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection outcome.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// The RNG strategies draw from.  Deterministic: each property seeds it from
/// its own module path + name, so runs are reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test's identity).
    pub fn deterministic(name: &str) -> Self {
        let mut seed: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100000001b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform value in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

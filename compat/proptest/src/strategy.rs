//! The [`Strategy`] trait and its combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate` draws
/// one concrete value.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, builds a second strategy from it, and
    /// draws the final value from that strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T: Debug> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T: Debug> Union<T> {
    /// An empty union; `prop_oneof!` pushes at least one option.
    pub fn empty() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds an option with the given weight.
    pub fn push<S: Strategy<Value = T> + 'static>(&mut self, weight: u32, strategy: S) {
        self.options.push((weight, Box::new(strategy)));
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted option");
        let mut pick = rng.below(total);
        for (weight, strategy) in &self.options {
            if pick < *weight as u64 {
                return strategy.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---- ranges as strategies -------------------------------------------------

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
}

// ---- string patterns ------------------------------------------------------

impl Strategy for &str {
    type Value = String;

    /// A string literal is a simplified-regex pattern (see [`crate::string`]).
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, F);

//! Collection strategies (`proptest::collection::vec`).

use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec()`]: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

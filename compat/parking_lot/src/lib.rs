//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free API: `lock()`
//! returns the guard directly (a poisoned std mutex is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}

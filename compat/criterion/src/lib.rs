//! Offline shim for the `criterion` crate.
//!
//! Keeps the workspace's benches compiling and runnable (`cargo bench`)
//! without the real statistics engine: each benchmark is warmed up once and
//! then timed over `sample_size` iterations, reporting the mean per-iteration
//! wall-clock time.  The API mirrors the subset the benches use:
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId::new`, `Bencher::iter`, `criterion_group!`/`criterion_main!`
//! and `black_box`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter (rendered as
    /// `name/parameter` like the real crate).
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call outside the timed region.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let sample_size = self.sample_size;
        run_one("", &id.into(), sample_size, f);
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_one(&self.name, &id.into(), self.sample_size, f);
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
    }

    /// Finishes the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    let label = if group.is_empty() {
        id.name.clone()
    } else {
        format!("{group}/{}", id.name)
    };
    println!(
        "bench {label:<60} {:>12.3} ms/iter ({} iters)",
        per_iter.as_secs_f64() * 1e3,
        bencher.iterations
    );
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sum");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("to", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("input", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn group_macro_runs_everything() {
        benches();
    }
}

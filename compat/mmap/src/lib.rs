//! Offline shim for read-only memory-mapped file IO.
//!
//! The build environment has no access to crates.io, so the small slice of
//! `memmap2`-style functionality the workspace needs is hand-rolled here: a
//! read-only [`Mmap`] over a file (raw `mmap`/`munmap` externs on unix, a
//! read-into-`Vec` fallback everywhere else and whenever the syscall fails),
//! and [`ArcSlice`], a cheaply clonable typed view into an `Arc<Mmap>` that
//! lets zero-copy consumers hand out `&[u32]` / `&[f64]` / `&[usize]` slices
//! over the mapped bytes without copying them.
//!
//! This crate is the **only** place in the workspace that contains `unsafe`
//! code for file mapping; every consumer (notably `dcs-graph`, which is
//! `#![forbid(unsafe_code)]`) works through the safe API below.
//!
//! ## Soundness caveat (shared with every mmap wrapper)
//!
//! A mapping reflects the file as the kernel sees it: if another process
//! truncates or rewrites the file while it is mapped, the contents behind a
//! previously returned slice can change (or, on truncation, fault).  Callers
//! that need tamper *detection* should checksum the mapped bytes; callers
//! that need full isolation should use [`Mmap::read`], which copies the file
//! into an owned buffer up front.

#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    /// `(void *)-1`, the error sentinel returned by `mmap`.
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> i32;
    }
}

/// A read-only view of an entire file: memory-mapped when the platform and
/// the kernel cooperate, an owned in-memory copy otherwise.  Which one you
/// got is reported by [`Mmap::is_mapped`]; the byte-level API is identical.
pub struct Mmap {
    inner: Inner,
}

enum Inner {
    #[cfg(unix)]
    Mapped(MappedRegion),
    Owned(Vec<u8>),
}

#[cfg(unix)]
struct MappedRegion {
    ptr: *const u8,
    len: usize,
}

// The region is read-only (PROT_READ, MAP_PRIVATE) and owned uniquely by this
// struct until munmap in Drop, so moving it across threads is fine.
#[cfg(unix)]
unsafe impl Send for MappedRegion {}
#[cfg(unix)]
unsafe impl Sync for MappedRegion {}

#[cfg(unix)]
impl Drop for MappedRegion {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from a successful mmap call and are unmapped
        // exactly once.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
        }
    }
}

impl Mmap {
    /// Maps `file` read-only.  Falls back to [`Mmap::read`] when mapping is
    /// unsupported (non-unix targets, empty files) or the syscall fails, so
    /// this never errors merely because mmap is unavailable.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: a fresh read-only private mapping of a file descriptor
            // we hold open; the result is checked against MAP_FAILED before
            // use and unmapped exactly once in Drop.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != sys::MAP_FAILED && !ptr.is_null() {
                return Ok(Mmap {
                    inner: Inner::Mapped(MappedRegion {
                        ptr: ptr as *const u8,
                        len,
                    }),
                });
            }
        }
        Self::read_known_len(file, len)
    }

    /// Reads the whole file into an owned buffer behind the same API — the
    /// portability/testing fallback, and the right choice when the file may
    /// be modified while open.
    pub fn read(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to read"))?;
        Self::read_known_len(file, len)
    }

    fn read_known_len(file: &File, len: usize) -> io::Result<Mmap> {
        let mut bytes = Vec::with_capacity(len);
        let mut reader = file;
        reader.seek(SeekFrom::Start(0))?;
        reader.take(len as u64).read_to_end(&mut bytes)?;
        Ok(Mmap {
            inner: Inner::Owned(bytes),
        })
    }

    /// Wraps an in-memory buffer behind the `Mmap` API (used by tests and by
    /// writers that verify what they just produced).
    pub fn from_vec(bytes: Vec<u8>) -> Mmap {
        Mmap {
            inner: Inner::Owned(bytes),
        }
    }

    /// The full contents as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping held until
            // Drop.
            Inner::Mapped(region) => unsafe { std::slice::from_raw_parts(region.ptr, region.len) },
            Inner::Owned(bytes) => bytes,
        }
    }

    /// Length of the file in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(region) => region.len,
            Inner::Owned(bytes) => bytes.len(),
        }
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the contents are an actual kernel mapping (zero-copy),
    /// `false` when they were read into an owned buffer.
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped(_) => true,
            Inner::Owned(_) => false,
        }
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

mod sealed {
    pub trait Sealed {}
}

/// Plain-old-data element types that may alias raw mapped bytes: every bit
/// pattern of `Self` is a valid value and the type has no padding or
/// pointers.  Sealed — the soundness of [`ArcSlice`] rests on this list.
pub trait Pod: sealed::Sealed + Copy + 'static {}

macro_rules! impl_pod {
    ($($t:ty),*) => {
        $(impl sealed::Sealed for $t {}
          impl Pod for $t {})*
    };
}

// f32/f64 are included deliberately: every bit pattern (NaNs included) is a
// valid float value, so reinterpreting bytes cannot produce UB — semantic
// validation (finiteness etc.) is the consumer's job.
impl_pod!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A cheaply clonable, `'static` typed slice view into an [`Arc<Mmap>`].
///
/// Cloning bumps the `Arc`; the underlying mapping lives as long as any view
/// into it.  Construction checks bounds and alignment, so `Deref` is
/// infallible.
pub struct ArcSlice<T: Pod> {
    /// Keeps the mapping alive; never read through directly.
    _owner: Arc<Mmap>,
    ptr: *const T,
    len: usize,
    _marker: PhantomData<T>,
}

// SAFETY: the view is read-only plain data kept alive by the Arc'd owner.
unsafe impl<T: Pod> Send for ArcSlice<T> {}
unsafe impl<T: Pod> Sync for ArcSlice<T> {}

impl<T: Pod> ArcSlice<T> {
    /// A typed view of `len` elements starting `byte_offset` bytes into
    /// `owner`.  Returns `None` if the range leaves the file or the start is
    /// not aligned for `T`.  Elements are reinterpreted in **native** byte
    /// order — callers on disk formats must gate on endianness themselves.
    pub fn new(owner: Arc<Mmap>, byte_offset: usize, len: usize) -> Option<ArcSlice<T>> {
        let byte_len = len.checked_mul(std::mem::size_of::<T>())?;
        let end = byte_offset.checked_add(byte_len)?;
        if end > owner.len() {
            return None;
        }
        let base = owner.as_bytes().as_ptr();
        // SAFETY: byte_offset <= owner.len() was just checked, so the add
        // stays inside (one past) the allocation.
        let start = unsafe { base.add(byte_offset) };
        if len > 0 && !(start as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return None;
        }
        let ptr = if len == 0 {
            std::ptr::NonNull::<T>::dangling().as_ptr() as *const T
        } else {
            start as *const T
        };
        Some(ArcSlice {
            _owner: owner,
            ptr,
            len,
            _marker: PhantomData,
        })
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Pod> Deref for ArcSlice<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        // SAFETY: construction checked bounds and alignment, the owner is
        // kept alive by the Arc, and T: Pod means any byte pattern is valid.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Pod> Clone for ArcSlice<T> {
    fn clone(&self) -> Self {
        ArcSlice {
            _owner: Arc::clone(&self._owner),
            ptr: self.ptr,
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for ArcSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("mmap_shim_{name}_{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn map_and_read_agree() {
        let data: Vec<u8> = (0..=255).collect();
        let path = temp_file("agree", &data);
        let f = File::open(&path).unwrap();
        let mapped = Mmap::map(&f).unwrap();
        let read = Mmap::read(&f).unwrap();
        assert_eq!(mapped.as_bytes(), &data[..]);
        assert_eq!(read.as_bytes(), &data[..]);
        assert!(!read.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[cfg(unix)]
    #[test]
    fn unix_map_is_zero_copy() {
        let path = temp_file("zero_copy", &[7u8; 4096]);
        let f = File::open(&path).unwrap();
        let mapped = Mmap::map(&f).unwrap();
        assert!(mapped.is_mapped());
        assert_eq!(mapped.len(), 4096);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let path = temp_file("empty", &[]);
        let f = File::open(&path).unwrap();
        let mapped = Mmap::map(&f).unwrap();
        assert!(mapped.is_empty());
        assert!(!mapped.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn arc_slice_views_typed_data() {
        let mut bytes = Vec::new();
        for v in [1u64, 2, 3, 4] {
            bytes.extend_from_slice(&v.to_ne_bytes());
        }
        let owner = Arc::new(Mmap::from_vec(bytes));
        let slice: ArcSlice<u64> = ArcSlice::new(Arc::clone(&owner), 0, 4).unwrap();
        assert_eq!(&*slice, &[1, 2, 3, 4]);
        let tail: ArcSlice<u64> = ArcSlice::new(Arc::clone(&owner), 8, 3).unwrap();
        assert_eq!(&*tail, &[2, 3, 4]);
        let clone = tail.clone();
        assert_eq!(&*clone, &*tail);
    }

    #[test]
    fn arc_slice_rejects_out_of_bounds_and_misalignment() {
        let owner = Arc::new(Mmap::from_vec(vec![0u8; 64]));
        assert!(ArcSlice::<u64>::new(Arc::clone(&owner), 0, 9).is_none());
        assert!(ArcSlice::<u64>::new(Arc::clone(&owner), 60, 1).is_none());
        assert!(ArcSlice::<u64>::new(Arc::clone(&owner), 3, 1).is_none());
        assert!(ArcSlice::<u64>::new(Arc::clone(&owner), usize::MAX, 1).is_none());
        let empty = ArcSlice::<u64>::new(owner, 64, 0).unwrap();
        assert!(empty.is_empty());
    }
}

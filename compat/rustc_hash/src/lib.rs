//! Offline shim for the `rustc-hash` crate.
//!
//! Provides [`FxHasher`] (the multiply-rotate hash used by rustc) and the
//! [`FxHashMap`]/[`FxHashSet`] aliases the workspace uses.  The hash function
//! follows the published FxHash algorithm, so behaviour matches the real crate
//! for all practical purposes (it is not a drop-in bit-for-bit guarantee and
//! carries no DoS resistance, exactly like the original).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash hasher: fast, deterministic, not hash-flood resistant.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        map.insert((1, 2), 0.5);
        map.insert((3, 4), 1.5);
        assert_eq!(map.get(&(1, 2)), Some(&0.5));
        let mut set: FxHashSet<Vec<u32>> = FxHashSet::default();
        assert!(set.insert(vec![1, 2, 3]));
        assert!(!set.insert(vec![1, 2, 3]));
    }

    #[test]
    fn hashing_is_deterministic() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"abcdefgh12"), hash(b"abcdefgh12"));
        assert_ne!(hash(b"abcdefgh12"), hash(b"abcdefgh13"));
    }
}

//! Offline shim for the `rand_distr` crate (0.4 API subset).
//!
//! Implements the three distributions the dataset generators use — geometric,
//! Poisson and Zipf — behind the same constructor/`sample` signatures as the
//! real crate.  Sampling algorithms are textbook (inversion for geometric,
//! Knuth / normal approximation for Poisson, CDF inversion for Zipf); the
//! streams differ from the real crate but have the same distributions.

use rand::{Rng, RngCore};

/// Types that sample values of `T` from a distribution.
pub trait Distribution<T> {
    /// Draws one value using `rng` as the source of randomness.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by distribution constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

#[inline]
fn unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Geometric distribution: number of failures before the first success of a
/// Bernoulli(`p`) trial.  `sample` returns a `u64` like the real crate.
#[derive(Debug, Clone, Copy)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates the distribution; `p` must lie in `(0, 1]`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if p > 0.0 && p <= 1.0 && p.is_finite() {
            Ok(Geometric { p })
        } else {
            Err(ParamError(
                "geometric success probability must be in (0, 1]",
            ))
        }
    }
}

impl Distribution<u64> for Geometric {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inversion: floor(ln(1-U) / ln(1-p)).
        let u = unit(rng);
        let k = ((1.0 - u).ln() / (1.0 - self.p).ln()).floor();
        if k.is_finite() && k >= 0.0 {
            k as u64
        } else {
            0
        }
    }
}

/// Poisson distribution with the given mean; `sample` returns an `f64` count
/// like the real crate.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates the distribution; the mean must be positive and finite.
    pub fn new(mean: f64) -> Result<Self, ParamError> {
        if mean > 0.0 && mean.is_finite() {
            Ok(Poisson { mean })
        } else {
            Err(ParamError("poisson mean must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.mean < 64.0 {
            // Knuth's product-of-uniforms method: exact, O(mean).
            let limit = (-self.mean).exp();
            let mut product = unit(rng);
            let mut count = 0u64;
            while product > limit {
                product *= unit(rng);
                count += 1;
            }
            count as f64
        } else {
            // Normal approximation for large means (error is negligible for
            // the generator workloads this shim serves).
            let (u1, u2) = (unit(rng).max(f64::MIN_POSITIVE), unit(rng));
            let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (self.mean + self.mean.sqrt() * gauss).round().max(0.0)
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`; `sample` returns
/// the rank as `f64` like the real crate.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution; `n ≥ 1` and `s > 0` are required.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError("zipf needs at least one element"));
        }
        if !(s > 0.0 && s.is_finite()) {
            return Err(ParamError("zipf exponent must be positive and finite"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = unit(rng);
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors_validate_parameters() {
        assert!(Geometric::new(0.0).is_err());
        assert!(Geometric::new(1.5).is_err());
        assert!(Geometric::new(0.5).is_ok());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(3.0).is_ok());
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, 1.2).is_ok());
    }

    #[test]
    fn geometric_mean_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Geometric::new(0.25).unwrap();
        let n = 20_000;
        let total: u64 = (0..n).map(|_| g.sample(&mut rng)).sum();
        let mean = total as f64 / n as f64;
        // Expected failures before success: (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_mean_matches_small_and_large() {
        let mut rng = StdRng::seed_from_u64(2);
        for target in [1.5, 20.0, 200.0] {
            let p = Poisson::new(target).unwrap();
            let n = 20_000;
            let total: f64 = (0..n).map(|_| p.sample(&mut rng)).sum();
            let mean = total / n as f64;
            assert!(
                (mean - target).abs() < target.sqrt() * 0.1 + 0.1,
                "target {target}, mean {mean}"
            );
        }
    }

    #[test]
    fn zipf_ranks_in_range_and_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = Zipf::new(50, 1.2).unwrap();
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            assert!((1.0..=50.0).contains(&r));
            counts[r as usize - 1] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[49]);
    }
}

//! The JSON value tree: [`Value`], [`Number`] and the order-preserving [`Map`].

use std::ops::{Index, IndexMut};

/// A JSON number, stored as an unsigned/signed integer or a float like the
/// real serde_json.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// The number as `f64` (always possible).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64`, if it is stored as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// The number as `i64`, if it is stored as an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Mixed representations compare numerically.
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

/// A JSON object that preserves insertion order (backed by a small vector —
/// the workspace's objects have at most a few dozen keys).
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key/value pair, returning the previous value of the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a key mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Removes a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Whether the object contains a key.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        // Key order is not significant for equality (matches serde_json).
        self.len() == other.len()
            && self
                .iter()
                .all(|(k, v)| other.get(k).is_some_and(|ov| ov == v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a key (objects only); `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Objects yield the value of the key; anything else (including a missing
    /// key) yields `null`, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl IndexMut<&str> for Value {
    /// `null` auto-vivifies into an object; indexing any other non-object
    /// panics (serde_json behaviour).
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        let map = match self {
            Value::Object(m) => m,
            other => panic!("cannot index {other:?} with a string key"),
        };
        if !map.contains_key(key) {
            map.insert(key.to_string(), Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

// ---- mixed-type comparisons used by assert_eq! in tests ------------------

macro_rules! impl_eq_number {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
        impl PartialEq<$t> for &Value {
            fn eq(&self, other: &$t) -> bool {
                (*self).as_f64() == Some(*other as f64)
            }
        }
    )*};
}
impl_eq_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<bool> for &Value {
    fn eq(&self, other: &bool) -> bool {
        (*self).as_bool() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

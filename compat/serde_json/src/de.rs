//! Deserialization: a strict, recursive-descent JSON parser into [`Value`].

use crate::value::{Map, Number, Value};

/// Parse/serialize error (line/column are not tracked; the byte offset is).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl Error {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        Error {
            message: message.into(),
            offset,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte offset {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Types constructible from a parsed JSON tree.
pub trait Deserialize: Sized {
    /// Builds `Self` from a parsed [`Value`].
    fn from_json_value(value: Value) -> Result<Self, Error>;
}

impl Deserialize for Value {
    fn from_json_value(value: Value) -> Result<Self, Error> {
        Ok(value)
    }
}

/// Parses a complete JSON document (trailing whitespace is allowed, trailing
/// content is an error, like serde_json).
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters", parser.pos));
    }
    T::from_json_value(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?}", byte as char), self.pos))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded", self.pos));
        }
        match self.peek() {
            None => Err(Error::new("unexpected end of input", self.pos)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::new(
                format!("unexpected character {:?}", c as char),
                self.pos,
            )),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!("expected {keyword:?}"), self.pos))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape", self.pos))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::new("invalid \\u escape", self.pos))?;
                            // Surrogate pairs are not reconstructed; lone
                            // surrogates become the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8", self.pos))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number", start))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| Error::new(format!("invalid number {text:?}"), start))?;
        Ok(Value::Number(Number::Float(f)))
    }
}

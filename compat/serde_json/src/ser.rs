//! Serialization: the [`Serialize`] conversion trait plus the compact and
//! pretty writers.

use crate::value::{Map, Number, Value};

/// Conversion into a JSON [`Value`].
///
/// This replaces serde's data model for the purposes of this shim: a type is
/// serializable iff it can produce a `Value` tree.  Implementations cover the
/// primitives, strings, sequences, options and `Value`/[`Map`] themselves,
/// which is everything the workspace serializes.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_json_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Map {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Number(Number::Float(f))
                } else {
                    // serde_json serializes non-finite floats as null.
                    Value::Null
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        self.as_slice().to_json_value()
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                // Tuples serialize as arrays, like serde.
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
    };
}
impl_serialize_tuple!(A: 0);
impl_serialize_tuple!(A: 0, B: 1);
impl_serialize_tuple!(A: 0, B: 1, C: 2);
impl_serialize_tuple!(A: 0, B: 1, C: 2, D: 3);

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Maps serialize as objects with stringified keys (serde_json's
        // behaviour for integer-keyed maps).
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

/// Serializes to compact JSON (no whitespace).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, crate::Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to pretty JSON with 2-space indentation (serde_json's layout).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, crate::Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if f == f.trunc() && f.abs() < 1e15 {
                // Keep the ".0" so the value round-trips as a float.
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

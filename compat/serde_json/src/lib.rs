//! Offline shim for the `serde_json` crate.
//!
//! Implements the self-contained subset this workspace uses — no serde data
//! model, just a JSON [`Value`] tree with:
//!
//! * the [`json!`] macro (objects, arrays, literals, interpolated expressions),
//! * [`from_str`] — a strict JSON parser (trailing whitespace allowed),
//! * [`to_string`] / [`to_string_pretty`] — compact and 2-space-indented
//!   serializers matching serde_json's output shape,
//! * indexing (`value["key"]`, `value[0]`), `as_*` accessors, and the mixed
//!   comparisons (`value == 3`) the tests rely on.
//!
//! Numbers are stored as `u64`/`i64`/`f64` variants like the real crate, and
//! non-finite floats serialize to `null` (serde_json's behaviour).

use std::fmt;

mod de;
mod ser;
mod value;

pub use de::{from_str, Error};
pub use ser::{to_string, to_string_pretty, Serialize};
pub use value::{Map, Number, Value};

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ser::to_string(self).map_err(|_| fmt::Error)?)
    }
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json_value())
}

/// Builds a [`Value`] from JSON-like syntax with interpolated expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array_internal!([] $($tt)*)) };
    ({ $($tt:tt)* }) => { $crate::Value::Object($crate::json_object_internal!($($tt)*)) };
    ($other:expr) => { $crate::Serialize::to_json_value(&$other) };
}

/// Internal helper of [`json!`] for array bodies.  Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // Finished: emit the collected elements.
    ([ $($elem:expr),* ]) => { vec![ $($elem),* ] };
    // Next element is a single token or a bracketed object/array literal.
    ([ $($elem:expr),* ] $next:tt $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elem,)* $crate::json!($next) ] $($($rest)*)?)
    };
    // Next element is a multi-token expression (e.g. `a.b`, `f(x)`, `1 + 2`).
    ([ $($elem:expr),* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array_internal!([ $($elem,)* $crate::json!($next) ] $($($rest)*)?)
    };
}

/// Internal helper of [`json!`] for object bodies.  Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    (@entries $map:ident) => {};
    // Value is a single token or a bracketed object/array literal.
    (@entries $map:ident $key:literal : $value:tt $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_object_internal!(@entries $map $($($rest)*)?);
    };
    // Value is a multi-token expression.
    (@entries $map:ident $key:literal : $value:expr $(, $($rest:tt)*)?) => {
        $map.insert($key.to_string(), $crate::json!($value));
        $crate::json_object_internal!(@entries $map $($($rest)*)?);
    };
    ($($tt:tt)*) => {{
        let mut map = $crate::Map::new();
        $crate::json_object_internal!(@entries map $($tt)*);
        map
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_values() {
        let xs = vec![1u32, 2, 3];
        let name = "ada";
        let v = json!({
            "n": 3,
            "name": name,
            "xs": xs,
            "nested": { "ok": true, "pi": 3.25 },
            "list": [1, "two", null],
        });
        assert_eq!(v["n"], 3);
        assert_eq!(v["name"], "ada");
        assert_eq!(v["xs"].as_array().unwrap().len(), 3);
        assert!(v["nested"]["ok"].as_bool().unwrap());
        assert_eq!(v["nested"]["pi"].as_f64(), Some(3.25));
        assert_eq!(v["list"][1], "two");
        assert!(v["list"][2].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn round_trip_through_text() {
        let v = json!({
            "size": 4usize,
            "score": -1.5,
            "label": "a \"quoted\"\nstring",
            "flags": [true, false],
        });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.starts_with("{\n"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let compact: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(compact, v);
    }

    #[test]
    fn parser_accepts_standard_json() {
        let v: Value =
            from_str(r#"{"a": [1, 2.5, -3, 1e2], "b": {"c": null}, "d": "xAy"} "#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["a"][2].as_i64(), Some(-3));
        assert_eq!(v["a"][3].as_f64(), Some(100.0));
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["d"].as_str(), Some("xAy"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn index_mut_inserts_into_objects() {
        let mut v = json!({ "a": 1 });
        v["b"] = json!("x");
        assert_eq!(v["b"], "x");
        let mut fresh = Value::Null;
        fresh["k"] = json!(2);
        assert_eq!(fresh["k"], 2);
    }

    #[test]
    fn non_finite_floats_serialize_to_null() {
        let v = json!(f64::INFINITY);
        assert!(v.is_null());
        let v = json!(f64::NAN);
        assert!(v.is_null());
    }

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".to_string(), json!(1));
        m.insert("a".to_string(), json!(2));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
        let text = to_string(&m).unwrap();
        assert_eq!(text, r#"{"z":1,"a":2}"#);
    }
}

//! Offline shim for readiness-based socket polling.
//!
//! The build environment has no access to crates.io, so the small slice of
//! `mio`-style functionality the serving tier needs is hand-rolled here: a
//! level-triggered [`Poller`] that multiplexes many nonblocking sockets on
//! one thread (`epoll` on Linux, a portable `poll(2)` registration table on
//! every other unix and selectable everywhere for fallback testing), plus a
//! self-pipe [`Waker`] that lets other threads interrupt a blocked
//! [`Poller::wait`].
//!
//! This crate is the **only** place in the workspace that contains `unsafe`
//! code for socket readiness; every consumer (notably `dcs-server`, which is
//! `#![forbid(unsafe_code)]`) works through the safe API below.
//!
//! Semantics are deliberately minimal and identical across backends:
//!
//! - **Level-triggered**: a registration keeps reporting ready until the
//!   condition is drained (read until `WouldBlock`, write until the buffer
//!   empties or `WouldBlock`).
//! - Registrations are keyed by raw fd; each carries a caller-chosen `usize`
//!   token that comes back verbatim in [`Event::token`].
//! - Closing an fd does **not** deregister it on the poll backend — call
//!   [`Poller::deregister`] before closing, as the `dcs-server` event loop
//!   does.

#![warn(missing_docs)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::RawFd;

/// Raw file descriptor alias so the public API compiles (as `Unsupported`
/// stubs) on non-unix targets too.
#[cfg(not(unix))]
pub type RawFd = i32;

#[cfg(unix)]
mod sys {
    /// `pollfd` as defined by POSIX `<poll.h>` on every supported unix.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    pub const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: i32 = 0x0004;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        /// `struct epoll_event`; packed on x86-64 exactly as the kernel ABI
        /// demands, naturally aligned elsewhere.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLL_CLOEXEC: i32 = 0o2000000;

        extern "C" {
            pub fn epoll_create1(flags: i32) -> i32;
            pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            pub fn epoll_wait(
                epfd: i32,
                events: *mut EpollEvent,
                maxevents: i32,
                timeout_ms: i32,
            ) -> i32;
        }
    }
}

/// Which readiness conditions a registration watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or has hung up).
    pub readable: bool,
    /// Wake when the fd can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// Bytes are available to read (also set on EOF — a read will return 0).
    pub readable: bool,
    /// The fd can accept writes.
    pub writable: bool,
    /// The peer hung up or the fd is in an error state; the connection
    /// should be torn down after draining any readable bytes.
    pub hangup: bool,
}

/// Maximum events drained from the kernel per [`Poller::wait`] call.
const WAIT_BATCH: usize = 256;

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    #[cfg(unix)]
    Poll(PollBackend),
    #[cfg(not(unix))]
    Unsupported,
}

/// A level-triggered readiness multiplexer over raw fds.
///
/// `register`/`modify`/`deregister` may be called from any thread; `wait` is
/// intended for the single owning event-loop thread (concurrent `wait`s on
/// the poll backend would each see the same events — level-triggered).
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Opens the best backend for the platform: `epoll` on Linux, `poll(2)`
    /// on other unixes.  Errors with [`io::ErrorKind::Unsupported`] on
    /// non-unix targets.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            match EpollBackend::new() {
                Ok(ep) => Ok(Poller {
                    backend: Backend::Epoll(ep),
                }),
                Err(_) => Self::poll_fallback(),
            }
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            Self::poll_fallback()
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "netpoll requires a unix platform",
            ))
        }
    }

    /// Forces the portable `poll(2)` backend — used by tests to exercise the
    /// fallback path on platforms where `epoll` is available.
    pub fn poll_fallback() -> io::Result<Poller> {
        #[cfg(unix)]
        {
            Ok(Poller {
                backend: Backend::Poll(PollBackend::new()),
            })
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "netpoll requires a unix platform",
            ))
        }
    }

    /// Backend name, for stats/debugging: `"epoll"` or `"poll"`.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            #[cfg(unix)]
            Backend::Poll(_) => "poll",
            #[cfg(not(unix))]
            Backend::Unsupported => "unsupported",
        }
    }

    /// Starts watching `fd` for `interest`, reporting it as `token`.
    /// The fd should already be in nonblocking mode.
    pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(sys::epoll::EPOLL_CTL_ADD, fd, token, interest),
            #[cfg(unix)]
            Backend::Poll(p) => p.register(fd, token, interest),
            #[cfg(not(unix))]
            Backend::Unsupported => unsupported(),
        }
    }

    /// Changes the interest set (and token) of an existing registration.
    pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(sys::epoll::EPOLL_CTL_MOD, fd, token, interest),
            #[cfg(unix)]
            Backend::Poll(p) => p.register(fd, token, interest),
            #[cfg(not(unix))]
            Backend::Unsupported => unsupported(),
        }
    }

    /// Stops watching `fd`.  Must be called before the fd is closed on the
    /// poll backend (epoll drops closed fds automatically, poll would report
    /// them as invalid).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.ctl(
                sys::epoll::EPOLL_CTL_DEL,
                fd,
                0,
                Interest {
                    readable: false,
                    writable: false,
                },
            ),
            #[cfg(unix)]
            Backend::Poll(p) => p.deregister(fd),
            #[cfg(not(unix))]
            Backend::Unsupported => unsupported(),
        }
    }

    /// Blocks until at least one registered fd is ready (or the timeout
    /// elapses; `None` waits forever), clears `events` and appends the ready
    /// set.  Returns the number of events.  A signal interruption returns
    /// `Ok(0)` so event loops simply re-iterate.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => ep.wait(events, timeout),
            #[cfg(unix)]
            Backend::Poll(p) => p.wait(events, timeout),
            #[cfg(not(unix))]
            Backend::Unsupported => unsupported(),
        }
    }
}

#[cfg(not(unix))]
fn unsupported<T>() -> io::Result<T> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "netpoll requires a unix platform",
    ))
}

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        // Round up so a 1ns timeout doesn't busy-spin as 0ms.
        Some(d) => {
            let ms = d.as_millis().min(i32::MAX as u128) as i32;
            if ms == 0 && !d.is_zero() {
                1
            } else {
                ms
            }
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend (Linux)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
struct EpollBackend {
    epfd: i32,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<EpollBackend> {
        // SAFETY: plain syscall; the returned fd is checked and owned by the
        // backend, closed exactly once in Drop.
        let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollBackend { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        let mut mask = 0u32;
        if interest.readable {
            mask |= sys::epoll::EPOLLIN | sys::epoll::EPOLLRDHUP;
        }
        if interest.writable {
            mask |= sys::epoll::EPOLLOUT;
        }
        let mut event = sys::epoll::EpollEvent {
            events: mask,
            data: token as u64,
        };
        // SAFETY: epfd is a live epoll fd owned by self; the event struct
        // outlives the call (the kernel copies it).
        let rc = unsafe { sys::epoll::epoll_ctl(self.epfd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut buf = [sys::epoll::EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
        // SAFETY: buf is a valid writable array of WAIT_BATCH events; the
        // kernel writes at most `maxevents` entries.
        let n = unsafe {
            sys::epoll::epoll_wait(
                self.epfd,
                buf.as_mut_ptr(),
                WAIT_BATCH as i32,
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in &buf[..n as usize] {
            // Copy out of the (possibly packed) struct before using.
            let mask = ev.events;
            let data = ev.data;
            events.push(Event {
                token: data as usize,
                readable: mask & sys::epoll::EPOLLIN != 0,
                writable: mask & sys::epoll::EPOLLOUT != 0,
                hangup: mask
                    & (sys::epoll::EPOLLHUP | sys::epoll::EPOLLRDHUP | sys::epoll::EPOLLERR)
                    != 0,
            });
        }
        Ok(events.len())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollBackend {
    fn drop(&mut self) {
        // SAFETY: epfd came from a successful epoll_create1 and is closed
        // exactly once.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

// ---------------------------------------------------------------------------
// poll(2) backend (portable unix fallback)
// ---------------------------------------------------------------------------

#[cfg(unix)]
struct PollBackend {
    /// fd → (token, interest); rebuilt into a pollfd array on every wait.
    table: std::sync::Mutex<std::collections::BTreeMap<i32, (usize, Interest)>>,
}

#[cfg(unix)]
impl PollBackend {
    fn new() -> PollBackend {
        PollBackend {
            table: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.table.lock().unwrap().insert(fd, (token, interest));
        Ok(())
    }

    fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.table.lock().unwrap().remove(&fd);
        Ok(())
    }

    fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let (mut fds, tokens): (Vec<sys::PollFd>, Vec<usize>) = {
            let table = self.table.lock().unwrap();
            table
                .iter()
                .map(|(&fd, &(token, interest))| {
                    let mut mask = 0i16;
                    if interest.readable {
                        mask |= sys::POLLIN;
                    }
                    if interest.writable {
                        mask |= sys::POLLOUT;
                    }
                    (
                        sys::PollFd {
                            fd,
                            events: mask,
                            revents: 0,
                        },
                        token,
                    )
                })
                .unzip()
        };
        // SAFETY: fds is a valid writable array of fds.len() pollfd structs.
        let n = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for (pfd, &token) in fds.iter().zip(&tokens) {
            if pfd.revents == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: pfd.revents & sys::POLLIN != 0,
                writable: pfd.revents & sys::POLLOUT != 0,
                hangup: pfd.revents & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0,
            });
            if events.len() == WAIT_BATCH {
                break;
            }
        }
        Ok(events.len())
    }
}

// ---------------------------------------------------------------------------
// Waker (self-pipe)
// ---------------------------------------------------------------------------

/// Wakes a thread blocked in [`Poller::wait`] from any other thread.
///
/// Implemented as the classic self-pipe trick: a nonblocking pipe whose read
/// end is registered readable on the poller under the caller's token.
/// [`Waker::wake`] writes one byte; the event loop must call
/// [`Waker::drain`] when it sees the token, or the registration stays ready
/// (level-triggered).
///
/// The waker must not outlive the poller it is registered with.
pub struct Waker {
    read_fd: i32,
    write_fd: i32,
}

// A Waker only carries two owned fds; writes/reads on them are thread-safe
// syscalls, so sharing across threads is fine.  (No unsafe impls needed —
// i32s are Send + Sync — this comment documents the why.)

impl Waker {
    /// Creates a waker and registers its read end with `poller` under
    /// `token`.
    pub fn new(poller: &Poller, token: usize) -> io::Result<Waker> {
        #[cfg(unix)]
        {
            let mut fds = [0i32; 2];
            // SAFETY: plain syscall writing the two fds into a valid array;
            // both fds are owned by the Waker and closed exactly once.
            let rc = unsafe { sys::pipe(fds.as_mut_ptr()) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            let waker = Waker {
                read_fd: fds[0],
                write_fd: fds[1],
            };
            for fd in fds {
                // SAFETY: fcntl F_SETFL on an fd we just created.
                let rc = unsafe { sys::fcntl(fd, sys::F_SETFL, sys::O_NONBLOCK) };
                if rc < 0 {
                    return Err(io::Error::last_os_error());
                }
            }
            poller.register(waker.read_fd, token, Interest::READABLE)?;
            Ok(waker)
        }
        #[cfg(not(unix))]
        {
            let _ = (poller, token);
            unsupported()
        }
    }

    /// Interrupts the poller.  Safe to call from any thread; a full pipe
    /// (wake already pending) counts as success.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            let byte = 1u8;
            // SAFETY: write_fd is a live nonblocking pipe write end; EAGAIN
            // (pipe full — a wake is already pending) is the desired state.
            unsafe {
                sys::write(self.write_fd, &byte, 1);
            }
        }
    }

    /// Drains pending wake bytes so the level-triggered registration goes
    /// quiet.  Call from the event loop when the waker token fires.
    pub fn drain(&self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            loop {
                // SAFETY: read_fd is a live nonblocking pipe read end and buf
                // is a valid writable buffer.
                let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    /// The raw fd of the registered read end (for deregistration on
    /// shutdown).
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }
}

#[cfg(unix)]
impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: both fds came from a successful pipe() and are closed
        // exactly once.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::Arc;

    fn pollers() -> Vec<Poller> {
        let mut v = vec![Poller::poll_fallback().unwrap()];
        #[cfg(target_os = "linux")]
        v.push(Poller::new().unwrap());
        v
    }

    #[test]
    fn linux_default_backend_is_epoll() {
        #[cfg(target_os = "linux")]
        assert_eq!(Poller::new().unwrap().backend_name(), "epoll");
        assert_eq!(Poller::poll_fallback().unwrap().backend_name(), "poll");
    }

    #[test]
    fn readable_only_after_bytes_arrive() {
        for poller in pollers() {
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller
                .register(b.as_raw_fd(), 7, Interest::READABLE)
                .unwrap();

            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{}: no bytes yet", poller.backend_name());

            a.write_all(b"hello\n").unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
            assert!(!events[0].writable);
        }
    }

    #[test]
    fn writable_reported_for_empty_send_buffer() {
        for poller in pollers() {
            let (_a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 3, Interest::BOTH).unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            assert!(events[0].writable);
        }
    }

    #[test]
    fn hangup_reported_when_peer_closes() {
        for poller in pollers() {
            let (a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller
                .register(b.as_raw_fd(), 9, Interest::READABLE)
                .unwrap();
            drop(a);
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            // Either explicit hangup or readable-with-EOF; both backends
            // must report *something* actionable.
            assert!(events[0].hangup || events[0].readable);
        }
    }

    #[test]
    fn deregister_silences_a_ready_fd() {
        for poller in pollers() {
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller
                .register(b.as_raw_fd(), 1, Interest::READABLE)
                .unwrap();
            a.write_all(b"x").unwrap();
            let mut events = Vec::new();
            assert_eq!(
                poller
                    .wait(&mut events, Some(Duration::from_millis(1000)))
                    .unwrap(),
                1
            );
            poller.deregister(b.as_raw_fd()).unwrap();
            assert_eq!(
                poller
                    .wait(&mut events, Some(Duration::from_millis(10)))
                    .unwrap(),
                0,
                "{}",
                poller.backend_name()
            );
        }
    }

    #[test]
    fn modify_switches_interest() {
        for poller in pollers() {
            let (mut a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            a.write_all(b"x").unwrap();
            poller
                .register(b.as_raw_fd(), 1, Interest::READABLE)
                .unwrap();
            let mut events = Vec::new();
            assert_eq!(
                poller
                    .wait(&mut events, Some(Duration::from_millis(1000)))
                    .unwrap(),
                1
            );
            assert!(events[0].readable && !events[0].writable);
            poller.modify(b.as_raw_fd(), 2, Interest::WRITABLE).unwrap();
            assert_eq!(
                poller
                    .wait(&mut events, Some(Duration::from_millis(1000)))
                    .unwrap(),
                1
            );
            assert_eq!(events[0].token, 2);
            assert!(events[0].writable && !events[0].readable);
        }
    }

    #[test]
    fn waker_interrupts_a_blocking_wait_from_another_thread() {
        for poller in pollers() {
            let poller = Arc::new(poller);
            let waker = Arc::new(Waker::new(&poller, usize::MAX).unwrap());
            let w = Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(50));
                w.wake();
                w.wake(); // double wake coalesces; still a single event burst
            });
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert_eq!(n, 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, usize::MAX);
            // Join before draining: a wake landing after the drain would
            // legitimately re-arm the registration.
            t.join().unwrap();
            waker.drain();
            // After draining, the registration is quiet again.
            assert_eq!(
                poller
                    .wait(&mut events, Some(Duration::from_millis(10)))
                    .unwrap(),
                0
            );
        }
    }

    #[test]
    fn level_triggered_until_drained() {
        for poller in pollers() {
            let (mut a, mut b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller
                .register(b.as_raw_fd(), 4, Interest::READABLE)
                .unwrap();
            a.write_all(b"abc").unwrap();
            let mut events = Vec::new();
            for _ in 0..3 {
                assert_eq!(
                    poller
                        .wait(&mut events, Some(Duration::from_millis(1000)))
                        .unwrap(),
                    1,
                    "{}: stays ready until read",
                    poller.backend_name()
                );
            }
            let mut buf = [0u8; 16];
            let n = b.read(&mut buf).unwrap();
            assert_eq!(n, 3);
            assert_eq!(
                poller
                    .wait(&mut events, Some(Duration::from_millis(10)))
                    .unwrap(),
                0
            );
        }
    }

    #[test]
    fn timeout_zero_returns_immediately() {
        for poller in pollers() {
            let (_a, b) = UnixStream::pair().unwrap();
            b.set_nonblocking(true).unwrap();
            poller
                .register(b.as_raw_fd(), 0, Interest::READABLE)
                .unwrap();
            let mut events = Vec::new();
            let start = std::time::Instant::now();
            poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
            assert!(start.elapsed() < Duration::from_secs(1));
        }
    }
}

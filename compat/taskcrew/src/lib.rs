//! Offline shim for a persistent worker crew with a blocking broadcast.
//!
//! The build environment has no access to crates.io, so the small slice of
//! `rayon::broadcast`-style functionality the parallel peel needs is
//! hand-rolled here: a fixed set of threads spawned **once** and reused
//! across many rounds, where [`WorkerCrew::broadcast`] runs one closure on
//! every worker (passed its index) and blocks until all of them finish.
//! This replaces per-round `std::thread::scope` spawns, whose setup/teardown
//! cost dominates short bucket-peeling rounds.
//!
//! This crate is the **only** place in the workspace that erases the
//! lifetime of the broadcast closure; soundness rests on the invariant that
//! `broadcast` does not return until every worker has finished running the
//! closure, so the borrow it captures can never be outlived.  Consumers
//! (notably `dcs-densest`, which is `#![forbid(unsafe_code)]`) work through
//! the safe API below.

#![warn(missing_docs)]

use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The broadcast closure as seen by workers: lifetime-erased to `'static`.
///
/// Only ever dereferenced between the moment `broadcast` publishes it and
/// the moment the last worker checks in — an interval during which the
/// original `&dyn Fn` borrow is provably alive because `broadcast` is still
/// blocked on `done_cv`.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and, per the invariant above, outlives every dereference.  The pointer is
// only moved between threads under the state mutex.
unsafe impl Send for JobPtr {}

struct CrewState {
    /// Bumped once per broadcast; workers run the job exactly when they see
    /// a generation newer than the last one they completed.
    generation: u64,
    job: Option<JobPtr>,
    /// Workers still running the current generation's job.
    remaining: usize,
    /// Workers that panicked during the current generation's job.
    panicked: usize,
    exit: bool,
}

struct CrewShared {
    state: Mutex<CrewState>,
    /// Signals workers: new generation published, or exit.
    work_cv: Condvar,
    /// Signals the broadcaster: `remaining` hit zero.
    done_cv: Condvar,
}

/// A fixed set of persistent worker threads that repeatedly run broadcast
/// closures, synchronized by a round barrier.
///
/// Dropping the crew shuts the workers down and joins them.
pub struct WorkerCrew {
    shared: Arc<CrewShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerCrew {
    /// Spawns `threads` workers (clamped to at least 1).  The workers idle
    /// on a condvar between broadcasts — no spinning.
    pub fn new(threads: usize) -> WorkerCrew {
        let threads = threads.max(1);
        let shared = Arc::new(CrewShared {
            state: Mutex::new(CrewState {
                generation: 0,
                job: None,
                remaining: 0,
                panicked: 0,
                exit: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("taskcrew-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn crew worker")
            })
            .collect();
        WorkerCrew { shared, handles }
    }

    /// Number of worker threads in the crew.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job(index)` on every worker (index `0..threads`) and blocks
    /// until all of them return.  Panics if any worker's job panicked —
    /// after all workers have checked back in, so the crew stays usable.
    pub fn broadcast(&self, job: &(dyn Fn(usize) + Sync)) {
        // Erase the closure's lifetime.  SAFETY (of the later dereference):
        // this function blocks below until `remaining == 0`, i.e. until no
        // worker will touch the pointer again, so `job` outlives all uses.
        let ptr = JobPtr(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job as *const _)
        });
        let mut state = self.shared.state.lock().unwrap();
        debug_assert_eq!(state.remaining, 0, "broadcast is not reentrant");
        state.generation += 1;
        state.job = Some(ptr);
        state.remaining = self.handles.len();
        state.panicked = 0;
        self.shared.work_cv.notify_all();
        while state.remaining > 0 {
            state = self.shared.done_cv.wait(state).unwrap();
        }
        state.job = None;
        let panicked = state.panicked;
        drop(state);
        if panicked > 0 {
            panic!("{panicked} crew worker(s) panicked during broadcast");
        }
    }
}

impl Drop for WorkerCrew {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.exit = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerCrew {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCrew")
            .field("threads", &self.handles.len())
            .finish()
    }
}

fn worker_loop(shared: &CrewShared, index: usize) {
    let mut last_done = 0u64;
    loop {
        let (job, generation) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.exit {
                    return;
                }
                if state.generation > last_done {
                    break;
                }
                state = shared.work_cv.wait(state).unwrap();
            }
            (
                state.job.expect("published generation carries a job"),
                state.generation,
            )
        };
        // SAFETY: the broadcaster is blocked on done_cv until we decrement
        // `remaining` below, so the borrow behind the pointer is alive.
        let call = AssertUnwindSafe(|| unsafe { (*job.0)(index) });
        let outcome = std::panic::catch_unwind(call);
        last_done = generation;
        let mut state = shared.state.lock().unwrap();
        if outcome.is_err() {
            state.panicked += 1;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_every_index_exactly_once() {
        let crew = WorkerCrew::new(4);
        assert_eq!(crew.threads(), 4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        crew.broadcast(&|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn crew_is_reusable_across_many_rounds() {
        let crew = WorkerCrew::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            crew.broadcast(&|i| {
                total.fetch_add(i + 1, Ordering::Relaxed);
            });
        }
        // Each round adds 1 + 2 + 3 = 6.
        assert_eq!(total.load(Ordering::SeqCst), 200 * 6);
    }

    #[test]
    fn broadcast_blocks_until_all_workers_finish() {
        let crew = WorkerCrew::new(2);
        let done = AtomicUsize::new(0);
        crew.broadcast(&|i| {
            // Stagger completion: the broadcast must still see both.
            std::thread::sleep(std::time::Duration::from_millis(10 * (i as u64 + 1)));
            done.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(done.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn borrowed_state_is_mutable_through_locks() {
        let crew = WorkerCrew::new(4);
        let slots: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        crew.broadcast(&|i| {
            *slots[i].lock().unwrap() = (i as u64 + 1) * 10;
        });
        let values: Vec<u64> = slots.iter().map(|s| *s.lock().unwrap()).collect();
        assert_eq!(values, vec![10, 20, 30, 40]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let crew = WorkerCrew::new(0);
        assert_eq!(crew.threads(), 1);
        let ran = AtomicUsize::new(0);
        crew.broadcast(&|i| {
            assert_eq!(i, 0);
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_panic_propagates_and_crew_survives() {
        let crew = WorkerCrew::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            crew.broadcast(&|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The crew is still usable after a propagated panic.
        let ok = AtomicUsize::new(0);
        crew.broadcast(&|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn drop_joins_workers() {
        let crew = WorkerCrew::new(3);
        crew.broadcast(&|_| {});
        drop(crew); // must not hang
    }
}

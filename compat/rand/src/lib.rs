//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Provides the slice of the rand API this workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()`, `gen_range(..)` and `gen_bool`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded through
//!   SplitMix64.
//!
//! Determinism per seed is the property the workspace's generators rely on
//! (same seed ⇒ same stream, different seed ⇒ different stream); the exact
//! stream differs from the real `rand` crate's ChaCha-based `StdRng`.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Low-level generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A uniform `f64` in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Multiply-shift bounded sampling; bias is < 2^-64·span.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_from(rng)
            }
        }

        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                (self.start..=<$t>::MAX).sample_from(rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + unit_f64(rng) * (end - start)
    }
}

/// High-level generator interface (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (deterministic,
    /// SplitMix64-seeded).  Not the same stream as `rand`'s real `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0u32..10);
            seen[v as usize] = true;
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let w = rng.gen_range(5usize..=6);
            assert!((5..=6).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}

//! Parallel initialisation sweeps: the same answer as sequential NewSEA, in a fraction of
//! the wall-clock time on multi-core machines.
//!
//! The SEACD/NewSEA initialisations are independent local searches, so the library offers
//! `parallel_newsea` (smart initialisation with a shared early-exit bound) and
//! `parallel_sweep` (the exhaustive SEACD+Refine sweep).  This example runs both against
//! their sequential counterparts on a mid-sized synthetic co-author pair and prints the
//! objective values and timings side by side.
//!
//! Run with:
//! ```text
//! cargo run --release -p dcs --example parallel_mining
//! ```

use std::time::Instant;

use dcs::core::dcsga::{parallel_newsea, parallel_sweep, refine, DcsgaConfig, SeaCd};
use dcs::core::difference_graph;
use dcs::datasets::{CoauthorConfig, Scale};
use dcs::prelude::*;

fn main() {
    let pair = CoauthorConfig::for_scale(Scale::Default).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).expect("same vertex set");
    let gd_plus = gd.positive_part();
    let config = DcsgaConfig::default();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "difference graph: {} vertices, {} positive edges; using {} threads",
        gd.num_vertices(),
        gd_plus.num_edges(),
        threads
    );

    // --- NewSEA: sequential vs parallel. ---------------------------------------------
    let start = Instant::now();
    let sequential = NewSea::new(config).solve(&gd);
    let sequential_time = start.elapsed();

    let start = Instant::now();
    let parallel = parallel_newsea(&gd, config, threads);
    let parallel_time = start.elapsed();

    println!("\nNewSEA (smart initialisation)");
    println!(
        "  sequential: objective {:.4}  support {:?}  {} inits  {:.3}s",
        sequential.affinity_difference,
        sequential.support(),
        sequential.stats.initializations_run,
        sequential_time.as_secs_f64()
    );
    println!(
        "  parallel  : objective {:.4}  support {:?}  {} inits  {:.3}s",
        parallel.affinity_difference,
        parallel.support(),
        parallel.stats.initializations_run,
        parallel_time.as_secs_f64()
    );
    assert!((sequential.affinity_difference - parallel.affinity_difference).abs() < 1e-9);

    // --- Exhaustive SEACD+Refine sweep: sequential vs parallel. ------------------------
    let start = Instant::now();
    let sweep_sequential =
        SeaCd::new(config).sweep(&gd_plus, None, false, |g, x| refine(g, x, &config));
    let sweep_sequential_time = start.elapsed();

    let start = Instant::now();
    let sweep_parallel = parallel_sweep(&gd_plus, config, threads, false);
    let sweep_parallel_time = start.elapsed();

    println!("\nSEACD+Refine (exhaustive sweep)");
    println!(
        "  sequential: objective {:.4}  {} inits  {:.3}s",
        sweep_sequential.best_objective,
        sweep_sequential.initializations,
        sweep_sequential_time.as_secs_f64()
    );
    println!(
        "  parallel  : objective {:.4}  {} inits  {:.3}s  (speed-up {:.1}x)",
        sweep_parallel.best_objective,
        sweep_parallel.initializations,
        sweep_parallel_time.as_secs_f64(),
        sweep_sequential_time.as_secs_f64() / sweep_parallel_time.as_secs_f64().max(1e-9)
    );
    assert!((sweep_sequential.best_objective - sweep_parallel.best_objective).abs() < 1e-9);

    println!(
        "\nboth parallel variants return exactly the sequential objective; NewSEA itself \
         needed only {} of {} possible initialisations thanks to the Theorem-6 bound",
        parallel.stats.initializations_run,
        parallel.stats.initializations_run + parallel.stats.initializations_skipped
    );
}

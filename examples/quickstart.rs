//! Quickstart: mine a density contrast subgraph from two small hand-made graphs.
//!
//! Run with:
//! ```text
//! cargo run -p dcs --example quickstart
//! ```

use dcs::prelude::*;

fn main() {
    // Two graphs over the same six vertices.  Think of them as "connection strength last
    // year" (G1) and "connection strength this year" (G2): the triangle {0, 1, 2} got
    // much tighter, while the pair {3, 4} cooled down.
    let g1 = GraphBuilder::from_edges(6, vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 6.0), (4, 5, 2.0)]);
    let g2 = GraphBuilder::from_edges(
        6,
        vec![
            (0, 1, 5.0),
            (1, 2, 5.0),
            (0, 2, 4.0),
            (3, 4, 1.0),
            (4, 5, 2.0),
        ],
    );

    // The difference graph G_D = G2 - G1 has signed weights.
    let gd = difference_graph(&g2, &g1).expect("same vertex set");
    println!(
        "difference graph: {} vertices, {} positive / {} negative edges",
        gd.num_vertices(),
        gd.num_positive_edges(),
        gd.num_negative_edges()
    );

    // --- DCS with respect to average degree (DCSGreedy, Algorithm 2) ----------------
    let by_degree = DcsGreedy::default().solve(&gd);
    println!("\nDCS w.r.t. average degree");
    println!("  subset             : {:?}", by_degree.subset);
    println!("  density difference : {:.3}", by_degree.density_difference);
    println!(
        "  approx. ratio      : {:.3}",
        by_degree.data_dependent_ratio
    );

    // --- DCS with respect to graph affinity (NewSEA, Algorithm 5) -------------------
    let by_affinity = NewSea::default().solve(&gd);
    println!("\nDCS w.r.t. graph affinity");
    println!("  support            : {:?}", by_affinity.support());
    println!(
        "  affinity difference: {:.3}",
        by_affinity.affinity_difference
    );
    for (v, weight) in by_affinity.embedding.iter() {
        println!("    vertex {v}: participation {weight:.3}");
    }

    // Full report (the numbers the paper tabulates).
    let report = ContrastReport::for_embedding(&gd, &by_affinity.embedding);
    println!(
        "\nreport: size={} positive clique={} avg-degree diff={:.3} edge-density diff={:.3}",
        report.size,
        report.is_positive_clique,
        report.average_degree_difference,
        report.edge_density_difference
    );

    // The emerging triangle is found by both measures.
    assert_eq!(by_degree.subset, vec![0, 1, 2]);
    assert_eq!(by_affinity.support(), vec![0, 1, 2]);
}

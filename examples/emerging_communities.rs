//! Anomaly detection against historical expectation — the "emerging community /
//! traffic-hotspot / dark-network" application sketched in the paper's introduction.
//!
//! `G1` encodes the *expected* pairwise connection strength (derived from history) and
//! `G2` the currently *observed* strength.  The DCS of `(G1, G2)` is the group of
//! entities whose mutual connections intensified the most — an emerging community.
//! The example also shows the α-scaled difference graph of Section III-D, which requires
//! the density in `G2` to exceed `α` times the historical density.
//!
//! Run with:
//! ```text
//! cargo run --release -p dcs --example emerging_communities
//! ```

use dcs::core::{alpha_sweep, default_alpha_grid, scaled_difference_graph, DensityMeasure};
use dcs::datasets::{ConflictConfig, GroupKind, Scale};
use dcs::prelude::*;

fn main() {
    // Interaction data: G1 = expected/positive interactions, G2 = observed/negative ones
    // (the wiki-style generator plants one cooperative and one conflicting group).
    let pair = ConflictConfig::for_scale(Scale::Tiny).generate();
    println!(
        "{} users; expected graph: {} edges, observed graph: {} edges",
        pair.g1.num_vertices(),
        pair.g1.num_edges(),
        pair.g2.num_edges()
    );

    // Emerging anomaly: connections much stronger than expected.
    let gd = difference_graph(&pair.g2, &pair.g1).expect("same users");
    let anomaly = DcsGreedy::default().solve(&gd);
    let report = ContrastReport::for_subset(&gd, &anomaly.subset);
    println!(
        "\nemerging group: {} users, density difference {:.2}, connected: {}",
        report.size, report.average_degree_difference, report.is_connected
    );

    let planted = pair.planted_of_kind(GroupKind::Emerging);
    let recovery = dcs::datasets::best_match(&anomaly.subset, &planted);
    println!(
        "matches planted group {:?} with Jaccard {:.2} (precision {:.2}, recall {:.2})",
        recovery.best_group, recovery.jaccard, recovery.precision, recovery.recall
    );
    assert!(recovery.jaccard > 0.5);

    // The affinity measure gives a small, tightly interpretable core of the anomaly.
    let core = NewSea::default().solve(&gd);
    println!(
        "affinity core: {} users, affinity difference {:.2}, positive clique: {}",
        core.support().len(),
        core.affinity_difference,
        gd.is_positive_clique(&core.support())
    );

    // α-scaled variant: only count a group as anomalous if its observed density exceeds
    // twice the expectation.
    let gd_strict = scaled_difference_graph(&pair.g2, &pair.g1, 2.0).expect("same users");
    let strict = DcsGreedy::default().solve(&gd_strict);
    println!(
        "\nwith α = 2 the anomalous group shrinks to {} users (density diff {:.2})",
        strict.subset.len(),
        strict.density_difference
    );

    // Sweeping α shows how the anomaly sharpens as stable structure is priced out
    // (Section III-D; `alpha_sweep` evaluates every point on the plain α = 1 graph so the
    // rows are comparable).
    println!("\nα-sweep (average degree):");
    println!(
        "{:>6} {:>6} {:>16} {:>16}",
        "alpha", "size", "scaled objective", "plain avg-degree"
    );
    let points = alpha_sweep(
        &pair.g2,
        &pair.g1,
        &default_alpha_grid(),
        DensityMeasure::AverageDegree,
    )
    .expect("valid inputs");
    for point in &points {
        println!(
            "{:>6.2} {:>6} {:>16.2} {:>16.2}",
            point.alpha,
            point.subset.len(),
            point.objective,
            point.report.average_degree_difference
        );
    }
    assert_eq!(points.len(), default_alpha_grid().len());
}

//! Emerging and disappearing co-author groups — the paper's DBLP case study
//! (Section VI-B, Tables III/IV).
//!
//! The example builds a synthetic co-author pair (collaborations before / after a split
//! year), constructs the Weighted and Discrete difference graphs in both directions
//! (Emerging and Disappearing), and mines DCS under both density measures, printing a
//! Table-IV-style summary.
//!
//! Run with:
//! ```text
//! cargo run --release -p dcs --example coauthor_groups
//! ```

use dcs::core::{difference_graph_with, DiscreteRule, WeightScheme};
use dcs::datasets::{best_match, CoauthorConfig, GroupKind, Scale};
use dcs::prelude::*;

fn main() {
    let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
    println!(
        "co-author graphs: {} authors, {} collaborations before the split, {} after",
        pair.g1.num_vertices(),
        pair.g1.num_edges(),
        pair.g2.num_edges()
    );

    println!(
        "\n{:<10} {:<13} {:<15} {:>8} {:>9} {:>12} {:>12} {:>10}  Recovered group",
        "Setting",
        "GD type",
        "Measure",
        "#Authors",
        "Clique?",
        "AvgDeg diff",
        "Affin. diff",
        "EdgeDens"
    );

    for (setting_name, scheme) in [
        ("Weighted", WeightScheme::Weighted),
        ("Discrete", WeightScheme::Discrete(DiscreteRule::default())),
    ] {
        for (direction, g_from, g_to, kind) in [
            ("Emerging", &pair.g1, &pair.g2, GroupKind::Emerging),
            ("Disappearing", &pair.g2, &pair.g1, GroupKind::Disappearing),
        ] {
            let gd = difference_graph_with(g_to, g_from, scheme).expect("same authors");
            let planted = pair.planted_of_kind(kind);

            // Average-degree measure (DCSGreedy).
            let ad = DcsGreedy::default().solve(&gd);
            let ad_report = ContrastReport::for_subset(&gd, &ad.subset);
            let ad_match = best_match(&ad.subset, &planted);
            println!(
                "{:<10} {:<13} {:<15} {:>8} {:>9} {:>12.2} {:>12.2} {:>10.3}  {} (J={:.2})",
                setting_name,
                direction,
                "avg degree",
                ad_report.size,
                ad_report.is_positive_clique,
                ad_report.average_degree_difference,
                ad_report.affinity_difference,
                ad_report.edge_density_difference,
                ad_match.best_group,
                ad_match.jaccard
            );

            // Graph-affinity measure (NewSEA).
            let ga = NewSea::default().solve(&gd);
            let ga_report = ContrastReport::for_embedding(&gd, &ga.embedding);
            let ga_match = best_match(&ga.support(), &planted);
            println!(
                "{:<10} {:<13} {:<15} {:>8} {:>9} {:>12.2} {:>12.2} {:>10.3}  {} (J={:.2})",
                setting_name,
                direction,
                "graph affinity",
                ga_report.size,
                ga_report.is_positive_clique,
                ga_report.average_degree_difference,
                ga_report.affinity_difference,
                ga_report.edge_density_difference,
                ga_match.best_group,
                ga_match.jaccard
            );
        }
    }

    println!("\nLike in the paper, the affinity DCS is always a positive clique, while the");
    println!("average-degree DCS may be larger; the Discrete setting surfaces broader groups");
    println!("by damping a few very heavy edges.");
}

//! Uncovering money-laundering "dark networks" in transaction data — the second
//! anomaly-detection application from Section I of the paper.
//!
//! `G1` holds expected pairwise transaction volumes (from history), `G2` the volumes
//! observed in the current period.  A group of accounts that suddenly transacts densely
//! among itself shows up as the density contrast subgraph of `G2 − G1`; because such
//! rings are clique-like, the graph-affinity measure pinpoints them exactly, and top-k
//! mining reports several disjoint rings in one pass.
//!
//! Run with:
//! ```text
//! cargo run --release -p dcs --example dark_network
//! ```

use dcs::core::dcsga::DcsgaConfig;
use dcs::core::{difference_graph, top_k_affinity, ContrastReport};
use dcs::datasets::{GroupKind, Scale, TransactionConfig};
use dcs::prelude::*;

fn main() {
    let config = TransactionConfig::for_scale(Scale::Tiny);
    let pair = config.generate();
    println!(
        "transaction network: {} accounts, {} historical / {} current relationships",
        pair.g1.num_vertices(),
        pair.g1.num_edges(),
        pair.g2.num_edges()
    );

    let gd = difference_graph(&pair.g2, &pair.g1).expect("same account set");
    println!(
        "difference graph: {} positive / {} negative edges",
        gd.num_positive_edges(),
        gd.num_negative_edges()
    );

    // --- Single DCS: the tightest ring. ---------------------------------------------
    let best = NewSea::default().solve(&gd);
    let report = ContrastReport::for_embedding(&gd, &best.embedding);
    println!(
        "\ntightest ring: {} accounts {:?}, affinity contrast {:.1}, positive clique: {}",
        report.size, report.subset, report.affinity_difference, report.is_positive_clique
    );

    // --- Top-k mining: report every disjoint suspicious ring. ------------------------
    let rings = top_k_affinity(&gd, 4, DcsgaConfig::default());
    println!("\ntop-{} disjoint rings:", rings.len());
    for (rank, ring) in rings.iter().enumerate() {
        let report = ContrastReport::for_subset(&gd, &ring.support());
        println!(
            "  #{:<2} accounts {:?}  affinity {:.1}  avg-degree contrast {:.1}",
            rank + 1,
            report.subset,
            ring.affinity_difference,
            report.average_degree_difference
        );
    }

    // --- Check against the planted ground truth. --------------------------------------
    let planted = pair.planted_of_kind(GroupKind::Emerging);
    let mut recovered = 0;
    for group in &planted {
        let hit = rings
            .iter()
            .any(|ring| ring.support().iter().all(|v| group.vertices.contains(v)));
        println!(
            "planted {} ({} accounts): {}",
            group.name,
            group.vertices.len(),
            if hit { "recovered" } else { "missed" }
        );
        if hit {
            recovered += 1;
        }
    }
    assert!(
        recovered >= 1,
        "at least one planted dark network must be recovered"
    );

    // The EgoScan-style total-weight objective, in contrast, lumps far more accounts
    // together — the comparison the paper draws in Tables VIII/IX.
    let ego = EgoScan::default().solve(&gd);
    println!(
        "\nEgoScan (total-weight objective) returns {} accounts — density {:.2} vs {:.2} for the DCS",
        ego.subset.len(),
        gd.average_degree(&ego.subset),
        gd.average_degree(&report.subset)
    );
}

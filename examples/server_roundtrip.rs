//! A full round trip against the contrast-mining server: start `dcs-server`
//! in-process on an ephemeral port, create a session, load a historical
//! baseline, stream observation batches from two concurrent feeds, and mine —
//! demonstrating the triggered alert and the version-keyed result cache.
//!
//! The same exchange works against a stand-alone `dcs serve` process using
//! the `dcs client` subcommand, or any NDJSON-speaking TCP client; the wire
//! protocol is documented in the `dcs-server` crate docs.
//!
//! Run with:
//! ```text
//! cargo run --release --example server_roundtrip
//! ```

use dcs::datasets::{Scale, TrafficConfig};
use dcs_server::{Client, Server, ServerConfig};
use serde_json::json;

fn main() {
    // A road network with planted hotspots: G1 is the historical expectation,
    // G2 the current state we will replay as a stream.
    let pair = TrafficConfig::for_scale(Scale::Tiny).generate();
    let n = pair.g1.num_vertices();
    println!(
        "road network: {} intersections, {} segments, {} planted anomalies",
        n,
        pair.g1.num_edges(),
        pair.planted.len()
    );

    // Start the server on an ephemeral port.
    let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind")
        .start();
    let addr = handle.local_addr();
    println!("dcs-server listening on {addr}");

    // Control connection: session + baseline.
    let mut control = Client::connect(addr).expect("connect");
    control
        .create_session(
            "roads",
            n,
            json!({ "alert_threshold": 25.0, "measure": "degree" }),
        )
        .expect("create session");
    let baseline: Vec<(u32, u32, f64)> = pair.g1.edges().collect();
    let loaded = control.load_baseline("roads", &baseline).expect("baseline");
    println!("baseline loaded: {} segments", loaded["baseline_edges"]);

    // Two concurrent sensor feeds stream the current observations in batches.
    let updates: Vec<(u32, u32, f64)> = pair.g2.edges().collect();
    let halves: Vec<Vec<(u32, u32, f64)>> = vec![
        updates.iter().copied().step_by(2).collect(),
        updates.iter().copied().skip(1).step_by(2).collect(),
    ];
    std::thread::scope(|scope| {
        for (feed, half) in halves.iter().enumerate() {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect feed");
                for batch in half.chunks(64) {
                    let response = client.observe("roads", batch).expect("observe");
                    assert_eq!(response["ok"], true);
                    let _ = feed;
                }
            });
        }
    });
    let stats = control.stats("roads").expect("stats");
    println!(
        "streamed {} observations (graph version {})",
        stats["observations"], stats["version"]
    );

    // Mine: the hotspot cluster must trigger the alert.
    let mined = control.mine("roads").expect("mine");
    let result = &mined["result"];
    println!(
        "mined DCS: {} intersections, contrast {:.1}, triggered={} (cached={})",
        result["size"],
        result["density_difference"].as_f64().unwrap_or(0.0),
        result["triggered"],
        mined["cached"],
    );
    assert_eq!(mined["cached"], false);

    // Same graph version + same job: answered from the session cache.
    let again = control.mine("roads").expect("repeat mine");
    println!("repeat mine served from cache: cached={}", again["cached"]);
    assert_eq!(again["cached"], true);

    // Top-3 disjoint contrast groups over the wire.
    let topk = control.topk("roads", 3).expect("topk");
    for group in topk["results"].as_array().unwrap() {
        println!(
            "  rank {}: {} intersections, objective {:.1}",
            group["rank"],
            group["size"],
            group["objective"].as_f64().unwrap_or(0.0)
        );
    }

    control.shutdown().expect("shutdown");
    handle.join();
    println!("server shut down cleanly");
}

//! Trend detection in research topics — the motivating application of the paper's
//! introduction (Section I and VI-C).
//!
//! Two keyword-association graphs are built from simulated paper titles of an "early"
//! period and a "recent" period.  Mining dense subgraphs in the recent graph alone
//! surfaces evergreen topics ("time series"); mining the *difference* graph surfaces the
//! actual trends ("social networks", "matrix factorization").
//!
//! Run with:
//! ```text
//! cargo run --release -p dcs --example trend_detection
//! ```

use dcs::core::dcsga::{clique_census, refine, DcsgaConfig, SeaCd};
use dcs::datasets::{KeywordConfig, Scale};
use dcs::prelude::*;

fn top_topics(graph: &SignedGraph, label: &str, k: usize) {
    // All-initialisation SEACD sweep + refinement, then a clique census, exactly like the
    // paper's Table V/VI construction.
    let config = DcsgaConfig::default();
    let sweep = SeaCd::new(config).sweep(graph, None, true, |g, x| refine(g, x, &config));
    let census = clique_census(graph, &sweep.all_solutions);
    println!("\ntop {k} topics ({label}):");
    for (rank, clique) in census.iter().take(k).enumerate() {
        println!(
            "  #{rank}: keywords {:?}  affinity {:.3}",
            clique.support, clique.affinity
        );
    }
}

fn main() {
    let config = KeywordConfig::for_scale(Scale::Tiny);
    let pair = config.generate();
    println!(
        "simulated titles → keyword graphs with {} keywords, {} / {} association edges",
        pair.g1.num_vertices(),
        pair.g1.num_edges(),
        pair.g2.num_edges()
    );

    // Mining only the recent graph returns evergreen topics…
    top_topics(
        &pair.g2,
        "recent period only — includes evergreen topics",
        3,
    );

    // …while the difference graph isolates the emerging trends.
    let emerging_gd = difference_graph(&pair.g2, &pair.g1).expect("same vocabulary");
    let disappearing_gd = difference_graph(&pair.g1, &pair.g2).expect("same vocabulary");
    top_topics(&emerging_gd.positive_part(), "emerging trends (G2 − G1)", 3);
    top_topics(
        &disappearing_gd.positive_part(),
        "disappearing topics (G1 − G2)",
        3,
    );

    // Check the planted ground truth was recovered by the top emerging result.
    let newsea = NewSea::default().solve(&emerging_gd);
    let planted = pair.planted_of_kind(dcs::datasets::GroupKind::Emerging);
    let report = dcs::datasets::best_match(&newsea.support(), &planted);
    println!(
        "\nbest emerging DCS matches planted topic {:?} with Jaccard {:.2}",
        report.best_group, report.jaccard
    );
    assert!(
        report.jaccard > 0.5,
        "the emerging trend should be recovered"
    );
}

//! Detecting an emerging traffic hotspot against historical expectations — the
//! anomaly-detection application sketched in Section I of the paper.
//!
//! A grid road network carries an expected flow per segment (`G1`, from history).  Fresh
//! observations stream in and are folded into the observed graph (`G2`); every re-mining
//! period the density contrast subgraph of `G2 − G1` is mined and an alert is raised once
//! the contrast passes a threshold.
//!
//! Run with:
//! ```text
//! cargo run --release -p dcs --example traffic_anomaly
//! ```

use dcs::core::streaming::{StreamingConfig, StreamingDcs};
use dcs::core::{difference_graph, DensityMeasure};
use dcs::datasets::{Scale, TrafficConfig};
use dcs::prelude::*;

fn main() {
    // Historical expectations and the "true" current state with two planted hotspots.
    let config = TrafficConfig::for_scale(Scale::Tiny);
    let pair = config.generate();
    println!(
        "road network: {} intersections, {} segments, {} planted anomalies",
        pair.g1.num_vertices(),
        pair.g1.num_edges(),
        pair.planted.len()
    );

    // The monitor starts from the historical baseline with no observations yet.
    let mut monitor = StreamingDcs::new(
        pair.g1.clone(),
        StreamingConfig {
            remine_every: 500,
            alert_threshold: 25.0,
            measure: DensityMeasure::AverageDegree,
        },
    )
    .expect("baseline weights are non-negative");

    // Stream the current observations segment by segment.  In a deployment these would
    // arrive from roadside sensors; here we replay the edges of the generated G2.
    let mut alerts = Vec::new();
    for (u, v, flow) in pair.g2.edges() {
        if let Some(alert) = monitor.observe(u, v, flow) {
            println!(
                "after {:>5} observations: contrast {:.1} ({} intersections){}",
                alert.observations,
                alert.density_difference,
                alert.report.size,
                if alert.triggered { "  << ALERT" } else { "" }
            );
            alerts.push(alert);
        }
    }
    let final_alert = monitor.mine_now();
    println!(
        "final sweep: contrast {:.1} over {} intersections (triggered: {})",
        final_alert.density_difference, final_alert.report.size, final_alert.triggered
    );

    // Compare the streamed result against mining the full pair in one batch.
    let gd = difference_graph(&pair.g2, &pair.g1).expect("same vertex set");
    let batch = DcsGreedy::default().solve(&gd);
    println!(
        "batch DCSGreedy on the complete pair: contrast {:.1} over {} intersections",
        batch.density_difference,
        batch.subset.len()
    );

    // The strongest planted hotspot should be what the alert points at.
    let hotspot = &pair.planted[0];
    let overlap = final_alert
        .report
        .subset
        .iter()
        .filter(|v| hotspot.vertices.contains(v))
        .count();
    println!(
        "overlap with planted '{}': {}/{} intersections",
        hotspot.name,
        overlap,
        hotspot.vertices.len()
    );
    assert!(
        final_alert.triggered,
        "the planted hotspot must trigger an alert"
    );
    assert!(
        overlap * 2 >= hotspot.vertices.len(),
        "alert should cover most of the hotspot"
    );
}

//! Property-based tests of the command-line argument parser: any well-formed argument
//! sequence parses losslessly, and malformed input is rejected rather than misread.

use dcs_cli::args::{parse_args, ArgSpec};
use dcs_cli::error::CliError;
use proptest::prelude::*;

fn spec() -> ArgSpec {
    ArgSpec::new(
        &[
            "scheme",
            "alpha",
            "direction",
            "clamp",
            "k",
            "seed",
            "out",
            "scale",
            "measure",
        ],
        &["json", "numeric"],
    )
}

/// One well-formed argument fragment together with what it should parse to.
#[derive(Debug, Clone)]
enum Fragment {
    Positional(String),
    Valued { name: &'static str, value: String },
    Flag(&'static str),
}

fn arb_fragment() -> impl Strategy<Value = Fragment> {
    let positional = "[a-z][a-z0-9_./-]{0,12}".prop_map(Fragment::Positional);
    let valued = (
        prop::sample::select(vec!["scheme", "alpha", "k", "seed", "out", "measure"]),
        "[a-zA-Z0-9_./-]{1,10}",
    )
        .prop_map(|(name, value)| Fragment::Valued { name, value });
    let flag = prop::sample::select(vec!["json", "numeric"]).prop_map(Fragment::Flag);
    prop_oneof![3 => positional, 3 => valued, 1 => flag]
}

proptest! {
    /// Every well-formed sequence parses, and every fragment is recovered in the parse:
    /// positionals in order, the last value of each option, and all flags.
    #[test]
    fn well_formed_sequences_round_trip(fragments in proptest::collection::vec(arb_fragment(), 0..12)) {
        let mut raw: Vec<String> = Vec::new();
        for fragment in &fragments {
            match fragment {
                Fragment::Positional(text) => raw.push(text.clone()),
                Fragment::Valued { name, value } => {
                    raw.push(format!("--{name}"));
                    raw.push(value.clone());
                }
                Fragment::Flag(name) => raw.push(format!("--{name}")),
            }
        }
        let parsed = parse_args(&raw, &spec()).unwrap();

        let expected_positionals: Vec<&String> = fragments
            .iter()
            .filter_map(|f| match f {
                Fragment::Positional(text) => Some(text),
                _ => None,
            })
            .collect();
        prop_assert_eq!(parsed.positionals.len(), expected_positionals.len());
        for (got, want) in parsed.positionals.iter().zip(expected_positionals) {
            prop_assert_eq!(got, want);
        }

        for fragment in &fragments {
            match fragment {
                Fragment::Valued { name, .. } => prop_assert!(parsed.option(name).is_some()),
                Fragment::Flag(name) => prop_assert!(parsed.flag(name)),
                Fragment::Positional(_) => {}
            }
        }
        // The last occurrence of an option wins.
        for fragment in fragments.iter().rev() {
            if let Fragment::Valued { name, value } = fragment {
                if let Some(found) = parsed.option(name) {
                    prop_assert_eq!(found, value);
                }
                break;
            }
        }
    }

    /// Unknown `--options` are always rejected, never silently swallowed as positionals.
    #[test]
    fn unknown_options_are_rejected(name in "[a-z]{3,10}") {
        prop_assume!(!spec().valued.contains(&name.as_str()) && !spec().flags.contains(&name.as_str()));
        let raw = vec![format!("--{name}")];
        prop_assert!(matches!(
            parse_args(&raw, &spec()),
            Err(CliError::UnknownArgument(_))
        ));
    }

    /// A valued option at the end of the line (missing its value) is always an error.
    #[test]
    fn trailing_valued_option_is_rejected(
        name in prop::sample::select(vec!["scheme", "alpha", "k", "out"]),
        prefix in proptest::collection::vec("[a-z]{1,6}", 0..3),
    ) {
        let mut raw: Vec<String> = prefix;
        raw.push(format!("--{name}"));
        prop_assert!(matches!(
            parse_args(&raw, &spec()),
            Err(CliError::MissingValue(_))
        ));
    }
}

//! End-to-end tests of the `dcs` command-line tool: generate a synthetic pair with known
//! ground truth, then run the mining subcommands on the files it wrote and check that the
//! planted contrast group is reported.

use std::path::{Path, PathBuf};

fn strings(raw: &[&str]) -> Vec<String> {
    raw.iter().map(|s| s.to_string()).collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a hand-crafted labelled pair with one emerging clique (the "lab" of ada, bob,
/// cat, dan) and one disappearing pair (old1, old2) on top of a stable background.
fn write_labeled_pair(dir: &Path) -> (String, String) {
    let g1 = "\
# early period
ada bob 1
old1 old2 8
back1 back2 2
back2 back3 2
back3 back4 2
";
    let g2 = "\
# recent period
ada bob 5
ada cat 4
ada dan 4
bob cat 4
bob dan 5
cat dan 4
old1 old2 1
back1 back2 2
back2 back3 2
back3 back4 2
";
    let p1 = dir.join("g1.edges");
    let p2 = dir.join("g2.edges");
    std::fs::write(&p1, g1).unwrap();
    std::fs::write(&p2, g2).unwrap();
    (
        p1.to_string_lossy().into_owned(),
        p2.to_string_lossy().into_owned(),
    )
}

#[test]
fn mine_recovers_emerging_and_disappearing_groups() {
    let dir = temp_dir("dcs_cli_e2e_mine");
    let (p1, p2) = write_labeled_pair(&dir);

    let out = dcs_cli::run(&strings(&[
        "mine",
        &p1,
        &p2,
        "--direction",
        "both",
        "--measure",
        "both",
    ]))
    .unwrap();

    // The emerging four-person lab is found under both measures…
    assert!(out.contains("ada, bob, cat, dan"));
    // …and the weakened pair is the disappearing DCS.
    assert!(out.contains("old1, old2"));
    // The stable background must not be reported.
    assert!(!out.contains("back1"));
}

#[test]
fn stats_and_mine_agree_on_the_difference_graph() {
    let dir = temp_dir("dcs_cli_e2e_stats");
    let (p1, p2) = write_labeled_pair(&dir);

    let stats = dcs_cli::run(&strings(&["stats", &p1, &p2, "--json"])).unwrap();
    let json_start = stats.find('{').unwrap();
    let value: serde_json::Value = serde_json::from_str(&stats[json_start..]).unwrap();
    let section = &value["stats"][0];
    // Emerging direction: the 6 lab edges are positive, old1-old2 is negative,
    // the background cancels exactly.
    assert_eq!(section["m_plus"], 6);
    assert_eq!(section["m_minus"], 1);
}

#[test]
fn generate_then_mine_round_trip_recovers_a_planted_group() {
    let dir = temp_dir("dcs_cli_e2e_generate");
    let out_dir = dir.join("coauthor");

    let generated = dcs_cli::run(&strings(&[
        "generate",
        "coauthor",
        "--out",
        out_dir.to_str().unwrap(),
        "--scale",
        "tiny",
        "--seed",
        "11",
    ]))
    .unwrap();
    assert!(generated.contains("planted groups"));

    let g1 = out_dir.join("g1.edges");
    let g2 = out_dir.join("g2.edges");
    let mined = dcs_cli::run(&strings(&[
        "mine",
        g1.to_str().unwrap(),
        g2.to_str().unwrap(),
        "--numeric",
        "--measure",
        "affinity",
        "--json",
    ]))
    .unwrap();

    // Parse the mined support and check it is contained in one of the planted emerging
    // groups recorded by `generate`.
    let json_start = mined.find("{\n").unwrap();
    let value: serde_json::Value = serde_json::from_str(&mined[json_start..]).unwrap();
    let mined_vertices: Vec<u64> = value["results"][0]["vertices"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .collect();
    assert!(mined_vertices.len() >= 2);

    let planted = std::fs::read_to_string(out_dir.join("planted.txt")).unwrap();
    let emerging_groups: Vec<Vec<u64>> = planted
        .lines()
        .filter(|l| l.contains("Emerging"))
        .map(|l| {
            l.split_whitespace()
                .skip(2)
                .map(|t| t.parse().unwrap())
                .collect()
        })
        .collect();
    assert!(!emerging_groups.is_empty());
    assert!(
        emerging_groups
            .iter()
            .any(|group| mined_vertices.iter().all(|v| group.contains(v))),
        "mined affinity DCS {mined_vertices:?} should lie inside a planted emerging group"
    );

    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn topk_reports_disjoint_groups_in_rank_order() {
    let dir = temp_dir("dcs_cli_e2e_topk");
    let (p1, p2) = write_labeled_pair(&dir);

    let out = dcs_cli::run(&strings(&["topk", &p1, &p2, "--k", "3", "--json"])).unwrap();
    let json_start = out.find("{\n").unwrap();
    let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
    let results = value["results"].as_array().unwrap();
    assert!(!results.is_empty());
    // Ranks are 1..=len and affinity differences are non-increasing.
    let mut last = f64::INFINITY;
    for (i, result) in results.iter().enumerate() {
        assert_eq!(result["rank"].as_u64().unwrap() as usize, i + 1);
        let affinity = result["affinity_difference"].as_f64().unwrap();
        assert!(affinity <= last + 1e-9);
        last = affinity;
    }
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown command, missing files, malformed options: all must surface as Err values.
    assert!(dcs_cli::run(&strings(&["foo"])).is_err());
    assert!(dcs_cli::run(&strings(&["mine", "/no/such/file", "/no/such/file2"])).is_err());
    let dir = temp_dir("dcs_cli_e2e_errors");
    let (p1, p2) = write_labeled_pair(&dir);
    assert!(dcs_cli::run(&strings(&["mine", &p1, &p2, "--measure", "entropy"])).is_err());
    assert!(dcs_cli::run(&strings(&["topk", &p1, &p2, "--k", "minus-one"])).is_err());
}

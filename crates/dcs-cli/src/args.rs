//! A small command-line argument parser.
//!
//! The tool has four subcommands with a handful of `--flag` / `--option value` arguments
//! each; a hand-rolled parser keeps the dependency set to the workspace-approved crates.
//! Parsed arguments are collected into [`ParsedArgs`]: positionals in order, options as
//! the last value given, flags as booleans.

use std::collections::BTreeMap;

use crate::error::CliError;

/// Parsed command-line arguments for one subcommand.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    /// Positional arguments in the order they appeared.
    pub positionals: Vec<String>,
    /// `--name value` options (last occurrence wins).
    pub options: BTreeMap<String, String>,
    /// `--name` flags.
    pub flags: Vec<String>,
}

/// Declares which options take a value and which are boolean flags, so the parser can
/// tell `--json` from `--alpha 0.5` without guessing.
#[derive(Debug, Clone, Default)]
pub struct ArgSpec {
    /// Names (without the leading `--`) of options that take a value.
    pub valued: &'static [&'static str],
    /// Names (without the leading `--`) of boolean flags.
    pub flags: &'static [&'static str],
}

impl ArgSpec {
    /// Creates a spec from the valued-option and flag name lists.
    pub fn new(valued: &'static [&'static str], flags: &'static [&'static str]) -> Self {
        ArgSpec { valued, flags }
    }
}

/// Parses raw arguments against a spec.
pub fn parse_args(args: &[String], spec: &ArgSpec) -> Result<ParsedArgs, CliError> {
    let mut parsed = ParsedArgs::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            // Allow `--name=value` as well as `--name value`.
            if let Some((name, value)) = name.split_once('=') {
                if spec.valued.contains(&name) {
                    parsed.options.insert(name.to_string(), value.to_string());
                } else {
                    return Err(CliError::UnknownArgument(arg.clone()));
                }
            } else if spec.valued.contains(&name) {
                i += 1;
                let value = args
                    .get(i)
                    .ok_or_else(|| CliError::MissingValue(name.to_string()))?;
                parsed.options.insert(name.to_string(), value.clone());
            } else if spec.flags.contains(&name) {
                parsed.flags.push(name.to_string());
            } else {
                return Err(CliError::UnknownArgument(arg.clone()));
            }
        } else {
            parsed.positionals.push(arg.clone());
        }
        i += 1;
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// Returns the positional argument at `index` or an error naming what was expected.
    pub fn positional(&self, index: usize, what: &str) -> Result<&str, CliError> {
        self.positionals
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| CliError::MissingPositional(what.to_string()))
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of an option, if present.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Parses an option into a type, defaulting when absent.
    pub fn parse_option<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.option(name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| CliError::InvalidValue {
                option: name.to_string(),
                value: raw.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ArgSpec {
        ArgSpec::new(&["alpha", "seed", "k"], &["json", "numeric"])
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_options_and_flags() {
        let args = strings(&["g1.edges", "g2.edges", "--alpha", "0.5", "--json"]);
        let parsed = parse_args(&args, &spec()).unwrap();
        assert_eq!(parsed.positionals, vec!["g1.edges", "g2.edges"]);
        assert_eq!(parsed.option("alpha"), Some("0.5"));
        assert!(parsed.flag("json"));
        assert!(!parsed.flag("numeric"));
    }

    #[test]
    fn equals_form_is_accepted() {
        let args = strings(&["--alpha=2.0", "--seed=7"]);
        let parsed = parse_args(&args, &spec()).unwrap();
        assert_eq!(parsed.option("alpha"), Some("2.0"));
        assert_eq!(parsed.parse_option("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn unknown_argument_is_rejected() {
        let args = strings(&["--bogus"]);
        assert!(matches!(
            parse_args(&args, &spec()),
            Err(CliError::UnknownArgument(_))
        ));
        let args = strings(&["--bogus=3"]);
        assert!(matches!(
            parse_args(&args, &spec()),
            Err(CliError::UnknownArgument(_))
        ));
    }

    #[test]
    fn missing_value_is_rejected() {
        let args = strings(&["--alpha"]);
        assert!(matches!(
            parse_args(&args, &spec()),
            Err(CliError::MissingValue(_))
        ));
    }

    #[test]
    fn last_option_occurrence_wins() {
        let args = strings(&["--k", "3", "--k", "5"]);
        let parsed = parse_args(&args, &spec()).unwrap();
        assert_eq!(parsed.parse_option("k", 0usize).unwrap(), 5);
    }

    #[test]
    fn positional_and_parse_errors() {
        let parsed = parse_args(&strings(&["only-one"]), &spec()).unwrap();
        assert_eq!(parsed.positional(0, "G1").unwrap(), "only-one");
        assert!(matches!(
            parsed.positional(1, "G2"),
            Err(CliError::MissingPositional(_))
        ));
        let parsed = parse_args(&strings(&["--alpha", "not-a-number"]), &spec()).unwrap();
        assert!(matches!(
            parsed.parse_option("alpha", 1.0f64),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn defaults_apply_when_options_absent() {
        let parsed = parse_args(&[], &spec()).unwrap();
        assert_eq!(parsed.parse_option("k", 4usize).unwrap(), 4);
        assert_eq!(parsed.parse_option("alpha", 1.0f64).unwrap(), 1.0);
    }
}

//! Loading graph pairs and interpreting the shared mining options.
//!
//! Every mining subcommand takes the same inputs: two edge-list files over the same
//! entities, an optional weight scheme (`--scheme weighted|discrete|scaled`), the mining
//! direction (`--direction emerging|disappearing|both`) and an optional weight clamp.
//! This module centralises the loading and option interpretation so the subcommands stay
//! small.

use std::path::Path;
use std::time::Duration;

use dcs_core::{clamp_weights, difference_graph_with, DiscreteRule, SolveContext, WeightScheme};
use dcs_graph::labels::{align_vertex_counts, read_labeled_graph_pair_files, VertexLabels};
use dcs_graph::{io as graph_io, SignedGraph, VertexId};

use crate::args::ParsedArgs;
use crate::error::CliError;

/// A loaded pair of input graphs plus (when labelled input was used) the label table.
#[derive(Debug, Clone)]
pub struct PairInput {
    /// The first ("early"/"expected") graph `G1`.
    pub g1: SignedGraph,
    /// The second ("recent"/"observed") graph `G2`.
    pub g2: SignedGraph,
    /// Label table; `None` when the files were loaded as numeric edge lists.
    pub labels: Option<VertexLabels>,
}

impl PairInput {
    /// Loads a pair of graph files, each either a text edge list or a binary
    /// graph pack (auto-detected by the pack magic bytes — see
    /// [`dcs_graph::pack`]).
    ///
    /// Text endpoints are treated as string labels interned into a shared
    /// table by default; with `numeric` they are parsed as integer vertex ids
    /// directly.  Packs are always id-addressed, so as soon as either input
    /// is a pack the whole pair is loaded numerically (a pack written from
    /// one graph of a pair shares its numbering with the other by
    /// construction).  When both inputs are packs carrying identical
    /// vertex-name tables, the names are used for rendering.
    pub fn load<P: AsRef<Path>>(path1: P, path2: P, numeric: bool) -> Result<Self, CliError> {
        // An unreadable file sniffs as "not a pack" so the edge-list loader
        // reports the I/O problem with its usual error shape.
        let pack1 = dcs_graph::pack::file_is_pack(&path1).unwrap_or(false);
        let pack2 = dcs_graph::pack::file_is_pack(&path2).unwrap_or(false);
        if !pack1 && !pack2 {
            return if numeric {
                let g1 = graph_io::read_edge_list_file(path1)?;
                let g2 = graph_io::read_edge_list_file(path2)?;
                let (g1, g2) = align_vertex_counts(&g1, &g2);
                Ok(PairInput {
                    g1,
                    g2,
                    labels: None,
                })
            } else {
                let (g1, g2, labels) = read_labeled_graph_pair_files(path1, path2)?;
                Ok(PairInput {
                    g1,
                    g2,
                    labels: Some(labels),
                })
            };
        }
        let (g1, names1) = Self::load_side(path1, pack1)?;
        let (g2, names2) = Self::load_side(path2, pack2)?;
        let labels = match (names1, names2) {
            (Some(a), Some(b)) if a == b => Self::labels_from_names(&a),
            _ => None,
        };
        let (g1, g2) = align_vertex_counts(&g1, &g2);
        Ok(PairInput { g1, g2, labels })
    }

    /// Loads one side of a mixed pair: a pack (with its optional name table)
    /// or a numeric edge list.
    fn load_side<P: AsRef<Path>>(
        path: P,
        is_pack: bool,
    ) -> Result<(SignedGraph, Option<Vec<String>>), CliError> {
        if is_pack {
            let pack = dcs_graph::GraphPack::open(path)?;
            let names = pack.read_names()?;
            Ok((pack.to_graph()?, names))
        } else {
            Ok((graph_io::read_edge_list_file(path)?, None))
        }
    }

    /// Builds a label table from a pack name table; `None` when the names are
    /// not unique (interning would misalign ids).
    fn labels_from_names(names: &[String]) -> Option<VertexLabels> {
        let mut labels = VertexLabels::new();
        for name in names {
            labels.intern(name);
        }
        (labels.len() == names.len()).then_some(labels)
    }

    /// Renders a vertex subset using labels when available, ids otherwise.
    pub fn render_vertices(&self, vertices: &[VertexId]) -> Vec<String> {
        match &self.labels {
            Some(labels) => labels.labels_of(vertices),
            None => vertices.iter().map(|v| v.to_string()).collect(),
        }
    }
}

/// Which difference graph(s) to mine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `G_D = G2 − G1` — subgraphs denser in the second graph.
    Emerging,
    /// `G_D = G1 − G2` — subgraphs denser in the first graph.
    Disappearing,
    /// Both directions, reported one after the other.
    Both,
}

impl Direction {
    /// Parses a `--direction` value.
    pub fn parse(text: &str) -> Option<Direction> {
        match text.to_ascii_lowercase().as_str() {
            "emerging" => Some(Direction::Emerging),
            "disappearing" => Some(Direction::Disappearing),
            "both" => Some(Direction::Both),
            _ => None,
        }
    }

    /// The concrete directions to run.
    pub fn expand(self) -> Vec<Direction> {
        match self {
            Direction::Both => vec![Direction::Emerging, Direction::Disappearing],
            d => vec![d],
        }
    }

    /// Human-readable name used in section headers.
    pub fn name(self) -> &'static str {
        match self {
            Direction::Emerging => "Emerging (G2 - G1)",
            Direction::Disappearing => "Disappearing (G1 - G2)",
            Direction::Both => "Both",
        }
    }
}

/// The shared mining options of the `stats`, `mine` and `topk` subcommands.
#[derive(Debug, Clone, Copy)]
pub struct MiningOptions {
    /// The weight scheme used to build the difference graph.
    pub scheme: WeightScheme,
    /// The direction(s) to mine.
    pub direction: Direction,
    /// Optional symmetric clamp on difference-graph weights.
    pub clamp: Option<f64>,
}

impl MiningOptions {
    /// Interprets `--scheme`, `--alpha`, `--direction` and `--clamp`.
    pub fn from_args(args: &ParsedArgs) -> Result<Self, CliError> {
        let scheme = match args.option("scheme").unwrap_or("weighted") {
            "weighted" => WeightScheme::Weighted,
            "discrete" => WeightScheme::Discrete(DiscreteRule::default()),
            "scaled" => WeightScheme::Scaled {
                alpha: args.parse_option("alpha", 1.0)?,
            },
            other => {
                return Err(CliError::InvalidValue {
                    option: "scheme".to_string(),
                    value: other.to_string(),
                })
            }
        };
        let direction = match args.option("direction") {
            None => Direction::Emerging,
            Some(raw) => Direction::parse(raw).ok_or_else(|| CliError::InvalidValue {
                option: "direction".to_string(),
                value: raw.to_string(),
            })?,
        };
        let clamp = match args.option("clamp") {
            None => None,
            Some(raw) => Some(raw.parse().map_err(|_| CliError::InvalidValue {
                option: "clamp".to_string(),
                value: raw.to_string(),
            })?),
        };
        Ok(MiningOptions {
            scheme,
            direction,
            clamp,
        })
    }

    /// Interprets the shared solver-bound options `--timeout SECONDS` (wall-clock
    /// deadline), `--budget UNITS` (solver-specific work budget) and
    /// `--threads N` (intra-solve parallelism for peeling and KKT scans; 0 or
    /// absent inherits the `DCS_SOLVER_THREADS` environment default) into a
    /// [`SolveContext`].  With no flags the context is unbounded.
    pub fn solve_context(args: &ParsedArgs) -> Result<SolveContext, CliError> {
        let mut cx = SolveContext::unbounded();
        if let Some(raw) = args.option("threads") {
            let threads: usize = raw.parse().map_err(|_| CliError::InvalidValue {
                option: "threads".to_string(),
                value: raw.to_string(),
            })?;
            cx = cx.with_threads(threads);
        }
        if let Some(raw) = args.option("timeout") {
            let seconds: f64 = raw.parse().map_err(|_| CliError::InvalidValue {
                option: "timeout".to_string(),
                value: raw.to_string(),
            })?;
            // try_from_secs_f64 rejects NaN, negatives and values past u64 seconds
            // (a plain from_secs_f64 would panic on e.g. `--timeout 1e20`).
            let after =
                Duration::try_from_secs_f64(seconds).map_err(|_| CliError::InvalidValue {
                    option: "timeout".to_string(),
                    value: raw.to_string(),
                })?;
            cx = cx.with_deadline(after);
        }
        if let Some(raw) = args.option("budget") {
            let units: u64 = raw.parse().map_err(|_| CliError::InvalidValue {
                option: "budget".to_string(),
                value: raw.to_string(),
            })?;
            cx = cx.with_budget(units);
        }
        Ok(cx)
    }

    /// Builds the difference graph for one direction, applying the scheme and clamp.
    pub fn difference_graph(
        &self,
        pair: &PairInput,
        direction: Direction,
    ) -> Result<SignedGraph, CliError> {
        let (g2, g1) = match direction {
            Direction::Emerging | Direction::Both => (&pair.g2, &pair.g1),
            Direction::Disappearing => (&pair.g1, &pair.g2),
        };
        let gd = difference_graph_with(g2, g1, self.scheme)?;
        Ok(match self.clamp {
            Some(max_abs) => clamp_weights(&gd, max_abs),
            None => gd,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{parse_args, ArgSpec};

    fn temp_pair_files(dir_name: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "alice bob 1\nbob carol 2\n").unwrap();
        std::fs::write(&p2, "alice bob 4\nalice carol 3\nbob carol 3\n").unwrap();
        (p1, p2)
    }

    fn mining_args(raw: &[&str]) -> ParsedArgs {
        let spec = ArgSpec::new(&["scheme", "alpha", "direction", "clamp"], &["numeric"]);
        let raw: Vec<String> = raw.iter().map(|s| s.to_string()).collect();
        parse_args(&raw, &spec).unwrap()
    }

    #[test]
    fn loads_labeled_pair() {
        let (p1, p2) = temp_pair_files("dcs_cli_input_labeled");
        let pair = PairInput::load(&p1, &p2, false).unwrap();
        assert_eq!(pair.g1.num_vertices(), 3);
        assert_eq!(pair.g2.num_vertices(), 3);
        let rendered = pair.render_vertices(&[0, 1]);
        assert_eq!(rendered, vec!["alice".to_string(), "bob".to_string()]);
    }

    #[test]
    fn loads_numeric_pair() {
        let dir = std::env::temp_dir().join("dcs_cli_input_numeric");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "0 1 1\n").unwrap();
        std::fs::write(&p2, "0 1 2\n1 2 3\n").unwrap();
        let pair = PairInput::load(&p1, &p2, true).unwrap();
        assert!(pair.labels.is_none());
        assert_eq!(pair.g1.num_vertices(), 3); // aligned to the larger graph
        assert_eq!(pair.render_vertices(&[2]), vec!["2".to_string()]);
    }

    #[test]
    fn loads_pack_pairs_and_mixed_pairs() {
        let dir = std::env::temp_dir().join("dcs_cli_input_pack");
        std::fs::create_dir_all(&dir).unwrap();
        let text1 = dir.join("g1.edges");
        let text2 = dir.join("g2.edges");
        std::fs::write(&text1, "0 1 1\n1 2 2\n").unwrap();
        std::fs::write(&text2, "0 1 4\n0 2 3\n1 2 3\n").unwrap();
        let text_pair = PairInput::load(&text1, &text2, true).unwrap();

        let pack1 = dir.join("g1.pack");
        let pack2 = dir.join("g2.pack");
        dcs_datasets::PackWriter::write_graph(&text_pair.g1, &pack1).unwrap();
        dcs_datasets::PackWriter::write_graph(&text_pair.g2, &pack2).unwrap();

        // Both packs: same graphs as the text pair, no labels without names.
        let pack_pair = PairInput::load(&pack1, &pack2, false).unwrap();
        assert_eq!(pack_pair.g1, text_pair.g1);
        assert_eq!(pack_pair.g2, text_pair.g2);
        assert!(pack_pair.labels.is_none());

        // Mixed pack + text: the text side falls back to numeric parsing.
        let mixed = PairInput::load(&pack1, &text2, false).unwrap();
        assert_eq!(mixed.g1, text_pair.g1);
        assert_eq!(mixed.g2, text_pair.g2);

        // Packs with identical name tables surface them as labels.
        let names: Vec<String> = ["ann", "bob", "cat"].map(String::from).to_vec();
        dcs_datasets::PackWriter::write_graph_with_names(&text_pair.g1, &names, &pack1).unwrap();
        dcs_datasets::PackWriter::write_graph_with_names(&text_pair.g2, &names, &pack2).unwrap();
        let named = PairInput::load(&pack1, &pack2, false).unwrap();
        assert_eq!(named.render_vertices(&[0, 2]), vec!["ann", "cat"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn direction_parsing_and_expansion() {
        assert_eq!(Direction::parse("emerging"), Some(Direction::Emerging));
        assert_eq!(Direction::parse("BOTH"), Some(Direction::Both));
        assert_eq!(Direction::parse("sideways"), None);
        assert_eq!(Direction::Both.expand().len(), 2);
        assert_eq!(Direction::Emerging.expand(), vec![Direction::Emerging]);
    }

    #[test]
    fn options_defaults_and_scaled_scheme() {
        let options = MiningOptions::from_args(&mining_args(&[])).unwrap();
        assert_eq!(options.scheme, WeightScheme::Weighted);
        assert_eq!(options.direction, Direction::Emerging);
        assert!(options.clamp.is_none());

        let options = MiningOptions::from_args(&mining_args(&[
            "--scheme",
            "scaled",
            "--alpha",
            "0.5",
            "--direction",
            "both",
            "--clamp",
            "10",
        ]))
        .unwrap();
        assert_eq!(options.scheme, WeightScheme::Scaled { alpha: 0.5 });
        assert_eq!(options.direction, Direction::Both);
        assert_eq!(options.clamp, Some(10.0));
    }

    #[test]
    fn invalid_options_are_rejected() {
        assert!(MiningOptions::from_args(&mining_args(&["--scheme", "wild"])).is_err());
        assert!(MiningOptions::from_args(&mining_args(&["--direction", "up"])).is_err());
        assert!(MiningOptions::from_args(&mining_args(&["--clamp", "big"])).is_err());
    }

    #[test]
    fn difference_graph_respects_direction_and_clamp() {
        let (p1, p2) = temp_pair_files("dcs_cli_input_diff");
        let pair = PairInput::load(&p1, &p2, false).unwrap();
        let mut options = MiningOptions::from_args(&mining_args(&[])).unwrap();

        let emerging = options
            .difference_graph(&pair, Direction::Emerging)
            .unwrap();
        let disappearing = options
            .difference_graph(&pair, Direction::Disappearing)
            .unwrap();
        // alice-bob went from 1 to 4: +3 emerging, -3 disappearing.
        let (a, b) = (0, 1);
        assert_eq!(emerging.edge_weight(a, b), Some(3.0));
        assert_eq!(disappearing.edge_weight(a, b), Some(-3.0));

        options.clamp = Some(1.5);
        let clamped = options
            .difference_graph(&pair, Direction::Emerging)
            .unwrap();
        assert_eq!(clamped.edge_weight(a, b), Some(1.5));
    }
}

//! # dcs-cli
//!
//! The `dcs` command-line tool: mine density contrast subgraphs from plain edge-list
//! files without writing any Rust.
//!
//! ```text
//! dcs stats    <G1.edges> <G2.edges> ...   difference-graph statistics (Table II style)
//! dcs mine     <G1.edges> <G2.edges> ...   the DCS under average degree / graph affinity
//! dcs topk     <G1.edges> <G2.edges> ...   up to k vertex-disjoint contrast subgraphs
//! dcs sweep    <G1.edges> <G2.edges> ...   α-sweep of the scaled difference graph
//! dcs compare  <G1.edges> <G2.edges> ...   DCS vs EgoScan vs quasi-clique side by side
//! dcs census   <G1.edges> <G2.edges> ...   positive-clique census of the difference graph
//! dcs generate <dataset> --out <dir> ...   synthetic benchmark pairs with ground truth
//! dcs pack     <EDGES> --out <PACK> ...    convert an edge list to a zero-copy graph pack
//! dcs pack-info <PACK> [--verify]          inspect (and optionally verify) a graph pack
//! dcs serve    [--addr H:P] ...            run the NDJSON contrast-mining server
//! dcs client   <H:P> [REQUEST] ...         send requests to a running server
//! dcs sessions --data-dir DIR              list durable sessions in a data directory
//! ```
//!
//! Edge lists are `label label [weight]` per line by default (`--numeric` switches to
//! integer vertex ids); both graphs are interned into a shared vertex numbering so that
//! the difference graph is well defined.  Mining commands also accept binary graph
//! packs (written by `dcs pack` or `dcs-datasets`) anywhere an edge list is expected —
//! the format is auto-detected per file and packs are memory-mapped instead of
//! parsed.  The library surface of this crate is
//! [`run`], which maps raw arguments to the text a command prints — the binary in
//! `main.rs` is a thin wrapper, and tests call [`run`] directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod error;
pub mod input;
pub mod output;

pub use error::CliError;

/// The overall usage text printed by `dcs help` / `dcs --help`.
pub fn usage() -> String {
    format!(
        "dcs — density contrast subgraph mining\n\
         \n\
         Usage:\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n  {}\n\
         \n\
         Every command accepts exactly the options shown above.\n\
         Edge lists are `label label [weight]` per line; `--numeric` reads integer vertex ids.\n\
         Mining commands accept `--timeout SECS` and `--budget N`: a tripped bound returns\n\
         the best result found so far instead of running to convergence, and\n\
         `--trace-json FILE` dumps a solver phase timeline (peel, flow, CD shrink/expand,\n\
         µ_u sweep, …) as JSON.  `dcs stats --connect HOST:PORT` reads a running server's\n\
         observability surface (queue, latency percentiles, cache hit rate).\n\
         The serve/client protocol is documented in the `dcs-server` crate docs.\n",
        commands::stats::USAGE,
        commands::mine::USAGE,
        commands::topk::USAGE,
        commands::sweep::USAGE,
        commands::compare::USAGE,
        commands::census::USAGE,
        commands::generate::USAGE,
        commands::pack::USAGE,
        commands::pack_info::USAGE,
        commands::serve::USAGE,
        commands::client::USAGE,
        commands::sessions::USAGE,
    )
}

/// Dispatches a full argument list (excluding the program name) to the subcommands and
/// returns the text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = match args.split_first() {
        None => return Err(CliError::MissingCommand),
        Some((first, rest)) => (first.as_str(), rest),
    };
    match command {
        "stats" => commands::stats::run(rest),
        "mine" => commands::mine::run(rest),
        "topk" => commands::topk::run(rest),
        "sweep" => commands::sweep::run(rest),
        "compare" => commands::compare::run(rest),
        "census" => commands::census::run(rest),
        "generate" => commands::generate::run(rest),
        "pack" => commands::pack::run(rest),
        "pack-info" => commands::pack_info::run(rest),
        "serve" => commands::serve::run(rest),
        "client" => commands::client::run(rest),
        "sessions" => commands::sessions::run(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_lists_every_command() {
        let text = run(&strings(&["help"])).unwrap();
        for command in [
            "stats",
            "mine",
            "topk",
            "sweep",
            "compare",
            "census",
            "generate",
            "pack",
            "pack-info",
            "serve",
            "client",
            "sessions",
        ] {
            assert!(text.contains(command), "usage mentions {command}");
        }
        assert_eq!(run(&strings(&["--help"])).unwrap(), text);
    }

    #[test]
    fn missing_and_unknown_commands() {
        assert!(matches!(run(&[]), Err(CliError::MissingCommand)));
        assert!(matches!(
            run(&strings(&["compress"])),
            Err(CliError::UnknownCommand(_))
        ));
    }
}

//! Error type of the command-line tool.

use dcs_core::DcsError;
use dcs_graph::io::IoError;

/// Everything that can go wrong while handling a CLI invocation.
#[derive(Debug)]
pub enum CliError {
    /// No subcommand was given.
    MissingCommand,
    /// An unknown subcommand was given.
    UnknownCommand(String),
    /// An argument that is neither a known option nor a known flag.
    UnknownArgument(String),
    /// A `--option` that requires a value appeared last on the command line.
    MissingValue(String),
    /// A required positional argument (named in the payload) was not supplied.
    MissingPositional(String),
    /// An option value could not be parsed.
    InvalidValue {
        /// Option name (without `--`).
        option: String,
        /// The offending raw value.
        value: String,
    },
    /// Reading or parsing an edge-list file failed.
    Graph(IoError),
    /// Opening or decoding a binary graph pack failed.
    Pack(dcs_graph::PackError),
    /// The DCS library rejected the input (mismatched vertex sets, negative weights, …).
    Dcs(DcsError),
    /// Writing an output file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => {
                write!(f, "no command given; run `dcs --help` for usage")
            }
            CliError::UnknownCommand(cmd) => {
                write!(f, "unknown command {cmd:?}; run `dcs --help` for usage")
            }
            CliError::UnknownArgument(arg) => write!(f, "unknown argument {arg:?}"),
            CliError::MissingValue(name) => write!(f, "option --{name} expects a value"),
            CliError::MissingPositional(what) => {
                write!(f, "missing required argument: {what}")
            }
            CliError::InvalidValue { option, value } => {
                write!(f, "invalid value {value:?} for --{option}")
            }
            CliError::Graph(e) => write!(f, "cannot load graph: {e}"),
            CliError::Pack(e) => write!(f, "cannot load graph pack: {e}"),
            CliError::Dcs(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Graph(e) => Some(e),
            CliError::Pack(e) => Some(e),
            CliError::Dcs(e) => Some(e),
            CliError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoError> for CliError {
    fn from(e: IoError) -> Self {
        CliError::Graph(e)
    }
}

impl From<DcsError> for CliError {
    fn from(e: DcsError) -> Self {
        CliError::Dcs(e)
    }
}

impl From<dcs_graph::PackError> for CliError {
    fn from(e: dcs_graph::PackError) -> Self {
        CliError::Pack(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CliError::MissingCommand.to_string().contains("--help"));
        assert!(CliError::UnknownCommand("foo".into())
            .to_string()
            .contains("foo"));
        assert!(CliError::MissingValue("alpha".into())
            .to_string()
            .contains("--alpha"));
        assert!(CliError::InvalidValue {
            option: "k".into(),
            value: "x".into()
        }
        .to_string()
        .contains("--k"));
        assert!(CliError::MissingPositional("G1 edge list".into())
            .to_string()
            .contains("G1"));
    }

    #[test]
    fn conversions_preserve_sources() {
        use std::error::Error;
        let io = CliError::from(std::io::Error::other("boom"));
        assert!(io.source().is_some());
        let parse = CliError::from(IoError::Parse {
            line_number: 1,
            line: "x".into(),
        });
        assert!(parse.to_string().contains("cannot load graph"));
    }
}

//! `dcs stats` — difference-graph statistics for a pair of edge lists, or the
//! observability surface of a running `dcs serve` instance (`--connect`).

use dcs_datasets::DiffStats;
use dcs_server::Client;
use serde_json::{json, Value};

use crate::args::{parse_args, ArgSpec, ParsedArgs};
use crate::error::CliError;
use crate::input::{MiningOptions, PairInput};
use crate::output::{json_to_string, render_block};

/// Usage string shown by `dcs help`.
pub const USAGE: &str =
    "dcs stats <G1.edges> <G2.edges> [--numeric] [--scheme weighted|discrete|scaled] \
[--alpha X] [--direction emerging|disappearing|both] [--clamp X] [--json] | \
dcs stats --connect HOST:PORT [--session NAME] [--json]";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &[
            "scheme",
            "alpha",
            "direction",
            "clamp",
            "connect",
            "session",
        ],
        &["numeric", "json"],
    )
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    if let Some(addr) = args.option("connect") {
        return server_stats(addr, args.option("session"), args.flag("json"));
    }
    let pair = load_pair(&args)?;
    let options = MiningOptions::from_args(&args)?;

    let mut out = String::new();
    let mut json_sections = Vec::new();
    for direction in options.direction.expand() {
        let gd = options.difference_graph(&pair, direction)?;
        let stats = DiffStats::compute(&gd);
        out.push_str(&render_block(
            &format!("Difference graph — {}", direction.name()),
            &[
                ("vertices (n)", stats.n.to_string()),
                ("positive edges (m+)", stats.m_plus.to_string()),
                ("negative edges (m-)", stats.m_minus.to_string()),
                ("max weight", format!("{:.4}", stats.max_weight)),
                ("min weight", format!("{:.4}", stats.min_weight)),
                ("average weight", format!("{:.4}", stats.average_weight)),
                ("m+/n", format!("{:.4}", stats.positive_density())),
            ],
        ));
        out.push('\n');
        json_sections.push(json!({
            "direction": direction.name(),
            "n": stats.n,
            "m_plus": stats.m_plus,
            "m_minus": stats.m_minus,
            "max_weight": stats.max_weight,
            "min_weight": stats.min_weight,
            "average_weight": stats.average_weight,
            "positive_density": stats.positive_density(),
        }));
    }
    if args.flag("json") {
        out.push_str(&json_to_string(&json!({ "stats": json_sections })));
    }
    Ok(out)
}

fn load_pair(args: &ParsedArgs) -> Result<PairInput, CliError> {
    let g1 = args.positional(0, "G1 edge-list file")?;
    let g2 = args.positional(1, "G2 edge-list file")?;
    PairInput::load(g1, g2, args.flag("numeric"))
}

/// Fetches and renders the `stats` payload of a running server: the
/// server-wide observability surface, or one session's counters with
/// `--session`.
fn server_stats(addr: &str, session: Option<&str>, as_json: bool) -> Result<String, CliError> {
    let mut client = Client::connect(addr).map_err(|e| {
        let reason = match e {
            dcs_server::ServerError::Io(io) => io.to_string(),
            other => other.to_string(),
        };
        CliError::Io(std::io::Error::other(format!(
            "cannot connect to {addr}: {reason}"
        )))
    })?;
    let mut request = json!({ "cmd": "stats" });
    if let Some(name) = session {
        request["session"] = json!(name);
    }
    let payload = client
        .request(request)
        .map_err(|e| CliError::Io(std::io::Error::other(format!("stats request failed: {e}"))))?;

    if as_json {
        return Ok(json_to_string(&payload));
    }
    Ok(match session {
        Some(name) => render_session_stats(name, &payload),
        None => render_server_stats(addr, &payload),
    })
}

fn u64_at(value: &Value, keys: &[&str]) -> u64 {
    keys.iter().fold(value, |v, k| &v[*k]).as_u64().unwrap_or(0)
}

/// Renders a latency summary (`{count, mean_us, p50_us, p95_us, p99_us,
/// max_us}`) as one line.
fn latency_line(summary: &Value) -> String {
    format!(
        "n={} mean={:.0}µs p50={}µs p95={}µs p99={}µs max={}µs",
        u64_at(summary, &["count"]),
        summary["mean_us"].as_f64().unwrap_or(0.0),
        u64_at(summary, &["p50_us"]),
        u64_at(summary, &["p95_us"]),
        u64_at(summary, &["p99_us"]),
        u64_at(summary, &["max_us"]),
    )
}

fn render_session_stats(name: &str, payload: &Value) -> String {
    render_block(
        &format!("Session {name}"),
        &[
            ("vertices", u64_at(payload, &["vertices"]).to_string()),
            (
                "observations",
                u64_at(payload, &["observations"]).to_string(),
            ),
            ("graph version", u64_at(payload, &["version"]).to_string()),
            (
                "observed edges",
                u64_at(payload, &["observed_edges"]).to_string(),
            ),
            (
                "baseline edges",
                u64_at(payload, &["baseline_edges"]).to_string(),
            ),
            (
                "cache entries",
                u64_at(payload, &["cache", "entries"]).to_string(),
            ),
            (
                "cache hits / misses",
                format!(
                    "{} / {}",
                    u64_at(payload, &["cache", "hits"]),
                    u64_at(payload, &["cache", "misses"])
                ),
            ),
            (
                "cache evictions",
                u64_at(payload, &["cache", "evictions"]).to_string(),
            ),
        ],
    )
}

fn render_server_stats(addr: &str, payload: &Value) -> String {
    let mut out = render_block(
        &format!("Server {addr}"),
        &[
            (
                "uptime",
                format!("{:.1}s", u64_at(payload, &["uptime_ms"]) as f64 / 1e3),
            ),
            ("sessions", u64_at(payload, &["sessions"]).to_string()),
            (
                "requests (errors)",
                format!(
                    "{} ({})",
                    u64_at(payload, &["requests", "total"]),
                    u64_at(payload, &["requests", "errors"])
                ),
            ),
            (
                "queue depth / inflight",
                format!(
                    "{} / {} (capacity {}, {} workers)",
                    u64_at(payload, &["queue", "depth"]),
                    u64_at(payload, &["queue", "inflight"]),
                    u64_at(payload, &["queue", "capacity"]),
                    u64_at(payload, &["queue", "workers"])
                ),
            ),
            (
                "jobs executed / rejected",
                format!(
                    "{} / {}",
                    u64_at(payload, &["queue", "executed"]),
                    u64_at(payload, &["queue", "rejected"])
                ),
            ),
            (
                "jobs completed (cached)",
                format!(
                    "{} ({})",
                    u64_at(payload, &["jobs", "completed"]),
                    u64_at(payload, &["jobs", "cached"])
                ),
            ),
            (
                "cache hit rate",
                format!(
                    "{:.1}% ({} hits, {} misses, {} evictions)",
                    payload["cache"]["hit_rate"].as_f64().unwrap_or(0.0) * 100.0,
                    u64_at(payload, &["cache", "hits"]),
                    u64_at(payload, &["cache", "misses"]),
                    u64_at(payload, &["cache", "evictions"])
                ),
            ),
            (
                "observe batches",
                format!(
                    "{} ({} updates, {:.1}/s)",
                    u64_at(payload, &["observes", "batches"]),
                    u64_at(payload, &["observes", "updates"]),
                    payload["observes"]["per_sec"].as_f64().unwrap_or(0.0)
                ),
            ),
            (
                "terminations",
                format!(
                    "converged {} / deadline {} / cancelled {} / budget {}",
                    u64_at(payload, &["terminations", "converged"]),
                    u64_at(payload, &["terminations", "deadline"]),
                    u64_at(payload, &["terminations", "cancelled"]),
                    u64_at(payload, &["terminations", "budget_exhausted"])
                ),
            ),
            ("queue wait", latency_line(&payload["queue"]["wait_us"])),
            (
                "io events",
                format!(
                    "accepts {} / reads {} / writes {} ({} threads, {})",
                    u64_at(payload, &["io", "accepts"]),
                    u64_at(payload, &["io", "read_events"]),
                    u64_at(payload, &["io", "write_events"]),
                    u64_at(payload, &["io", "threads"]),
                    payload["io"]["backend"].as_str().unwrap_or("?")
                ),
            ),
            (
                "connections open",
                format!(
                    "{} (of {} opened)",
                    u64_at(payload, &["io", "connections_open"]),
                    u64_at(payload, &["io", "connections_opened"])
                ),
            ),
            ("load shed", u64_at(payload, &["io", "shed"]).to_string()),
        ],
    );
    out.push('\n');

    if let Some(shards) = payload["shards"].as_array() {
        let rows: Vec<(String, String)> = shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                (
                    format!("shard {index}"),
                    format!(
                        "{} sessions, cache {:.1}% ({}/{}), mailbox {} pending (hw {}, shed {})",
                        u64_at(shard, &["sessions"]),
                        shard["cache"]["hit_rate"].as_f64().unwrap_or(0.0) * 100.0,
                        u64_at(shard, &["cache", "hits"]),
                        u64_at(shard, &["cache", "misses"]),
                        u64_at(shard, &["mailbox", "pending"]),
                        u64_at(shard, &["mailbox", "high_water"]),
                        u64_at(shard, &["mailbox", "shed"])
                    ),
                )
            })
            .collect();
        let refs: Vec<(&str, String)> = rows
            .iter()
            .map(|(label, text)| (label.as_str(), text.clone()))
            .collect();
        out.push_str(&render_block("Registry shards", &refs));
        out.push('\n');
    }

    let mut latency_rows: Vec<(&str, String)> = Vec::new();
    for kind in ["mine", "topk", "sweep"] {
        latency_rows.push((
            kind,
            latency_line(&payload["jobs"]["wall_us_by_kind"][kind]),
        ));
    }
    latency_rows.push((
        "measure affinity",
        latency_line(&payload["jobs"]["wall_us_by_measure"]["affinity"]),
    ));
    latency_rows.push((
        "measure degree",
        latency_line(&payload["jobs"]["wall_us_by_measure"]["degree"]),
    ));
    out.push_str(&render_block("Job wall time", &latency_rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_server::{Server, ServerConfig};

    fn write_pair(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "a b 1\nb c 5\n").unwrap();
        std::fs::write(&p2, "a b 4\na c 2\nb c 1\n").unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn reports_counts_for_one_direction() {
        let (p1, p2) = write_pair("dcs_cli_stats_basic");
        let out = run(&strings(&[&p1, &p2])).unwrap();
        assert!(out.contains("Emerging"));
        assert!(!out.contains("Disappearing"));
        // a-b: +3, a-c: +2, b-c: -4 -> 2 positive, 1 negative.
        assert!(out.contains("positive edges (m+)  2"));
        assert!(out.contains("negative edges (m-)  1"));
    }

    #[test]
    fn both_directions_and_json() {
        let (p1, p2) = write_pair("dcs_cli_stats_both");
        let out = run(&strings(&[&p1, &p2, "--direction", "both", "--json"])).unwrap();
        assert!(out.contains("Emerging"));
        assert!(out.contains("Disappearing"));
        assert!(out.contains("\"stats\""));
        let json_start = out.find('{').unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        assert_eq!(value["stats"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn missing_file_argument_is_an_error() {
        let (p1, _) = write_pair("dcs_cli_stats_missing");
        assert!(matches!(
            run(&strings(&[&p1])),
            Err(CliError::MissingPositional(_))
        ));
    }

    #[test]
    fn unreadable_file_is_an_error() {
        let out = run(&strings(&["/nonexistent/a.edges", "/nonexistent/b.edges"]));
        assert!(matches!(out, Err(CliError::Graph(_))));
    }

    #[test]
    fn connect_mode_renders_server_and_session_stats() {
        let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
            .unwrap()
            .start();
        let addr = handle.local_addr().to_string();

        let mut client = Client::connect(&addr).unwrap();
        client.create_session("s", 8, json!({})).unwrap();
        client
            .observe("s", &[(0, 1, 3.0), (1, 2, 2.0), (0, 2, 2.0)])
            .unwrap();
        client.mine("s").unwrap();
        client.mine("s").unwrap(); // cache hit

        let out = run(&strings(&["--connect", &addr])).unwrap();
        assert!(out.contains(&format!("Server {addr}")));
        assert!(out.contains("queue depth / inflight"));
        let completed = out
            .lines()
            .find(|l| l.starts_with("jobs completed (cached)"))
            .unwrap();
        assert!(completed.ends_with("2 (1)"), "line: {completed:?}");
        assert!(out.contains("cache hit rate"));
        assert!(out.contains("Job wall time"));
        assert!(out.contains("io events"));
        assert!(out.contains("Registry shards"));
        assert!(out.contains("load shed"));

        let session_out = run(&strings(&["--connect", &addr, "--session", "s"])).unwrap();
        assert!(session_out.contains("Session s"));
        let observations = session_out
            .lines()
            .find(|l| l.starts_with("observations"))
            .unwrap();
        assert!(observations.ends_with('3'), "line: {observations:?}");
        assert!(session_out.contains("cache hits / misses  1 / 1"));

        let json_out = run(&strings(&["--connect", &addr, "--json"])).unwrap();
        let value: Value = serde_json::from_str(&json_out).unwrap();
        assert_eq!(value["sessions"], 1);
        assert_eq!(value["jobs"]["completed"], 2);
        assert_eq!(
            value["jobs"]["wall_us_by_kind"]["mine"]["count"]
                .as_u64()
                .unwrap(),
            1
        );

        client.shutdown().unwrap();
        handle.join();
    }

    #[test]
    fn connect_mode_reports_unreachable_servers() {
        let out = run(&strings(&["--connect", "127.0.0.1:1"]));
        match out {
            Err(CliError::Io(e)) => assert!(e.to_string().contains("cannot connect")),
            other => panic!("expected an Io error, got {other:?}"),
        }
    }
}

//! `dcs stats` — difference-graph statistics for a pair of edge lists.

use dcs_datasets::DiffStats;
use serde_json::json;

use crate::args::{parse_args, ArgSpec, ParsedArgs};
use crate::error::CliError;
use crate::input::{MiningOptions, PairInput};
use crate::output::{json_to_string, render_block};

/// Usage string shown by `dcs help`.
pub const USAGE: &str =
    "dcs stats <G1.edges> <G2.edges> [--numeric] [--scheme weighted|discrete|scaled] \
[--alpha X] [--direction emerging|disappearing|both] [--clamp X] [--json]";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &["scheme", "alpha", "direction", "clamp"],
        &["numeric", "json"],
    )
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let pair = load_pair(&args)?;
    let options = MiningOptions::from_args(&args)?;

    let mut out = String::new();
    let mut json_sections = Vec::new();
    for direction in options.direction.expand() {
        let gd = options.difference_graph(&pair, direction)?;
        let stats = DiffStats::compute(&gd);
        out.push_str(&render_block(
            &format!("Difference graph — {}", direction.name()),
            &[
                ("vertices (n)", stats.n.to_string()),
                ("positive edges (m+)", stats.m_plus.to_string()),
                ("negative edges (m-)", stats.m_minus.to_string()),
                ("max weight", format!("{:.4}", stats.max_weight)),
                ("min weight", format!("{:.4}", stats.min_weight)),
                ("average weight", format!("{:.4}", stats.average_weight)),
                ("m+/n", format!("{:.4}", stats.positive_density())),
            ],
        ));
        out.push('\n');
        json_sections.push(json!({
            "direction": direction.name(),
            "n": stats.n,
            "m_plus": stats.m_plus,
            "m_minus": stats.m_minus,
            "max_weight": stats.max_weight,
            "min_weight": stats.min_weight,
            "average_weight": stats.average_weight,
            "positive_density": stats.positive_density(),
        }));
    }
    if args.flag("json") {
        out.push_str(&json_to_string(&json!({ "stats": json_sections })));
    }
    Ok(out)
}

fn load_pair(args: &ParsedArgs) -> Result<PairInput, CliError> {
    let g1 = args.positional(0, "G1 edge-list file")?;
    let g2 = args.positional(1, "G2 edge-list file")?;
    PairInput::load(g1, g2, args.flag("numeric"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_pair(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "a b 1\nb c 5\n").unwrap();
        std::fs::write(&p2, "a b 4\na c 2\nb c 1\n").unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn reports_counts_for_one_direction() {
        let (p1, p2) = write_pair("dcs_cli_stats_basic");
        let out = run(&strings(&[&p1, &p2])).unwrap();
        assert!(out.contains("Emerging"));
        assert!(!out.contains("Disappearing"));
        // a-b: +3, a-c: +2, b-c: -4 -> 2 positive, 1 negative.
        assert!(out.contains("positive edges (m+)  2"));
        assert!(out.contains("negative edges (m-)  1"));
    }

    #[test]
    fn both_directions_and_json() {
        let (p1, p2) = write_pair("dcs_cli_stats_both");
        let out = run(&strings(&[&p1, &p2, "--direction", "both", "--json"])).unwrap();
        assert!(out.contains("Emerging"));
        assert!(out.contains("Disappearing"));
        assert!(out.contains("\"stats\""));
        let json_start = out.find('{').unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        assert_eq!(value["stats"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn missing_file_argument_is_an_error() {
        let (p1, _) = write_pair("dcs_cli_stats_missing");
        assert!(matches!(
            run(&strings(&[&p1])),
            Err(CliError::MissingPositional(_))
        ));
    }

    #[test]
    fn unreadable_file_is_an_error() {
        let out = run(&strings(&["/nonexistent/a.edges", "/nonexistent/b.edges"]));
        assert!(matches!(out, Err(CliError::Graph(_))));
    }
}

//! `dcs pack` — convert a text edge list into a binary graph pack.
//!
//! Packs are the zero-copy input format: `dcs mine|topk|sweep|stats` and the
//! server open them by memory-mapping instead of parsing text (see the
//! format spec in the `dcs-datasets` crate's `pack` module docs).  By
//! default the input is read as a labelled edge list and the labels are
//! embedded as the pack's vertex-name section; `--numeric` reads integer
//! vertex ids and writes no names.

use dcs_datasets::PackWriter;
use dcs_graph::io as graph_io;
use dcs_graph::labels::{read_labeled_edge_list_file, VertexLabels};

use crate::args::{parse_args, ArgSpec};
use crate::error::CliError;

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs pack <EDGES> --out <PACK> [--numeric]";

fn spec() -> ArgSpec {
    ArgSpec::new(&["out"], &["numeric"])
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let input = args.positional(0, "edge-list file")?.to_string();
    let out = args
        .option("out")
        .ok_or_else(|| CliError::MissingPositional("--out pack file".to_string()))?
        .to_string();

    let summary = if args.flag("numeric") {
        let g = graph_io::read_edge_list_file(&input)?;
        PackWriter::write_graph(&g, &out)?
    } else {
        let mut labels = VertexLabels::new();
        let g = read_labeled_edge_list_file(&input, &mut labels)?;
        let names: Vec<String> = (0..g.num_vertices() as dcs_graph::VertexId)
            .map(|v| {
                labels
                    .label_of(v)
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("v{v}"))
            })
            .collect();
        PackWriter::write_graph_with_names(&g, &names, &out)?
    };

    Ok(format!(
        "packed {input} -> {out}\n\
         vertices: {}\nedges: {} ({} positive, {} negative)\nbytes: {}\n",
        summary.vertices,
        summary.edges,
        summary.positive_edges,
        summary.negative_edges,
        summary.bytes
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn packs_a_labeled_edge_list_with_names() {
        let dir = std::env::temp_dir().join("dcs_cli_pack_labeled");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.edges");
        let pack = dir.join("g.pack");
        std::fs::write(&edges, "alice bob 2\nbob carol -1\n").unwrap();
        let out = run(&strings(&[
            edges.to_str().unwrap(),
            "--out",
            pack.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("vertices: 3"));
        assert!(out.contains("edges: 2 (1 positive, 1 negative)"));

        let opened = dcs_graph::GraphPack::open(&pack).unwrap();
        opened.verify().unwrap();
        assert_eq!(
            opened.read_names().unwrap().unwrap(),
            vec!["alice", "bob", "carol"]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn packs_a_numeric_edge_list_without_names() {
        let dir = std::env::temp_dir().join("dcs_cli_pack_numeric");
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("g.edges");
        let pack = dir.join("g.pack");
        std::fs::write(&edges, "0 1 1.5\n1 2 2.5\n").unwrap();
        run(&strings(&[
            edges.to_str().unwrap(),
            "--out",
            pack.to_str().unwrap(),
            "--numeric",
        ]))
        .unwrap();
        let opened = dcs_graph::GraphPack::open(&pack).unwrap();
        assert!(!opened.has_names());
        assert_eq!(opened.edges(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn requires_input_and_out() {
        assert!(matches!(
            run(&strings(&[])),
            Err(CliError::MissingPositional(_))
        ));
        assert!(matches!(
            run(&strings(&["g.edges"])),
            Err(CliError::MissingPositional(_))
        ));
    }
}

//! `dcs topk` — mine up to `k` vertex-disjoint density contrast subgraphs.
//!
//! The paper's conclusion lists mining several high-contrast subgraphs as future work;
//! the library implements the peeling strategy in `dcs-core::topk` and this subcommand
//! exposes it on edge-list inputs.

use dcs_core::dcsga::DcsgaConfig;
use dcs_core::{top_k_affinity, top_k_average_degree, ContrastReport};
use serde_json::json;

use crate::args::{parse_args, ArgSpec, ParsedArgs};
use crate::error::CliError;
use crate::input::{MiningOptions, PairInput};
use crate::output::{json_to_string, render_report, report_to_json};

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs topk <G1.edges> <G2.edges> [--k N] [--measure degree|affinity] [--numeric] \
[--scheme weighted|discrete|scaled] [--alpha X] [--direction emerging|disappearing|both] [--clamp X] [--json]";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &["k", "measure", "scheme", "alpha", "direction", "clamp"],
        &["numeric", "json"],
    )
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let pair = load_pair(&args)?;
    let options = MiningOptions::from_args(&args)?;
    let k: usize = args.parse_option("k", 5)?;
    let use_affinity = match args.option("measure").unwrap_or("affinity") {
        "affinity" | "graph-affinity" | "ga" => true,
        "degree" | "average-degree" | "ad" => false,
        other => {
            return Err(CliError::InvalidValue {
                option: "measure".to_string(),
                value: other.to_string(),
            })
        }
    };

    let mut out = String::new();
    let mut json_results = Vec::new();
    for direction in options.direction.expand() {
        let gd = options.difference_graph(&pair, direction)?;
        let reports: Vec<ContrastReport> = if use_affinity {
            top_k_affinity(&gd, k, DcsgaConfig::default())
                .iter()
                .map(|s| ContrastReport::for_embedding(&gd, &s.embedding))
                .collect()
        } else {
            top_k_average_degree(&gd, k)
                .iter()
                .map(|s| ContrastReport::for_subset(&gd, &s.subset))
                .collect()
        };

        out.push_str(&format!(
            "{} — top {} of {} requested ({})\n\n",
            direction.name(),
            reports.len(),
            k,
            if use_affinity {
                "graph affinity"
            } else {
                "average degree"
            },
        ));
        for (rank, report) in reports.iter().enumerate() {
            let members = pair.render_vertices(&report.subset);
            out.push_str(&render_report(&format!("#{}", rank + 1), report, &members));
            out.push('\n');
            let mut value = report_to_json(report, &members);
            value["rank"] = json!(rank + 1);
            value["direction"] = json!(direction.name());
            json_results.push(value);
        }
    }

    if args.flag("json") {
        out.push_str(&json_to_string(&json!({ "results": json_results })));
    }
    Ok(out)
}

fn load_pair(args: &ParsedArgs) -> Result<PairInput, CliError> {
    let g1 = args.positional(0, "G1 edge-list file")?;
    let g2 = args.positional(1, "G2 edge-list file")?;
    PairInput::load(g1, g2, args.flag("numeric"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// G2 contains two disjoint intensifying groups: a triangle and a heavy pair.
    fn write_pair(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "a b 1\nd e 1\nf g 1\n").unwrap();
        std::fs::write(&p2, "a b 6\na c 5\nb c 5\nd e 4\nf g 1\n").unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn finds_both_planted_groups_under_affinity() {
        let (p1, p2) = write_pair("dcs_cli_topk_affinity");
        let out = run(&strings(&[&p1, &p2, "--k", "3"])).unwrap();
        assert!(out.contains("#1"));
        assert!(out.contains("#2"));
        assert!(out.contains("a, b, c"));
        assert!(out.contains("d, e"));
        // The f-g pair did not change, so it must not appear as a third group.
        assert!(!out.contains("#3"));
    }

    #[test]
    fn degree_measure_and_json() {
        let (p1, p2) = write_pair("dcs_cli_topk_degree");
        let out = run(&strings(&[
            &p1,
            &p2,
            "--measure",
            "degree",
            "--k",
            "2",
            "--json",
        ]))
        .unwrap();
        assert!(out.contains("average degree"));
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        assert_eq!(value["results"].as_array().unwrap().len(), 2);
        assert_eq!(value["results"][0]["rank"], 1);
    }

    #[test]
    fn rejects_bad_measure_and_bad_k() {
        let (p1, p2) = write_pair("dcs_cli_topk_bad");
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--measure", "mass"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--k", "many"])),
            Err(CliError::InvalidValue { .. })
        ));
    }
}

//! `dcs topk` — mine up to `k` vertex-disjoint density contrast subgraphs.
//!
//! The paper's conclusion lists mining several high-contrast subgraphs as future work;
//! the library implements the peeling strategy in `dcs-core::topk` and this subcommand
//! exposes it on edge-list inputs.

use dcs_core::dcsga::DcsgaConfig;
use dcs_core::{top_k_in, DensityMeasure, SolveStats};
use dcs_server::stats_to_json;
use serde_json::json;

use crate::args::{parse_args, ArgSpec, ParsedArgs};
use crate::error::CliError;
use crate::input::{MiningOptions, PairInput};
use crate::output::{json_to_string, render_report, report_to_json, TraceGuard};

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs topk <G1.edges> <G2.edges> [--k N] [--measure degree|affinity] [--numeric] \
[--scheme weighted|discrete|scaled] [--alpha X] [--direction emerging|disappearing|both] [--clamp X] \
[--timeout SECS] [--budget N] [--threads N] [--trace-json FILE] [--json]";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &[
            "k",
            "measure",
            "scheme",
            "alpha",
            "direction",
            "clamp",
            "timeout",
            "budget",
            "threads",
            "trace-json",
        ],
        &["numeric", "json"],
    )
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let pair = load_pair(&args)?;
    let options = MiningOptions::from_args(&args)?;
    let cx = MiningOptions::solve_context(&args)?;
    let k: usize = args.parse_option("k", 5)?;
    let measure = match args.option("measure").unwrap_or("affinity") {
        "affinity" | "graph-affinity" | "ga" => DensityMeasure::GraphAffinity,
        "degree" | "average-degree" | "ad" => DensityMeasure::AverageDegree,
        other => {
            return Err(CliError::InvalidValue {
                option: "measure".to_string(),
                value: other.to_string(),
            })
        }
    };

    let tracing = TraceGuard::new(args.option("trace-json"));
    let mut out = String::new();
    let mut json_results = Vec::new();
    let mut job_stats = SolveStats::default();
    for direction in options.direction.expand() {
        let gd = options.difference_graph(&pair, direction)?;
        // Solver dispatch lives in the engine: `top_k_in` drives the measure's
        // solver under the shared deadline/budget context; `after_work` makes the
        // budget job-wide across directions.
        let outcome = top_k_in(
            &gd,
            k,
            measure,
            DcsgaConfig::default(),
            &cx.after_work(job_stats.iterations),
        );

        out.push_str(&format!(
            "{} — top {} of {} requested ({measure})\n",
            direction.name(),
            outcome.solutions.len(),
            k,
        ));
        if !outcome.termination.is_converged() {
            out.push_str(&format!(
                "termination  {} (best-so-far after {} iterations, {:.1} ms)\n",
                outcome.termination,
                outcome.stats.iterations,
                outcome.stats.wall.as_secs_f64() * 1e3
            ));
        }
        out.push('\n');
        job_stats.absorb(&outcome.stats);
        for (rank, solution) in outcome.solutions.iter().enumerate() {
            let report = solution.report(&gd);
            let members = pair.render_vertices(&report.subset);
            out.push_str(&render_report(&format!("#{}", rank + 1), &report, &members));
            out.push('\n');
            let mut value = report_to_json(&report, &members);
            value["rank"] = json!(rank + 1);
            value["direction"] = json!(direction.name());
            json_results.push(value);
        }
    }

    out.push_str(&tracing.finish()?);
    if args.flag("json") {
        out.push_str(&json_to_string(&json!({
            "results": json_results,
            "termination": job_stats.termination.as_str(),
            "stats": stats_to_json(&job_stats),
        })));
    }
    Ok(out)
}

fn load_pair(args: &ParsedArgs) -> Result<PairInput, CliError> {
    let g1 = args.positional(0, "G1 edge-list file")?;
    let g2 = args.positional(1, "G2 edge-list file")?;
    PairInput::load(g1, g2, args.flag("numeric"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// G2 contains two disjoint intensifying groups: a triangle and a heavy pair.
    fn write_pair(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "a b 1\nd e 1\nf g 1\n").unwrap();
        std::fs::write(&p2, "a b 6\na c 5\nb c 5\nd e 4\nf g 1\n").unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn finds_both_planted_groups_under_affinity() {
        let (p1, p2) = write_pair("dcs_cli_topk_affinity");
        let out = run(&strings(&[&p1, &p2, "--k", "3"])).unwrap();
        assert!(out.contains("#1"));
        assert!(out.contains("#2"));
        assert!(out.contains("a, b, c"));
        assert!(out.contains("d, e"));
        // The f-g pair did not change, so it must not appear as a third group.
        assert!(!out.contains("#3"));
    }

    #[test]
    fn degree_measure_and_json() {
        let (p1, p2) = write_pair("dcs_cli_topk_degree");
        let out = run(&strings(&[
            &p1,
            &p2,
            "--measure",
            "degree",
            "--k",
            "2",
            "--json",
        ]))
        .unwrap();
        assert!(out.contains("average degree"));
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        assert_eq!(value["results"].as_array().unwrap().len(), 2);
        assert_eq!(value["results"][0]["rank"], 1);
    }

    #[test]
    fn json_reports_termination_and_stats() {
        let (p1, p2) = write_pair("dcs_cli_topk_termination");
        let out = run(&strings(&[&p1, &p2, "--json"])).unwrap();
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        assert_eq!(value["termination"], "converged");
        assert!(value["stats"]["iterations"].as_u64().unwrap() > 0);

        // A truncated job is machine-distinguishable from a converged one.
        let out = run(&strings(&[&p1, &p2, "--budget", "1", "--json"])).unwrap();
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        assert_eq!(value["termination"], "budget_exhausted");
    }

    #[test]
    fn rejects_bad_measure_and_bad_k() {
        let (p1, p2) = write_pair("dcs_cli_topk_bad");
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--measure", "mass"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--k", "many"])),
            Err(CliError::InvalidValue { .. })
        ));
    }
}

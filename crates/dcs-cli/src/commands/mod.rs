//! The subcommands of the `dcs` command-line tool.
//!
//! Each subcommand is a function from raw arguments to the text it prints, which keeps
//! them directly unit-testable without spawning processes:
//!
//! * [`stats`] — difference-graph statistics of a graph pair (a Table II row),
//! * [`mine`] — mine the DCS under average degree and/or graph affinity,
//! * [`topk`] — mine up to `k` vertex-disjoint contrast subgraphs,
//! * [`sweep`] — α-sweep of the scaled difference graph `A2 − α·A1` (Section III-D),
//! * [`compare`] — DCS vs EgoScan vs quasi-clique side by side (Tables VIII/IX style),
//! * [`census`] — positive-clique census of the difference graph (Table V / Fig. 3 style),
//! * [`generate`] — write a synthetic benchmark graph pair (with ground truth) to disk,
//! * [`pack`] — convert a text edge list into a zero-copy binary graph pack,
//! * [`pack_info`] — inspect (and optionally fully verify) a graph pack,
//! * [`serve`] — run the long-lived NDJSON contrast-mining server (`dcs-server`),
//! * [`client`] — send requests to a running server,
//! * [`sessions`] — inspect durable sessions under a server data directory.

pub mod census;
pub mod client;
pub mod compare;
pub mod generate;
pub mod mine;
pub mod pack;
pub mod pack_info;
pub mod serve;
pub mod sessions;
pub mod stats;
pub mod sweep;
pub mod topk;

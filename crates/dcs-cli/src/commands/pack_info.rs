//! `dcs pack-info` — inspect a binary graph pack without decoding it.
//!
//! Prints the header counts and the section table (the O(header) view the
//! zero-copy open validates); `--verify` additionally recomputes every
//! section checksum, decodes the CSR arrays and audits adjacency symmetry —
//! the full integrity sweep, priced at a read of the whole file.

use dcs_graph::GraphPack;

use crate::args::{parse_args, ArgSpec};
use crate::error::CliError;

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs pack-info <PACK> [--verify]";

fn spec() -> ArgSpec {
    ArgSpec::new(&[], &["verify"])
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let path = args.positional(0, "pack file")?.to_string();
    let pack = GraphPack::open(&path)?;

    let mut out = String::new();
    out.push_str(&format!("pack: {path}\n"));
    out.push_str(&format!("format version: {}\n", pack.format_version()));
    out.push_str(&format!("vertices: {}\n", pack.vertices()));
    out.push_str(&format!(
        "edges: {} ({} positive, {} negative)\n",
        pack.edges(),
        pack.positive_edges(),
        pack.negative_edges()
    ));
    out.push_str(&format!(
        "names: {}\n",
        if pack.has_names() { "yes" } else { "no" }
    ));
    out.push_str(&format!(
        "backing: {}\n",
        if pack.is_mapped() { "mmap" } else { "buffered" }
    ));
    out.push_str(&format!("file bytes: {}\n", pack.file_len()));
    out.push_str("sections:\n");
    for section in pack.sections() {
        out.push_str(&format!(
            "  {:<8} offset {:>10}  bytes {:>10}  checksum {:016x}\n",
            section.name, section.offset, section.len, section.checksum
        ));
    }

    if args.flag("verify") {
        pack.verify()?;
        out.push_str("verify: ok (checksums, CSR invariants, adjacency symmetry)\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_datasets::PackWriter;
    use dcs_graph::GraphBuilder;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    fn write_sample_pack(name: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("dcs_cli_packinfo_{name}.pack"));
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (1, 2, -1.0), (2, 3, 3.0)]);
        PackWriter::write_graph(&g, &path).unwrap();
        path
    }

    #[test]
    fn reports_header_and_sections() {
        let path = write_sample_pack("basic");
        let out = run(&strings(&[path.to_str().unwrap()])).unwrap();
        assert!(out.contains("format version: 1"));
        assert!(out.contains("vertices: 4"));
        assert!(out.contains("edges: 3 (2 positive, 1 negative)"));
        assert!(out.contains("names: no"));
        assert!(out.contains("offsets"));
        assert!(out.contains("targets"));
        assert!(out.contains("weights"));
        assert!(!out.contains("verify: ok"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_flag_runs_the_full_sweep() {
        let path = write_sample_pack("verify");
        let out = run(&strings(&[path.to_str().unwrap(), "--verify"])).unwrap();
        assert!(out.contains("verify: ok"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_packs_fail_verification() {
        let path = write_sample_pack("corrupt");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // a weights-payload byte: caught by --verify only
        std::fs::write(&path, &bytes).unwrap();
        assert!(run(&strings(&[path.to_str().unwrap()])).is_ok());
        assert!(matches!(
            run(&strings(&[path.to_str().unwrap(), "--verify"])),
            Err(CliError::Pack(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_pack_files_are_rejected() {
        let path = std::env::temp_dir().join("dcs_cli_packinfo_text.edges");
        std::fs::write(&path, "0 1 1\n").unwrap();
        assert!(matches!(
            run(&strings(&[path.to_str().unwrap()])),
            Err(CliError::Pack(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}

//! `dcs client` — send NDJSON requests to a running `dcs serve` instance.

use dcs_server::Client;
use serde_json::Value;

use crate::args::{parse_args, ArgSpec};
use crate::error::CliError;

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs client <HOST:PORT> [REQUEST-JSON] [--file requests.ndjson]";

fn spec() -> ArgSpec {
    ArgSpec::new(&["file"], &[])
}

/// Runs the subcommand: sends the inline request and/or every line of
/// `--file` to the server, printing one response per line.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let addr = args.positional(0, "server address (HOST:PORT)")?;

    let mut requests: Vec<String> = Vec::new();
    if let Some(inline) = args.positionals.get(1) {
        requests.push(inline.clone());
    }
    if let Some(path) = args.option("file") {
        let text = std::fs::read_to_string(path)?;
        requests.extend(
            text.lines()
                .filter(|line| !line.trim().is_empty())
                .map(str::to_string),
        );
    }
    if requests.is_empty() {
        return Err(CliError::MissingPositional(
            "a request (inline JSON or --file)".to_string(),
        ));
    }

    let mut client = Client::connect(addr).map_err(|e| {
        let reason = match e {
            dcs_server::ServerError::Io(io) => io.to_string(),
            other => other.to_string(),
        };
        CliError::Io(std::io::Error::other(format!(
            "cannot connect to {addr}: {reason}"
        )))
    })?;
    let mut out = String::new();
    for raw in requests {
        let request: Value = serde_json::from_str(&raw).map_err(|e| CliError::InvalidValue {
            option: "request".to_string(),
            value: format!("{raw} ({e})"),
        })?;
        // Print failed responses too (they are responses, not client errors).
        let response = match client.request(request) {
            Ok(value) => value,
            Err(dcs_server::ServerError::Remote(message)) => {
                serde_json::json!({ "ok": false, "error": message })
            }
            Err(e) => {
                return Err(CliError::Io(std::io::Error::other(format!(
                    "connection failed: {e}"
                ))))
            }
        };
        out.push_str(&serde_json::to_string(&response).unwrap_or_else(|_| "{}".into()));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_server::{Server, ServerConfig};

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn requires_address_and_request() {
        assert!(matches!(run(&[]), Err(CliError::MissingPositional(_))));
        assert!(matches!(
            run(&strings(&["127.0.0.1:1"])),
            Err(CliError::MissingPositional(_))
        ));
    }

    #[test]
    fn drives_a_live_server_inline_and_from_file() {
        let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
            .unwrap()
            .start();
        let addr = handle.local_addr().to_string();

        let pong = run(&strings(&[&addr, r#"{"cmd":"ping"}"#])).unwrap();
        assert!(pong.contains("\"pong\":true"));

        let dir = std::env::temp_dir().join("dcs_cli_client_test");
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("requests.ndjson");
        std::fs::write(
            &script,
            concat!(
                "{\"cmd\":\"create_session\",\"session\":\"s\",\"vertices\":4}\n",
                "{\"cmd\":\"observe\",\"session\":\"s\",\"updates\":[[0,1,3.0],[1,2,2.0]]}\n",
                "{\"cmd\":\"mine\",\"session\":\"s\"}\n",
                "{\"cmd\":\"mine\",\"session\":\"nope\"}\n",
            ),
        )
        .unwrap();

        let out = run(&strings(&[&addr, "--file", script.to_str().unwrap()])).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].contains("\"subset\":[0,1]"));
        assert!(lines[3].contains("\"ok\":false"));

        // Malformed inline request.
        assert!(matches!(
            run(&strings(&[&addr, "not json"])),
            Err(CliError::InvalidValue { .. })
        ));

        handle.join();
    }
}

//! `dcs compare` — side-by-side comparison of the contrast-mining objectives.
//!
//! Runs the two DCS algorithms (average degree and graph affinity), the EgoScan-style
//! total-weight baseline and the greedy α-quasi-clique on the same difference graph and
//! prints one row per method — the workflow behind Tables VIII/IX of the paper, available
//! on user-supplied edge lists.

use dcs_baselines::EgoScan;
use dcs_core::dcsad::DcsGreedy;
use dcs_core::dcsga::NewSea;
use dcs_core::ContrastReport;
use dcs_densest::greedy_quasi_clique;
use serde_json::json;

use crate::args::{parse_args, ArgSpec, ParsedArgs};
use crate::error::CliError;
use crate::input::{MiningOptions, PairInput};
use crate::output::{json_to_string, report_to_json};

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs compare <G1.edges> <G2.edges> [--quasi-alpha X] [--numeric] \
[--scheme weighted|discrete|scaled] [--alpha X] [--direction emerging|disappearing|both] [--clamp X] [--json]";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &["scheme", "alpha", "direction", "clamp", "quasi-alpha"],
        &["numeric", "json"],
    )
}

/// One comparison row.
struct Row {
    method: &'static str,
    report: ContrastReport,
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let pair = load_pair(&args)?;
    let options = MiningOptions::from_args(&args)?;
    let quasi_alpha: f64 = args.parse_option("quasi-alpha", 1.0)?;

    let mut out = String::new();
    let mut json_rows = Vec::new();
    for direction in options.direction.expand() {
        let gd = options.difference_graph(&pair, direction)?;

        let degree = DcsGreedy::default().solve(&gd);
        let affinity = NewSea::default().solve(&gd);
        let ego = EgoScan::default().solve(&gd);
        let quasi = greedy_quasi_clique(&gd, quasi_alpha);

        let rows = vec![
            Row {
                method: "DCS (average degree)",
                report: ContrastReport::for_subset(&gd, &degree.subset),
            },
            Row {
                method: "DCS (graph affinity)",
                report: ContrastReport::for_embedding(&gd, &affinity.embedding),
            },
            Row {
                method: "EgoScan (total weight)",
                report: ContrastReport::for_subset(&gd, &ego.subset),
            },
            Row {
                method: "Quasi-clique (edge surplus)",
                report: ContrastReport::for_subset(&gd, &quasi.subset),
            },
        ];

        out.push_str(&format!("{}\n", direction.name()));
        out.push_str(&format!(
            "{:<28} {:>6} {:>14} {:>14} {:>14} {:>8}\n",
            "method", "size", "avg-degree", "affinity", "total-weight", "clique?"
        ));
        out.push_str(&"-".repeat(92));
        out.push('\n');
        for row in &rows {
            out.push_str(&format!(
                "{:<28} {:>6} {:>14.3} {:>14.3} {:>14.3} {:>8}\n",
                row.method,
                row.report.size,
                row.report.average_degree_difference,
                row.report.affinity_difference,
                row.report.total_degree_difference,
                if row.report.is_positive_clique {
                    "yes"
                } else {
                    "no"
                },
            ));
            let mut value = report_to_json(&row.report, &pair.render_vertices(&row.report.subset));
            value["method"] = json!(row.method);
            value["direction"] = json!(direction.name());
            json_rows.push(value);
        }
        out.push('\n');
    }

    if args.flag("json") {
        out.push_str(&json_to_string(&json!({ "comparison": json_rows })));
    }
    Ok(out)
}

fn load_pair(args: &ParsedArgs) -> Result<PairInput, CliError> {
    let g1 = args.positional(0, "G1 edge-list file")?;
    let g2 = args.positional(1, "G2 edge-list file")?;
    PairInput::load(g1, g2, args.flag("numeric"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pair with an emerging clique and a large loosely-strengthened region, so the
    /// total-weight objective and the density objectives disagree.
    fn write_pair(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        let mut g1 = String::new();
        let mut g2 = String::new();
        // Emerging triangle a,b,c.
        g1.push_str("a b 1\n");
        g2.push_str("a b 9\na c 8\nb c 8\n");
        // A long chain that strengthens a little everywhere (lots of total weight, low
        // density).
        for i in 0..30 {
            g1.push_str(&format!("chain{} chain{} 1\n", i, i + 1));
            g2.push_str(&format!("chain{} chain{} 2\n", i, i + 1));
        }
        std::fs::write(&p1, g1).unwrap();
        std::fs::write(&p2, g2).unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn compares_all_four_methods() {
        let (p1, p2) = write_pair("dcs_cli_compare_basic");
        let out = run(&strings(&[&p1, &p2])).unwrap();
        for method in [
            "DCS (average degree)",
            "DCS (graph affinity)",
            "EgoScan (total weight)",
            "Quasi-clique (edge surplus)",
        ] {
            assert!(out.contains(method), "missing row for {method}");
        }
    }

    #[test]
    fn egoscan_row_has_more_total_weight_but_lower_density() {
        let (p1, p2) = write_pair("dcs_cli_compare_shape");
        let out = run(&strings(&[&p1, &p2, "--json"])).unwrap();
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        let rows = value["comparison"].as_array().unwrap();
        let find = |method: &str| {
            rows.iter()
                .find(|r| r["method"] == method)
                .unwrap_or_else(|| panic!("row {method}"))
        };
        let dcs = find("DCS (average degree)");
        let ego = find("EgoScan (total weight)");
        assert!(
            ego["total_degree_difference"].as_f64().unwrap()
                >= dcs["total_degree_difference"].as_f64().unwrap() - 1e-9
        );
        assert!(
            ego["average_degree_difference"].as_f64().unwrap()
                <= dcs["average_degree_difference"].as_f64().unwrap() + 1e-9
        );
        // The affinity DCS is always a positive clique.
        assert!(find("DCS (graph affinity)")["is_positive_clique"]
            .as_bool()
            .unwrap());
    }

    #[test]
    fn quasi_alpha_is_configurable_and_validated() {
        let (p1, p2) = write_pair("dcs_cli_compare_alpha");
        assert!(run(&strings(&[&p1, &p2, "--quasi-alpha", "0.2"])).is_ok());
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--quasi-alpha", "soft"])),
            Err(CliError::InvalidValue { .. })
        ));
    }
}

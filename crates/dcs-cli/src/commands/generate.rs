//! `dcs generate` — write a synthetic benchmark graph pair to disk.
//!
//! The workspace's generators (see `dcs-datasets`) produce graph pairs with planted
//! contrast groups.  This subcommand materialises one of them as two numeric edge-list
//! files plus a ground-truth file, so the other subcommands (and external tools) can be
//! exercised on data with a known answer.

use std::path::{Path, PathBuf};

use dcs_datasets::{
    CoauthorConfig, CollabConfig, ConflictConfig, GraphPair, KeywordConfig, Scale,
    SocialInterestConfig,
};
use dcs_graph::io::write_edge_list_file;

use crate::args::{parse_args, ArgSpec};
use crate::error::CliError;

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs generate <coauthor|keywords|conflict|movie|book|dblp-c|actor> \
--out <DIR> [--scale tiny|default|full] [--seed N]";

fn spec() -> ArgSpec {
    ArgSpec::new(&["out", "scale", "seed"], &[])
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let dataset = args.positional(0, "dataset name")?.to_string();
    let out_dir = PathBuf::from(
        args.option("out")
            .ok_or_else(|| CliError::MissingPositional("--out output directory".to_string()))?,
    );
    let scale = match args.option("scale") {
        None => Scale::Tiny,
        Some(raw) => Scale::parse(raw).ok_or_else(|| CliError::InvalidValue {
            option: "scale".to_string(),
            value: raw.to_string(),
        })?,
    };
    let seed: u64 = args.parse_option("seed", 42)?;

    let pair = generate_pair(&dataset, scale, seed)?;
    write_pair(&pair, &out_dir)?;

    Ok(format!(
        "wrote {dataset} pair ({} vertices, {} + {} edges, {} planted groups) to {}\n",
        pair.g1.num_vertices(),
        pair.g1.num_edges(),
        pair.g2.num_edges(),
        pair.planted.len(),
        out_dir.display()
    ))
}

/// Builds the requested dataset at the requested scale and seed.
fn generate_pair(dataset: &str, scale: Scale, seed: u64) -> Result<GraphPair, CliError> {
    let pair = match dataset.to_ascii_lowercase().as_str() {
        "coauthor" | "dblp" => {
            let mut config = CoauthorConfig::for_scale(scale);
            config.seed = seed;
            config.generate()
        }
        "keywords" | "dm" => {
            let mut config = KeywordConfig::for_scale(scale);
            config.seed = seed;
            config.generate()
        }
        "conflict" | "wiki" => {
            let mut config = ConflictConfig::for_scale(scale);
            config.seed = seed;
            config.generate()
        }
        "movie" => {
            let mut config = SocialInterestConfig::movie(scale);
            config.seed = seed;
            config.generate()
        }
        "book" => {
            let mut config = SocialInterestConfig::book(scale);
            config.seed = seed;
            config.generate()
        }
        "dblp-c" => {
            let mut config = CollabConfig::dblp_c(scale);
            config.seed = seed;
            config.generate_pair()
        }
        "actor" => {
            let mut config = CollabConfig::actor(scale);
            config.seed = seed;
            config.generate_pair()
        }
        other => {
            return Err(CliError::InvalidValue {
                option: "dataset".to_string(),
                value: other.to_string(),
            })
        }
    };
    Ok(pair)
}

/// Writes `g1.edges`, `g2.edges` and `planted.txt` into `out_dir`.
fn write_pair(pair: &GraphPair, out_dir: &Path) -> Result<(), CliError> {
    std::fs::create_dir_all(out_dir)?;
    write_edge_list_file(&pair.g1, out_dir.join("g1.edges"))?;
    write_edge_list_file(&pair.g2, out_dir.join("g2.edges"))?;
    let mut ground_truth = String::from("# planted groups: name kind vertices...\n");
    for group in &pair.planted {
        let vertices: Vec<String> = group.vertices.iter().map(|v| v.to_string()).collect();
        ground_truth.push_str(&format!(
            "{} {:?} {}\n",
            group.name,
            group.kind,
            vertices.join(" ")
        ));
    }
    std::fs::write(out_dir.join("planted.txt"), ground_truth)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn generates_all_known_datasets_at_tiny_scale() {
        for dataset in [
            "coauthor", "keywords", "conflict", "movie", "book", "dblp-c", "actor",
        ] {
            let pair = generate_pair(dataset, Scale::Tiny, 7).unwrap();
            assert!(pair.g1.num_vertices() > 0, "{dataset} has vertices");
            assert_eq!(pair.g1.num_vertices(), pair.g2.num_vertices());
        }
    }

    #[test]
    fn unknown_dataset_is_rejected() {
        assert!(matches!(
            generate_pair("bitcoin", Scale::Tiny, 1),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn writes_the_three_files() {
        let dir = std::env::temp_dir().join("dcs_cli_generate_files");
        let out = run(&strings(&[
            "coauthor",
            "--out",
            dir.to_str().unwrap(),
            "--scale",
            "tiny",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("wrote coauthor pair"));
        for file in ["g1.edges", "g2.edges", "planted.txt"] {
            assert!(dir.join(file).exists(), "{file} exists");
        }
        let planted = std::fs::read_to_string(dir.join("planted.txt")).unwrap();
        assert!(planted.lines().count() > 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn requires_dataset_and_out_dir() {
        assert!(matches!(
            run(&strings(&[])),
            Err(CliError::MissingPositional(_))
        ));
        assert!(matches!(
            run(&strings(&["coauthor"])),
            Err(CliError::MissingPositional(_))
        ));
    }

    #[test]
    fn rejects_bad_scale() {
        let dir = std::env::temp_dir().join("dcs_cli_generate_bad_scale");
        assert!(matches!(
            run(&strings(&[
                "coauthor",
                "--out",
                dir.to_str().unwrap(),
                "--scale",
                "gigantic"
            ])),
            Err(CliError::InvalidValue { .. })
        ));
    }
}

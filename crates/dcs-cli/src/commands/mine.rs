//! `dcs mine` — mine the density contrast subgraph of a graph pair.

use dcs_core::dcsad::DcsGreedy;
use dcs_core::dcsga::NewSea;
use dcs_core::{ContrastReport, SolveStats};
// The stats shape is the same wire contract the server speaks — one serializer.
use dcs_server::stats_to_json;
use serde_json::json;

use crate::args::{parse_args, ArgSpec, ParsedArgs};
use crate::error::CliError;
use crate::input::{MiningOptions, PairInput};
use crate::output::{json_to_string, render_report, report_to_json, TraceGuard};

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs mine <G1.edges> <G2.edges> [--measure degree|affinity|both] [--numeric] \
[--scheme weighted|discrete|scaled] [--alpha X] [--direction emerging|disappearing|both] [--clamp X] \
[--timeout SECS] [--budget N] [--threads N] [--trace-json FILE] [--json]";

/// Which density measure(s) to mine under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Measure {
    Degree,
    Affinity,
    Both,
}

impl Measure {
    fn parse(text: &str) -> Option<Measure> {
        match text.to_ascii_lowercase().as_str() {
            "degree" | "average-degree" | "ad" => Some(Measure::Degree),
            "affinity" | "graph-affinity" | "ga" => Some(Measure::Affinity),
            "both" => Some(Measure::Both),
            _ => None,
        }
    }

    fn wants_degree(self) -> bool {
        matches!(self, Measure::Degree | Measure::Both)
    }

    fn wants_affinity(self) -> bool {
        matches!(self, Measure::Affinity | Measure::Both)
    }
}

fn spec() -> ArgSpec {
    ArgSpec::new(
        &[
            "measure",
            "scheme",
            "alpha",
            "direction",
            "clamp",
            "timeout",
            "budget",
            "threads",
            "trace-json",
        ],
        &["numeric", "json"],
    )
}

fn termination_line(stats: &SolveStats) -> String {
    if stats.termination.is_converged() {
        String::new()
    } else {
        format!(
            "termination  {} (best-so-far after {} iterations, {:.1} ms)\n",
            stats.termination,
            stats.iterations,
            stats.wall.as_secs_f64() * 1e3
        )
    }
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let pair = load_pair(&args)?;
    let options = MiningOptions::from_args(&args)?;
    let cx = MiningOptions::solve_context(&args)?;
    let measure = match args.option("measure") {
        None => Measure::Both,
        Some(raw) => Measure::parse(raw).ok_or_else(|| CliError::InvalidValue {
            option: "measure".to_string(),
            value: raw.to_string(),
        })?,
    };

    let tracing = TraceGuard::new(args.option("trace-json"));
    let mut out = String::new();
    let mut json_results = Vec::new();
    // The deadline is naturally job-wide (absolute instant); splitting the budget
    // via `after_work` makes `--budget` job-wide too, across measures × directions.
    let mut job_used = 0u64;
    for direction in options.direction.expand() {
        let gd = options.difference_graph(&pair, direction)?;

        if measure.wants_degree() {
            let (solution, stats) =
                DcsGreedy::default().solve_bounded(&gd, &[], &cx.after_work(job_used));
            job_used += stats.iterations;
            let report = ContrastReport::for_subset(&gd, &solution.subset);
            let members = pair.render_vertices(&report.subset);
            let title = format!("DCS by average degree — {}", direction.name());
            out.push_str(&render_report(&title, &report, &members));
            out.push_str(&format!(
                "data-dependent approximation ratio  {:.3}\n",
                solution.data_dependent_ratio
            ));
            out.push_str(&termination_line(&stats));
            out.push('\n');
            let mut value = report_to_json(&report, &members);
            value["measure"] = json!("average-degree");
            value["direction"] = json!(direction.name());
            value["data_dependent_ratio"] = json!(solution.data_dependent_ratio);
            value["stats"] = stats_to_json(&stats);
            json_results.push(value);
        }

        if measure.wants_affinity() {
            let (solution, stats) =
                NewSea::default().solve_bounded(&gd, &[], &cx.after_work(job_used));
            job_used += stats.iterations;
            let report = ContrastReport::for_embedding(&gd, &solution.embedding);
            let members = pair.render_vertices(&report.subset);
            let title = format!("DCS by graph affinity — {}", direction.name());
            out.push_str(&render_report(&title, &report, &members));
            let weights: Vec<String> = report
                .subset
                .iter()
                .zip(&members)
                .map(|(&v, name)| format!("{name} ({:.3})", solution.embedding.get(v)))
                .collect();
            out.push_str(&format!("embedding  {}\n", weights.join(", ")));
            out.push_str(&termination_line(&stats));
            out.push('\n');
            let mut value = report_to_json(&report, &members);
            value["measure"] = json!("graph-affinity");
            value["direction"] = json!(direction.name());
            value["embedding"] = json!(report
                .subset
                .iter()
                .map(|&v| solution.embedding.get(v))
                .collect::<Vec<f64>>());
            value["stats"] = stats_to_json(&stats);
            json_results.push(value);
        }
    }

    out.push_str(&tracing.finish()?);
    if args.flag("json") {
        out.push_str(&json_to_string(&json!({ "results": json_results })));
    }
    Ok(out)
}

fn load_pair(args: &ParsedArgs) -> Result<PairInput, CliError> {
    let g1 = args.positional(0, "G1 edge-list file")?;
    let g2 = args.positional(1, "G2 edge-list file")?;
    PairInput::load(g1, g2, args.flag("numeric"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pair where the triangle {x,y,z} intensifies in G2 and the pair {p,q} weakens.
    fn write_pair(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "x y 1\np q 9\nq r 1\n").unwrap();
        std::fs::write(&p2, "x y 5\nx z 4\ny z 4\np q 2\nq r 1\n").unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn measure_parsing() {
        assert_eq!(Measure::parse("degree"), Some(Measure::Degree));
        assert_eq!(Measure::parse("GA"), Some(Measure::Affinity));
        assert_eq!(Measure::parse("both"), Some(Measure::Both));
        assert_eq!(Measure::parse("area"), None);
        assert!(Measure::Both.wants_degree() && Measure::Both.wants_affinity());
        assert!(!Measure::Degree.wants_affinity());
    }

    #[test]
    fn mines_the_emerging_triangle_under_both_measures() {
        let (p1, p2) = write_pair("dcs_cli_mine_emerging");
        let out = run(&strings(&[&p1, &p2])).unwrap();
        assert!(out.contains("DCS by average degree"));
        assert!(out.contains("DCS by graph affinity"));
        // The emerging group is the x/y/z triangle.
        assert!(out.contains("x, y, z"));
        let clique_line = out
            .lines()
            .find(|l| l.starts_with("positive clique"))
            .unwrap();
        assert!(clique_line.ends_with("yes"));
        assert!(out.contains("data-dependent approximation ratio"));
        assert!(out.contains("embedding"));
    }

    #[test]
    fn disappearing_direction_finds_the_weakened_pair() {
        let (p1, p2) = write_pair("dcs_cli_mine_disappearing");
        let out = run(&strings(&[
            &p1,
            &p2,
            "--direction",
            "disappearing",
            "--measure",
            "affinity",
        ]))
        .unwrap();
        assert!(!out.contains("average degree"));
        assert!(out.contains("p, q"));
    }

    #[test]
    fn json_output_is_parseable_and_complete() {
        let (p1, p2) = write_pair("dcs_cli_mine_json");
        let out = run(&strings(&[&p1, &p2, "--direction", "both", "--json"])).unwrap();
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        // 2 directions × 2 measures.
        assert_eq!(value["results"].as_array().unwrap().len(), 4);
        assert!(value["results"][0]["size"].as_u64().unwrap() >= 2);
    }

    #[test]
    fn timeout_and_budget_flags_bound_the_solve() {
        let (p1, p2) = write_pair("dcs_cli_mine_bounds");
        // A generous timeout converges normally (no termination banner).
        let out = run(&strings(&[&p1, &p2, "--timeout", "30"])).unwrap();
        assert!(!out.contains("termination"));
        // A one-unit budget truncates: the banner names the termination and the
        // result is still a valid report.
        let out = run(&strings(&[&p1, &p2, "--budget", "1", "--json"])).unwrap();
        assert!(out.contains("termination  budget_exhausted"));
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        assert_eq!(
            value["results"][0]["stats"]["termination"],
            "budget_exhausted"
        );
        // Invalid values are rejected.
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--timeout", "-1"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--budget", "lots"])),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn trace_json_dumps_a_solver_phase_timeline() {
        let _serial = crate::output::trace_test_lock();
        let (p1, p2) = write_pair("dcs_cli_mine_trace");
        let trace_path = std::env::temp_dir()
            .join("dcs_cli_mine_trace")
            .join("trace.json");
        let trace_str = trace_path.to_string_lossy().into_owned();
        let out = run(&strings(&[&p1, &p2, "--trace-json", &trace_str])).unwrap();
        assert!(out.contains("trace timeline"));

        let value: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
        let events = value["events"].as_array().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e["phase"].as_str().unwrap())
            .collect();
        // Both solver families ran: greedy peeling and the NewSEA µ_u sweep.
        assert!(phases.contains(&"peel"), "phases: {phases:?}");
        assert!(phases.contains(&"mu_sweep"), "phases: {phases:?}");
        // The guard switched tracing back off after the run.
        assert!(!dcs_obs::trace::enabled());
    }

    #[test]
    fn rejects_unknown_measure() {
        let (p1, p2) = write_pair("dcs_cli_mine_bad_measure");
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--measure", "volume"])),
            Err(CliError::InvalidValue { .. })
        ));
    }
}

//! `dcs sweep` — α-sweep of the scaled difference graph `A2 − α·A1`.
//!
//! Section III-D of the paper generalises the difference graph to `A2 − α·A1`; this
//! subcommand mines a grid of α values (warm-starting each point from the previous
//! α's support) and prints how the mined subgraph shrinks towards the genuinely
//! contrasting core as α grows.  The whole sweep runs under one optional
//! `--timeout`/`--budget` bound, reporting best-so-far grid prefixes when it trips.

use dcs_core::{alpha_sweep_in, default_alpha_grid, DensityMeasure};
use serde_json::json;

use crate::args::{parse_args, ArgSpec, ParsedArgs};
use crate::error::CliError;
use crate::input::{MiningOptions, PairInput};
use crate::output::{json_to_string, report_to_json, TraceGuard};

/// Usage string shown by `dcs help`.
pub const USAGE: &str =
    "dcs sweep <G1.edges> <G2.edges> [--alphas a,b,c] [--measure degree|affinity] \
[--numeric] [--timeout SECS] [--budget N] [--threads N] [--trace-json FILE] [--json]";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &[
            "alphas",
            "measure",
            "timeout",
            "budget",
            "threads",
            "trace-json",
        ],
        &["numeric", "json"],
    )
}

fn parse_alphas(args: &ParsedArgs) -> Result<Vec<f64>, CliError> {
    match args.option("alphas") {
        None => Ok(default_alpha_grid()),
        Some(raw) => raw
            .split(',')
            .map(|piece| {
                piece.trim().parse().map_err(|_| CliError::InvalidValue {
                    option: "alphas".to_string(),
                    value: raw.to_string(),
                })
            })
            .collect(),
    }
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let g1_path = args.positional(0, "G1 edge-list file")?;
    let g2_path = args.positional(1, "G2 edge-list file")?;
    let pair = PairInput::load(g1_path, g2_path, args.flag("numeric"))?;
    let cx = MiningOptions::solve_context(&args)?;
    let alphas = parse_alphas(&args)?;
    let measure = match args.option("measure").unwrap_or("affinity") {
        "affinity" | "graph-affinity" | "ga" => DensityMeasure::GraphAffinity,
        "degree" | "average-degree" | "ad" => DensityMeasure::AverageDegree,
        other => {
            return Err(CliError::InvalidValue {
                option: "measure".to_string(),
                value: other.to_string(),
            })
        }
    };

    let tracing = TraceGuard::new(args.option("trace-json"));
    let sweep = alpha_sweep_in(&pair.g2, &pair.g1, &alphas, measure, &cx)?;

    let mut out = String::new();
    out.push_str(&format!(
        "α-sweep over {} grid points ({measure})\n",
        alphas.len(),
    ));
    if !sweep.termination.is_converged() {
        out.push_str(&format!(
            "termination  {} ({} of {} points mined, {:.1} ms)\n",
            sweep.termination,
            sweep.points.len(),
            alphas.len(),
            sweep.stats.wall.as_secs_f64() * 1e3
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:>8} {:>6} {:>14} {:>14}  members\n",
        "alpha", "size", "objective", "avg-degree"
    ));
    out.push_str(&"-".repeat(78));
    out.push('\n');
    let mut json_points = Vec::new();
    for point in &sweep.points {
        let members = pair.render_vertices(&point.subset);
        out.push_str(&format!(
            "{:>8.3} {:>6} {:>14.3} {:>14.3}  {}\n",
            point.alpha,
            point.subset.len(),
            point.objective,
            point.report.average_degree_difference,
            members.join(", "),
        ));
        let mut value = report_to_json(&point.report, &members);
        value["alpha"] = json!(point.alpha);
        value["objective"] = json!(point.objective);
        json_points.push(value);
    }

    out.push_str(&tracing.finish()?);
    if args.flag("json") {
        out.push_str(&json_to_string(&json!({
            "points": json_points,
            "termination": sweep.termination.as_str(),
        })));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// G2 strengthens the triangle a,b,c; the pair p,q is strong in both graphs.
    fn write_pair(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "a b 1\np q 10\n").unwrap();
        std::fs::write(&p2, "a b 5\na c 5\nb c 5\np q 11\n").unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sweeps_the_default_grid_and_prices_out_stable_structure() {
        let (p1, p2) = write_pair("dcs_cli_sweep_default");
        let out = run(&strings(&[&p1, &p2, "--measure", "degree"])).unwrap();
        assert!(out.contains("α-sweep over 9 grid points"));
        // At α = 0 the stable heavy pair wins; at high α the emerging triangle does.
        assert!(out.contains("p, q"));
        assert!(out.contains("a, b, c"));
        assert!(!out.contains("termination"));
    }

    #[test]
    fn custom_grid_json_and_truncation() {
        let (p1, p2) = write_pair("dcs_cli_sweep_json");
        let out = run(&strings(&[&p1, &p2, "--alphas", "0,1.5", "--json"])).unwrap();
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        assert_eq!(value["points"].as_array().unwrap().len(), 2);
        assert_eq!(value["termination"], "converged");

        // A one-unit budget truncates the sweep but still reports a valid prefix.
        let out = run(&strings(&[&p1, &p2, "--budget", "1", "--json"])).unwrap();
        assert!(out.contains("termination  budget_exhausted"));

        // Bad inputs are rejected.
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--alphas", "0,fast"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--measure", "volume"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&[&p1])),
            Err(CliError::MissingPositional(_))
        ));
    }
}

//! `dcs serve` — run the NDJSON contrast-mining server.

use dcs_server::{Server, ServerConfig};

use crate::args::{parse_args, ArgSpec};
use crate::error::CliError;

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs serve [--addr HOST:PORT] [--threads N] [--solver-threads N] [--io-threads N] [--queue N] (runs until a shutdown command)";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &["addr", "threads", "solver-threads", "io-threads", "queue"],
        &[],
    )
}

/// Parses the options, binds the listener and starts the accept loop.
/// Split from [`run`] so tests can start on an ephemeral port and read the
/// bound address from the handle instead of racing for a free port.
fn start_server(raw_args: &[String]) -> Result<(dcs_server::ServerHandle, ServerConfig), CliError> {
    let args = parse_args(raw_args, &spec())?;
    let addr = args.option("addr").unwrap_or("127.0.0.1:7878").to_string();
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        worker_threads: args.parse_option("threads", defaults.worker_threads)?,
        // 0 (the default) inherits the DCS_SOLVER_THREADS environment default.
        solver_threads: args.parse_option("solver-threads", defaults.solver_threads)?,
        // 0 (the default) inherits the DCS_IO_THREADS environment default.
        io_threads: args.parse_option("io-threads", defaults.io_threads)?,
        queue_capacity: args.parse_option("queue", defaults.queue_capacity)?,
        ..defaults
    };
    if config.worker_threads == 0 || config.queue_capacity == 0 {
        return Err(CliError::InvalidValue {
            option: "threads/queue".to_string(),
            value: "0".to_string(),
        });
    }
    let server = Server::bind(addr.as_str(), config.clone())
        .map_err(|e| CliError::Io(std::io::Error::other(format!("cannot bind {addr}: {e}"))))?;
    Ok((server.start(), config))
}

/// Blocks until a client sends `shutdown`, then returns the summary line.
fn serve_until_shutdown(handle: dcs_server::ServerHandle) -> String {
    let bound = handle.local_addr();
    // ServerHandle::join also wakes the accept loop if the flag was set over
    // the wire.
    while !handle.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.join();
    format!("dcs-server on {bound} shut down\n")
}

/// Runs the subcommand: binds, serves until a protocol `shutdown` arrives,
/// then returns a summary line.  The bound address is printed immediately so
/// scripts using an ephemeral port (`--addr 127.0.0.1:0`) can discover it.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let (handle, config) = start_server(raw_args)?;
    println!(
        "dcs-server listening on {} ({} worker threads, {} io threads, queue {})",
        handle.local_addr(),
        config.worker_threads,
        config.resolved_io_threads(),
        config.queue_capacity
    );
    Ok(serve_until_shutdown(handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_server::Client;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_bad_options() {
        assert!(matches!(
            run(&strings(&["--threads", "zero"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&["--threads", "0"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&["--bogus"])),
            Err(CliError::UnknownArgument(_))
        ));
        // Unbindable address.
        assert!(run(&strings(&["--addr", "256.256.256.256:1"])).is_err());
    }

    #[test]
    fn serves_until_shutdown() {
        // Ephemeral port: the handle reports the bound address, so there is
        // no probe-then-rebind race.
        let (handle, config) = start_server(&strings(&[
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--io-threads",
            "2",
            "--queue",
            "4",
        ]))
        .expect("bind ephemeral port");
        assert_eq!(config.worker_threads, 2);
        assert_eq!(config.io_threads, 2);
        assert_eq!(config.resolved_io_threads(), 2);
        assert_eq!(config.queue_capacity, 4);
        let addr = handle.local_addr();
        let server_thread = std::thread::spawn(move || serve_until_shutdown(handle));

        let mut client = Client::connect(addr).expect("server is up");
        client.ping().unwrap();
        client
            .create_session("s", 4, serde_json::json!({}))
            .unwrap();
        client.observe("s", &[(0, 1, 2.0)]).unwrap();
        let mined = client.mine("s").unwrap();
        assert_eq!(mined["result"]["subset"], serde_json::json!([0, 1]));
        client.shutdown().unwrap();

        let summary = server_thread.join().unwrap();
        assert!(summary.contains("shut down"));
    }
}

//! `dcs serve` — run the NDJSON contrast-mining server.

use dcs_server::{Server, ServerConfig, WalSync};

use crate::args::{parse_args, ArgSpec};
use crate::error::CliError;

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs serve [--addr HOST:PORT] [--threads N] [--solver-threads N] [--io-threads N] [--queue N] [--data-dir DIR] [--wal-sync always|group|none] (runs until a shutdown command)";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &[
            "addr",
            "threads",
            "solver-threads",
            "io-threads",
            "queue",
            "data-dir",
            "wal-sync",
        ],
        &[],
    )
}

/// Parses the options, binds the listener and starts the accept loop.
/// Split from [`run`] so tests can start on an ephemeral port and read the
/// bound address from the handle instead of racing for a free port.
fn start_server(raw_args: &[String]) -> Result<(dcs_server::ServerHandle, ServerConfig), CliError> {
    let args = parse_args(raw_args, &spec())?;
    let addr = args.option("addr").unwrap_or("127.0.0.1:7878").to_string();
    let defaults = ServerConfig::default();
    let wal_sync = match args.option("wal-sync") {
        None => defaults.wal_sync,
        Some(raw) => raw.parse::<WalSync>().map_err(|_| CliError::InvalidValue {
            option: "wal-sync".to_string(),
            value: raw.to_string(),
        })?,
    };
    let config = ServerConfig {
        worker_threads: args.parse_option("threads", defaults.worker_threads)?,
        // 0 (the default) inherits the DCS_SOLVER_THREADS environment default.
        solver_threads: args.parse_option("solver-threads", defaults.solver_threads)?,
        // 0 (the default) inherits the DCS_IO_THREADS environment default.
        io_threads: args.parse_option("io-threads", defaults.io_threads)?,
        queue_capacity: args.parse_option("queue", defaults.queue_capacity)?,
        data_dir: args.option("data-dir").map(std::path::PathBuf::from),
        wal_sync,
        ..defaults
    };
    if config.worker_threads == 0 || config.queue_capacity == 0 {
        return Err(CliError::InvalidValue {
            option: "threads/queue".to_string(),
            value: "0".to_string(),
        });
    }
    let server = Server::bind(addr.as_str(), config.clone())
        .map_err(|e| CliError::Io(std::io::Error::other(format!("cannot bind {addr}: {e}"))))?;
    Ok((server.start(), config))
}

/// Blocks until a client sends `shutdown`, then returns the summary line.
fn serve_until_shutdown(handle: dcs_server::ServerHandle) -> String {
    let bound = handle.local_addr();
    // ServerHandle::join also wakes the accept loop if the flag was set over
    // the wire.
    while !handle.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    handle.join();
    format!("dcs-server on {bound} shut down\n")
}

/// Runs the subcommand: binds, serves until a protocol `shutdown` arrives,
/// then returns a summary line.  The bound address is printed immediately so
/// scripts using an ephemeral port (`--addr 127.0.0.1:0`) can discover it.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let (handle, config) = start_server(raw_args)?;
    println!(
        "dcs-server listening on {} ({} worker threads, {} io threads, queue {})",
        handle.local_addr(),
        config.worker_threads,
        config.resolved_io_threads(),
        config.queue_capacity
    );
    Ok(serve_until_shutdown(handle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_server::Client;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn rejects_bad_options() {
        assert!(matches!(
            run(&strings(&["--threads", "zero"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&["--threads", "0"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&["--bogus"])),
            Err(CliError::UnknownArgument(_))
        ));
        assert!(matches!(
            run(&strings(&["--wal-sync", "sometimes"])),
            Err(CliError::InvalidValue { .. })
        ));
        // Unbindable address.
        assert!(run(&strings(&["--addr", "256.256.256.256:1"])).is_err());
    }

    #[test]
    fn serves_until_shutdown() {
        // Ephemeral port: the handle reports the bound address, so there is
        // no probe-then-rebind race.
        let (handle, config) = start_server(&strings(&[
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--io-threads",
            "2",
            "--queue",
            "4",
        ]))
        .expect("bind ephemeral port");
        assert_eq!(config.worker_threads, 2);
        assert_eq!(config.io_threads, 2);
        assert_eq!(config.resolved_io_threads(), 2);
        assert_eq!(config.queue_capacity, 4);
        let addr = handle.local_addr();
        let server_thread = std::thread::spawn(move || serve_until_shutdown(handle));

        let mut client = Client::connect(addr).expect("server is up");
        client.ping().unwrap();
        client
            .create_session("s", 4, serde_json::json!({}))
            .unwrap();
        client.observe("s", &[(0, 1, 2.0)]).unwrap();
        let mined = client.mine("s").unwrap();
        assert_eq!(mined["result"]["subset"], serde_json::json!([0, 1]));
        client.shutdown().unwrap();

        let summary = server_thread.join().unwrap();
        assert!(summary.contains("shut down"));
    }

    #[test]
    fn data_dir_makes_sessions_survive_restart() {
        let data_dir =
            std::env::temp_dir().join(format!("dcs_cli_serve_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let serve_args = || {
            strings(&[
                "--addr",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().unwrap(),
                "--wal-sync",
                "always",
            ])
        };

        let (handle, config) = start_server(&serve_args()).expect("bind with data dir");
        assert_eq!(config.data_dir.as_deref(), Some(data_dir.as_path()));
        let mut client = Client::connect(handle.local_addr()).expect("server is up");
        client
            .create_session("d", 4, serde_json::json!({ "durable": true }))
            .unwrap();
        let observed = client.observe("d", &[(0, 1, 2.0), (1, 2, 1.0)]).unwrap();
        let version = observed["version"].as_u64().unwrap();
        client.shutdown().unwrap();
        handle.join();

        let (handle, _) = start_server(&serve_args()).expect("rebind with data dir");
        let mut client = Client::connect(handle.local_addr()).expect("server is back");
        let stats = client.stats("d").unwrap();
        assert_eq!(stats["version"].as_u64(), Some(version));
        assert_eq!(stats["durable"], true);
        client.shutdown().unwrap();
        handle.join();
        let _ = std::fs::remove_dir_all(&data_dir);
    }
}

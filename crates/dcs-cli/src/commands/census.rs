//! `dcs census` — positive-clique census of the difference graph.
//!
//! Runs the exhaustive SEACD+Refine sweep (one initialisation per vertex), deduplicates
//! the refined positive cliques and reports the top ones plus a clique-size histogram —
//! the construction behind Table V ("top emerging/disappearing topics") and Fig. 3
//! ("clique counts") of the paper, available on user-supplied edge lists.

use dcs_core::dcsga::{clique_census, parallel_sweep, DcsgaConfig};
use serde_json::json;

use crate::args::{parse_args, ArgSpec, ParsedArgs};
use crate::error::CliError;
use crate::input::{MiningOptions, PairInput};
use crate::output::json_to_string;

/// Usage string shown by `dcs help`.
pub const USAGE: &str = "dcs census <G1.edges> <G2.edges> [--top N] [--threads N] [--numeric] \
[--scheme weighted|discrete|scaled] [--alpha X] [--direction emerging|disappearing|both] [--clamp X] [--json]";

fn spec() -> ArgSpec {
    ArgSpec::new(
        &["top", "threads", "scheme", "alpha", "direction", "clamp"],
        &["numeric", "json"],
    )
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let pair = load_pair(&args)?;
    let options = MiningOptions::from_args(&args)?;
    let top: usize = args.parse_option("top", 5)?;
    let threads: usize = args.parse_option("threads", 1)?;

    let mut out = String::new();
    let mut json_sections = Vec::new();
    for direction in options.direction.expand() {
        let gd = options.difference_graph(&pair, direction)?;
        let gd_plus = gd.positive_part();
        let config = DcsgaConfig::default();
        let sweep = parallel_sweep(&gd_plus, config, threads, true);
        let census = clique_census(&gd_plus, &sweep.all_solutions);

        out.push_str(&format!(
            "{} — {} initialisations, {} distinct positive cliques\n\n",
            direction.name(),
            sweep.initializations,
            census.len()
        ));

        // Top cliques by affinity difference.
        out.push_str(&format!("top {} cliques by affinity difference:\n", top));
        for (rank, clique) in census.iter().take(top).enumerate() {
            let members = pair.render_vertices(&clique.support);
            out.push_str(&format!(
                "  #{:<2} affinity {:>9.3}  size {:>3}  {{{}}}\n",
                rank + 1,
                clique.affinity,
                clique.support.len(),
                members.join(", ")
            ));
        }

        // Clique-size histogram (Fig. 3 style).
        let mut histogram: Vec<(usize, usize)> = Vec::new();
        for clique in &census {
            let size = clique.support.len();
            match histogram.iter_mut().find(|(s, _)| *s == size) {
                Some((_, count)) => *count += 1,
                None => histogram.push((size, 1)),
            }
        }
        histogram.sort_unstable();
        out.push_str("\nclique-size histogram:\n");
        for (size, count) in &histogram {
            out.push_str(&format!("  size {size:>3}: {count}\n"));
        }
        out.push('\n');

        json_sections.push(json!({
            "direction": direction.name(),
            "initializations": sweep.initializations,
            "distinct_cliques": census.len(),
            "top": census.iter().take(top).map(|c| json!({
                "affinity": c.affinity,
                "size": c.support.len(),
                "vertices": c.support,
                "members": pair.render_vertices(&c.support),
            })).collect::<Vec<_>>(),
            "histogram": histogram.iter().map(|(size, count)| json!({
                "size": size,
                "count": count,
            })).collect::<Vec<_>>(),
        }));
    }

    if args.flag("json") {
        out.push_str(&json_to_string(&json!({ "census": json_sections })));
    }
    Ok(out)
}

fn load_pair(args: &ParsedArgs) -> Result<PairInput, CliError> {
    let g1 = args.positional(0, "G1 edge-list file")?;
    let g2 = args.positional(1, "G2 edge-list file")?;
    PairInput::load(g1, g2, args.flag("numeric"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint emerging cliques of different sizes plus one disappearing pair.
    fn write_pair(dir_name: &str) -> (String, String) {
        let dir = std::env::temp_dir().join(dir_name);
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        let mut g1 = String::from("p q 9\n");
        let mut g2 = String::from("p q 1\n");
        // Emerging triangle.
        for (u, v) in [("a", "b"), ("a", "c"), ("b", "c")] {
            g1.push_str(&format!("{u} {v} 1\n"));
            g2.push_str(&format!("{u} {v} 6\n"));
        }
        // Emerging 4-clique.
        let quad = ["w", "x", "y", "z"];
        for i in 0..4 {
            for j in (i + 1)..4 {
                g2.push_str(&format!("{} {} 4\n", quad[i], quad[j]));
            }
        }
        std::fs::write(&p1, g1).unwrap();
        std::fs::write(&p2, g2).unwrap();
        (
            p1.to_string_lossy().into_owned(),
            p2.to_string_lossy().into_owned(),
        )
    }

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn census_reports_both_planted_cliques() {
        let (p1, p2) = write_pair("dcs_cli_census_basic");
        let out = run(&strings(&[&p1, &p2, "--top", "3"])).unwrap();
        assert!(out.contains("distinct positive cliques"));
        assert!(out.contains("a, b, c"));
        assert!(out.contains("w, x, y, z"));
        assert!(out.contains("clique-size histogram"));
        assert!(out.contains("size   3"));
        assert!(out.contains("size   4"));
    }

    #[test]
    fn disappearing_direction_and_json_histogram() {
        let (p1, p2) = write_pair("dcs_cli_census_json");
        let out = run(&strings(&[
            &p1,
            &p2,
            "--direction",
            "disappearing",
            "--json",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("p, q"));
        let json_start = out.find("{\n").unwrap();
        let value: serde_json::Value = serde_json::from_str(&out[json_start..]).unwrap();
        let section = &value["census"][0];
        assert_eq!(section["direction"], "Disappearing (G1 - G2)");
        assert!(section["distinct_cliques"].as_u64().unwrap() >= 1);
        assert!(!section["histogram"].as_array().unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_top_and_threads() {
        let (p1, p2) = write_pair("dcs_cli_census_bad");
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--top", "few"])),
            Err(CliError::InvalidValue { .. })
        ));
        assert!(matches!(
            run(&strings(&[&p1, &p2, "--threads", "-2"])),
            Err(CliError::InvalidValue { .. })
        ));
    }
}

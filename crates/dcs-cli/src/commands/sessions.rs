//! `dcs sessions` — inspect the durable sessions under a server data
//! directory without starting (or touching) a server.
//!
//! The listing is a dry run: torn WAL tails and corrupt checkpoints are
//! detected (a session whose recovery would fail reports `recoverable: no`)
//! but nothing on disk is repaired or truncated — only `dcs serve --data-dir`
//! and the durable `create_session` path mutate session directories.

use dcs_server::durable;

use crate::args::{parse_args, ArgSpec};
use crate::error::CliError;

/// Usage string shown by `dcs help`.
pub const USAGE: &str =
    "dcs sessions --data-dir DIR (lists durable sessions and their recoverable versions)";

fn spec() -> ArgSpec {
    ArgSpec::new(&["data-dir"], &[])
}

/// Runs the subcommand and returns the text to print.
pub fn run(raw_args: &[String]) -> Result<String, CliError> {
    let args = parse_args(raw_args, &spec())?;
    let data_dir = args
        .option("data-dir")
        .ok_or_else(|| CliError::MissingPositional("--data-dir DIR".to_string()))?;
    let summaries = durable::inspect_data_dir(std::path::Path::new(data_dir))
        .map_err(|e| CliError::Io(std::io::Error::other(e.to_string())))?;
    let mut out = String::new();
    out.push_str(&format!("data dir: {data_dir}\n"));
    if summaries.is_empty() {
        out.push_str("no durable sessions\n");
        return Ok(out);
    }
    out.push_str(&format!("sessions: {}\n", summaries.len()));
    for s in &summaries {
        out.push_str(&format!(
            "  {:<24} vertices {:>8}  measure {:<8}  remine_every {:>5}  checkpoint {:<8}  wal {} segment(s), {} byte(s)  recoverable: {}\n",
            s.name,
            s.vertices,
            s.measure,
            s.remine_every,
            s.checkpoint_generation
                .map(|g| format!("v{g}"))
                .unwrap_or_else(|| "none".to_string()),
            s.wal_segments,
            s.wal_bytes,
            s.recovered_version
                .map(|v| format!("yes (version {v})"))
                .unwrap_or_else(|| "no".to_string()),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::{DensityMeasure, StreamingConfig};
    use dcs_server::WalSync;

    fn strings(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    fn temp_data_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dcs_cli_sessions_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn requires_a_data_dir() {
        assert!(matches!(run(&[]), Err(CliError::MissingPositional(_))));
    }

    #[test]
    fn lists_durable_sessions_without_repairing() {
        let data_dir = temp_data_dir("list");
        let config = StreamingConfig {
            remine_every: 2,
            alert_threshold: 0.5,
            measure: DensityMeasure::GraphAffinity,
        };
        let mut session =
            durable::create_durable_session(&data_dir, "checked out", 8, config, WalSync::Group)
                .unwrap();
        session.observe(&[(0, 1, 1.0), (1, 2, 2.0)]).unwrap();
        let version = session.version();
        drop(session);

        let out = run(&strings(&["--data-dir", data_dir.to_str().unwrap()])).unwrap();
        assert!(out.contains("sessions: 1"));
        assert!(out.contains("checked out"));
        assert!(out.contains(&format!("yes (version {version})")));

        // An empty data dir is not an error.
        let empty = temp_data_dir("empty");
        let out = run(&strings(&["--data-dir", empty.to_str().unwrap()])).unwrap();
        assert!(out.contains("no durable sessions"));
        let _ = std::fs::remove_dir_all(&data_dir);
        let _ = std::fs::remove_dir_all(&empty);
    }
}

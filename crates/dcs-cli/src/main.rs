//! The `dcs` binary: a thin wrapper around [`dcs_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dcs_cli::run(&args) {
        Ok(text) => print!("{text}"),
        Err(error) => {
            eprintln!("error: {error}");
            std::process::exit(2);
        }
    }
}

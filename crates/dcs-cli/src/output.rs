//! Human-readable and JSON rendering of mining results.
//!
//! The mining subcommands produce [`ContrastReport`]s (the same statistics the paper's
//! result tables show per mined group).  This module turns them into aligned text blocks
//! for the terminal and `serde_json::Value`s for `--json` output.

use dcs_core::ContrastReport;
use dcs_obs::trace;
use serde_json::{json, Value};

use crate::error::CliError;

/// Enables solver phase tracing for the duration of a mining run
/// (`--trace-json FILE`) and dumps the collected timeline when finished.
///
/// Constructed with `None` it is a complete no-op, so the subcommands can
/// create one unconditionally.  Call [`TraceGuard::finish`] on the success
/// path to write the timeline file; if an error return skips `finish`, the
/// `Drop` impl still disables tracing and discards the partial timeline so a
/// failed run never leaves the process-global tracer enabled.
#[derive(Debug)]
pub struct TraceGuard {
    path: Option<String>,
}

impl TraceGuard {
    /// Starts tracing if a timeline path was requested.
    pub fn new(path: Option<&str>) -> TraceGuard {
        if path.is_some() {
            trace::clear();
            trace::set_enabled(true);
        }
        TraceGuard {
            path: path.map(str::to_string),
        }
    }

    /// Stops tracing, writes the timeline JSON to the requested file, and
    /// returns a status line for the terminal (empty without `--trace-json`).
    pub fn finish(mut self) -> Result<String, CliError> {
        let Some(path) = self.path.take() else {
            return Ok(String::new());
        };
        trace::set_enabled(false);
        let (events, dropped) = trace::take_timeline_with_drops();
        std::fs::write(&path, trace::timeline_json(&events, dropped))?;
        Ok(format!(
            "trace timeline ({} events) written to {path}\n",
            events.len()
        ))
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.path.take().is_some() {
            trace::set_enabled(false);
            trace::clear();
        }
    }
}

/// Renders a titled key/value block with aligned values.
pub fn render_block(title: &str, entries: &[(&str, String)]) -> String {
    let width = entries.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"-".repeat(title.len()));
    out.push('\n');
    for (key, value) in entries {
        out.push_str(&format!("{key:<width$}  {value}\n"));
    }
    out
}

/// Renders a [`ContrastReport`] (plus the rendered member names) as a text block.
pub fn render_report(title: &str, report: &ContrastReport, members: &[String]) -> String {
    let members_line = if members.is_empty() {
        "(empty)".to_string()
    } else {
        members.join(", ")
    };
    render_block(
        title,
        &[
            ("size", report.size.to_string()),
            ("members", members_line),
            (
                "average-degree difference",
                format!("{:.4}", report.average_degree_difference),
            ),
            (
                "graph-affinity difference",
                format!("{:.4}", report.affinity_difference),
            ),
            (
                "edge-density difference",
                format!("{:.4}", report.edge_density_difference),
            ),
            (
                "total-degree difference",
                format!("{:.4}", report.total_degree_difference),
            ),
            (
                "positive clique",
                if report.is_positive_clique {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ),
            (
                "connected",
                if report.is_connected { "yes" } else { "no" }.to_string(),
            ),
        ],
    )
}

/// Converts a [`ContrastReport`] into a JSON value for `--json` output.
pub fn report_to_json(report: &ContrastReport, members: &[String]) -> Value {
    json!({
        "size": report.size,
        "vertices": report.subset,
        "members": members,
        "average_degree_difference": report.average_degree_difference,
        "affinity_difference": report.affinity_difference,
        "edge_density_difference": report.edge_density_difference,
        "total_degree_difference": report.total_degree_difference,
        "is_positive_clique": report.is_positive_clique,
        "is_connected": report.is_connected,
    })
}

/// Pretty-prints a JSON value with a trailing newline.
pub fn json_to_string(value: &Value) -> String {
    let mut text = serde_json::to_string_pretty(value).unwrap_or_else(|_| "{}".to_string());
    text.push('\n');
    text
}

/// Serializes tests that toggle the process-global tracer (the CLI test
/// binary runs modules in parallel threads).
#[cfg(test)]
pub(crate) fn trace_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn report() -> ContrastReport {
        let gd = GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, 2.0)]);
        ContrastReport::for_subset(&gd, &[0, 1, 2])
    }

    #[test]
    fn block_is_aligned() {
        let text = render_block("Title", &[("a", "1".into()), ("longer", "2".into())]);
        assert!(text.starts_with("Title\n-----\n"));
        assert!(text.contains("a       1"));
        assert!(text.contains("longer  2"));
    }

    #[test]
    fn report_rendering_mentions_all_measures() {
        let r = report();
        let text = render_report("Emerging", &r, &["x".into(), "y".into(), "z".into()]);
        assert!(text.contains("size"));
        assert!(text.contains("x, y, z"));
        assert!(text.contains("average-degree difference"));
        assert!(text.contains("positive clique"));
        assert!(text.contains("yes"));
    }

    #[test]
    fn empty_member_list_is_explicit() {
        let r = report();
        let text = render_report("t", &r, &[]);
        assert!(text.contains("(empty)"));
    }

    #[test]
    fn trace_guard_writes_a_timeline_and_disables_tracing() {
        let _serial = trace_test_lock();
        let dir = std::env::temp_dir().join("dcs_cli_trace_guard");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timeline.json");
        let path_str = path.to_string_lossy().into_owned();

        let guard = TraceGuard::new(Some(&path_str));
        assert!(trace::enabled());
        drop(trace::span(trace::Phase::Peel));
        let line = guard.finish().unwrap();
        assert!(!trace::enabled());
        assert!(line.contains(&path_str));
        let value: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(value["events"].as_array().unwrap().len(), 1);
        assert_eq!(value["events"][0]["phase"], "peel");
        assert_eq!(value["dropped"], 0);

        // Without a path the guard is inert and `finish` prints nothing.
        let inert = TraceGuard::new(None);
        assert!(!trace::enabled());
        assert_eq!(inert.finish().unwrap(), "");

        // A dropped (unfinished) guard still disables tracing and clears the
        // partial timeline.
        drop(TraceGuard::new(Some(&path_str)));
        assert!(!trace::enabled());
        assert!(trace::take_timeline().is_empty());
    }

    #[test]
    fn json_round_trips_the_numbers() {
        let r = report();
        let value = report_to_json(&r, &["a".into(), "b".into(), "c".into()]);
        assert_eq!(value["size"], 3);
        assert_eq!(value["members"].as_array().unwrap().len(), 3);
        assert!(value["is_positive_clique"].as_bool().unwrap());
        let text = json_to_string(&value);
        assert!(text.ends_with('\n'));
        assert!(text.contains("\"average_degree_difference\""));
    }
}

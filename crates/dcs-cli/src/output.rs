//! Human-readable and JSON rendering of mining results.
//!
//! The mining subcommands produce [`ContrastReport`]s (the same statistics the paper's
//! result tables show per mined group).  This module turns them into aligned text blocks
//! for the terminal and `serde_json::Value`s for `--json` output.

use dcs_core::ContrastReport;
use serde_json::{json, Value};

/// Renders a titled key/value block with aligned values.
pub fn render_block(title: &str, entries: &[(&str, String)]) -> String {
    let width = entries.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&"-".repeat(title.len()));
    out.push('\n');
    for (key, value) in entries {
        out.push_str(&format!("{key:<width$}  {value}\n"));
    }
    out
}

/// Renders a [`ContrastReport`] (plus the rendered member names) as a text block.
pub fn render_report(title: &str, report: &ContrastReport, members: &[String]) -> String {
    let members_line = if members.is_empty() {
        "(empty)".to_string()
    } else {
        members.join(", ")
    };
    render_block(
        title,
        &[
            ("size", report.size.to_string()),
            ("members", members_line),
            (
                "average-degree difference",
                format!("{:.4}", report.average_degree_difference),
            ),
            (
                "graph-affinity difference",
                format!("{:.4}", report.affinity_difference),
            ),
            (
                "edge-density difference",
                format!("{:.4}", report.edge_density_difference),
            ),
            (
                "total-degree difference",
                format!("{:.4}", report.total_degree_difference),
            ),
            (
                "positive clique",
                if report.is_positive_clique {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            ),
            (
                "connected",
                if report.is_connected { "yes" } else { "no" }.to_string(),
            ),
        ],
    )
}

/// Converts a [`ContrastReport`] into a JSON value for `--json` output.
pub fn report_to_json(report: &ContrastReport, members: &[String]) -> Value {
    json!({
        "size": report.size,
        "vertices": report.subset,
        "members": members,
        "average_degree_difference": report.average_degree_difference,
        "affinity_difference": report.affinity_difference,
        "edge_density_difference": report.edge_density_difference,
        "total_degree_difference": report.total_degree_difference,
        "is_positive_clique": report.is_positive_clique,
        "is_connected": report.is_connected,
    })
}

/// Pretty-prints a JSON value with a trailing newline.
pub fn json_to_string(value: &Value) -> String {
    let mut text = serde_json::to_string_pretty(value).unwrap_or_else(|_| "{}".to_string());
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn report() -> ContrastReport {
        let gd = GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, 2.0)]);
        ContrastReport::for_subset(&gd, &[0, 1, 2])
    }

    #[test]
    fn block_is_aligned() {
        let text = render_block("Title", &[("a", "1".into()), ("longer", "2".into())]);
        assert!(text.starts_with("Title\n-----\n"));
        assert!(text.contains("a       1"));
        assert!(text.contains("longer  2"));
    }

    #[test]
    fn report_rendering_mentions_all_measures() {
        let r = report();
        let text = render_report("Emerging", &r, &["x".into(), "y".into(), "z".into()]);
        assert!(text.contains("size"));
        assert!(text.contains("x, y, z"));
        assert!(text.contains("average-degree difference"));
        assert!(text.contains("positive clique"));
        assert!(text.contains("yes"));
    }

    #[test]
    fn empty_member_list_is_explicit() {
        let r = report();
        let text = render_report("t", &r, &[]);
        assert!(text.contains("(empty)"));
    }

    #[test]
    fn json_round_trips_the_numbers() {
        let r = report();
        let value = report_to_json(&r, &["a".into(), "b".into(), "c".into()]);
        assert_eq!(value["size"], 3);
        assert_eq!(value["members"].as_array().unwrap().len(), 3);
        assert!(value["is_positive_clique"].as_bool().unwrap());
        let text = json_to_string(&value);
        assert!(text.ends_with('\n'));
        assert!(text.contains("\"average_degree_difference\""));
    }
}

//! Property tests of the graph-pack pipeline: writer ([`dcs_datasets::pack`])
//! against reader ([`dcs_graph::pack`]).
//!
//! Three contracts, over arbitrary graphs and arbitrary corruption:
//!
//! 1. **Roundtrip bit-identity** — write → open → decode reproduces the
//!    graph exactly ([`PartialEq`] on `SignedGraph` compares the raw CSR
//!    arrays, so weights must survive bit-for-bit).
//! 2. **Solver equivalence** — mining a pack-backed pair gives the same
//!    solution as mining the owned originals, for both density measures.
//!    (CI runs this suite under `DCS_SOLVER_THREADS=1` and `=4`.)
//! 3. **Corruption safety** — flipping any single bit, or truncating at any
//!    point, never panics and never yields a *silently different* graph:
//!    either some stage reports an error, or (the flip landed in inert
//!    padding) the decoded graph equals the original.  `verify()` passing
//!    always implies the decoded graph is the written one.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dcs_datasets::{LargeConfig, PackWriter};
use dcs_graph::{GraphBuilder, GraphPack, SignedGraph};
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_pack(tag: &str) -> PathBuf {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dcs_pack_prop_{tag}_{}_{case}.pack",
        std::process::id()
    ))
}

/// An arbitrary valid signed graph: up to `max_n` vertices, signed weights,
/// duplicate edges allowed (the builder merges them by summing).
fn arb_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = SignedGraph> {
    (2..max_n + 1).prop_flat_map(move |n| {
        let edge = (0..n, 1..n, -10.0f64..10.0).prop_map(move |(a, step, w)| {
            let b = (a + step) % n;
            let w = if w == 0.0 { 1.0 } else { w };
            (a.min(b) as u32, a.max(b) as u32, w)
        });
        proptest::collection::vec(edge, 0..max_edges + 1).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            b.add_edges(edges);
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_bit_identical(g in arb_graph(40, 120)) {
        let path = temp_pack("roundtrip");
        PackWriter::write_graph(&g, &path).unwrap();
        let pack = GraphPack::open(&path).unwrap();
        prop_assert_eq!(pack.vertices(), g.num_vertices());
        prop_assert_eq!(pack.edges(), g.num_edges());
        pack.verify().unwrap();
        let decoded = pack.to_graph().unwrap();
        prop_assert_eq!(&decoded, &g);
        // The buffered (read-into-memory) path decodes identically.
        let buffered = GraphPack::open_buffered(&path).unwrap().to_graph().unwrap();
        prop_assert_eq!(&buffered, &g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_bit_flips_are_never_silent(
        g in arb_graph(16, 40),
        flip_pos in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let path = temp_pack("flip");
        PackWriter::write_graph(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let index = ((flip_pos * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[index] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // No stage may panic; a fully-verified pack must decode to the
        // original graph (only flips in alignment padding can get that far).
        if let Ok(pack) = GraphPack::open(&path) {
            let decoded = pack.to_graph();
            if pack.verify().is_ok() {
                prop_assert_eq!(decoded.unwrap(), g);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_always_rejected(
        g in arb_graph(16, 40),
        cut in 0.0f64..1.0,
    ) {
        let path = temp_pack("trunc");
        PackWriter::write_graph(&g, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let keep = (cut * bytes.len() as f64) as usize;
        prop_assume!(keep < bytes.len());
        bytes.truncate(keep);
        std::fs::write(&path, &bytes).unwrap();
        // The section table runs to the end of the file, so every strict
        // truncation is caught at open time.
        prop_assert!(GraphPack::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn pack_backed_solves_match_owned_solves() {
    let config = LargeConfig {
        vertices: 300,
        edges: 1_500,
        group_sizes: vec![10, 7],
        ..LargeConfig::tiny()
    };
    let pair = dcs_datasets::large::generate(&config);

    let p1 = temp_pack("solve_g1");
    let p2 = temp_pack("solve_g2");
    PackWriter::write_graph(&pair.g1, &p1).unwrap();
    PackWriter::write_graph(&pair.g2, &p2).unwrap();
    let g1 = GraphPack::open(&p1).unwrap().to_graph().unwrap();
    let g2 = GraphPack::open(&p2).unwrap().to_graph().unwrap();
    assert!(g1.is_pack_backed() || g2.is_pack_backed() || cfg!(not(target_pointer_width = "64")));

    let (owned_ad, _) = dcs_core::mine_average_degree_dcs(&pair.g2, &pair.g1).unwrap();
    let (pack_ad, _) = dcs_core::mine_average_degree_dcs(&g2, &g1).unwrap();
    assert_eq!(pack_ad.subset, owned_ad.subset);
    assert_eq!(pack_ad.density_difference, owned_ad.density_difference);

    let (owned_ga, _) = dcs_core::mine_affinity_dcs(&pair.g2, &pair.g1).unwrap();
    let (pack_ga, _) = dcs_core::mine_affinity_dcs(&g2, &g1).unwrap();
    assert_eq!(pack_ga.support(), owned_ga.support());
    assert_eq!(pack_ga.affinity_difference, owned_ga.affinity_difference);

    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p2).ok();
}

//! Property-based tests of the synthetic graph-pair generators: whatever the seed and
//! (reasonable) configuration, the generated pairs must satisfy the structural contract
//! that the mining algorithms and the experiment harness rely on.

use dcs_core::difference_graph;
use dcs_datasets::{
    CoauthorConfig, CollabConfig, ConflictConfig, GraphPair, GroupKind, KeywordConfig, Scale,
    SocialInterestConfig, TrafficConfig, TransactionConfig,
};
use proptest::prelude::*;

/// The contract every generated pair must satisfy.
fn check_pair_contract(pair: &GraphPair) {
    // Same vertex set, non-negative input weights (they are ordinary weighted graphs).
    assert_eq!(pair.g1.num_vertices(), pair.g2.num_vertices());
    assert!(pair.g1.min_edge_weight().unwrap_or(0.0) >= 0.0);
    assert!(pair.g2.min_edge_weight().unwrap_or(0.0) >= 0.0);

    // Planted groups: in range, non-trivial, sorted and pairwise disjoint.
    let n = pair.g1.num_vertices();
    for group in &pair.planted {
        assert!(group.vertices.len() >= 2, "{} too small", group.name);
        assert!(group.vertices.iter().all(|&v| (v as usize) < n));
        assert!(group.vertices.windows(2).all(|w| w[0] < w[1]));
    }
    for (i, a) in pair.planted.iter().enumerate() {
        for b in &pair.planted[i + 1..] {
            assert!(
                a.vertices.iter().all(|v| !b.vertices.contains(v)),
                "{} and {} overlap",
                a.name,
                b.name
            );
        }
    }

    // Planted contrast has the right sign in the difference graph.
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    for group in &pair.planted {
        let density = gd.average_degree(&group.vertices);
        match group.kind {
            GroupKind::Emerging => assert!(density > 0.0, "{}: {density}", group.name),
            GroupKind::Disappearing => assert!(density < 0.0, "{}: {density}", group.name),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn coauthor_pairs_satisfy_the_contract(seed in 0u64..1_000_000) {
        let mut config = CoauthorConfig::for_scale(Scale::Tiny);
        config.seed = seed;
        let pair = config.generate();
        check_pair_contract(&pair);
        // Determinism: the same seed yields the same pair.
        let again = config.generate();
        prop_assert_eq!(pair.g1, again.g1);
        prop_assert_eq!(pair.g2, again.g2);
    }

    #[test]
    fn keyword_pairs_satisfy_the_contract(seed in 0u64..1_000_000) {
        let mut config = KeywordConfig::for_scale(Scale::Tiny);
        config.seed = seed;
        check_pair_contract(&config.generate());
    }

    #[test]
    fn conflict_pairs_satisfy_the_contract(seed in 0u64..1_000_000) {
        let mut config = ConflictConfig::for_scale(Scale::Tiny);
        config.seed = seed;
        check_pair_contract(&config.generate());
    }

    #[test]
    fn social_interest_pairs_satisfy_the_contract(seed in 0u64..1_000_000, book in any::<bool>()) {
        let mut config = if book {
            SocialInterestConfig::book(Scale::Tiny)
        } else {
            SocialInterestConfig::movie(Scale::Tiny)
        };
        config.seed = seed;
        check_pair_contract(&config.generate());
    }

    #[test]
    fn collab_pairs_satisfy_the_contract(seed in 0u64..1_000_000, actor in any::<bool>()) {
        let mut config = if actor {
            CollabConfig::actor(Scale::Tiny)
        } else {
            CollabConfig::dblp_c(Scale::Tiny)
        };
        config.seed = seed;
        check_pair_contract(&config.generate_pair());
    }

    #[test]
    fn traffic_pairs_satisfy_the_contract(seed in 0u64..1_000_000) {
        let mut config = TrafficConfig::for_scale(Scale::Tiny);
        config.seed = seed;
        let pair = config.generate();
        check_pair_contract(&pair);
        // Grid topology: both periods observe every road segment.
        let expected_edges = config.rows * (config.cols - 1) + config.cols * (config.rows - 1);
        prop_assert_eq!(pair.g1.num_edges(), expected_edges);
        prop_assert_eq!(pair.g2.num_edges(), expected_edges);
    }

    #[test]
    fn transaction_pairs_satisfy_the_contract(seed in 0u64..1_000_000) {
        let mut config = TransactionConfig::for_scale(Scale::Tiny);
        config.seed = seed;
        check_pair_contract(&config.generate());
    }
}

//! Synthetic road-traffic pairs: expected vs. observed flow on a grid road network.
//!
//! The paper's introduction motivates DCS with "detecting emerging traffic hotspot
//! clutters": build a weighted graph `G1` whose edge weights are the *expected* traffic
//! flow between adjacent intersections (derived from historical data) and a graph `G2`
//! of the *currently observed* flows, then mine the subgraph whose density gap is
//! largest.  This generator reproduces that setup on an `rows × cols` grid road network:
//!
//! * every grid edge carries a historical base flow plus small observation noise in both
//!   graphs,
//! * **hotspot clutters** — rectangular windows of the grid whose observed flows are
//!   multiplied up in `G2` (emerging congestion), and
//! * **cooled zones** — windows whose observed flows collapse in `G2` (e.g. a closed
//!   venue), the disappearing counterpart.
//!
//! Unlike the co-author or transaction generators, the planted groups here are *not*
//! cliques (a grid has no large cliques), which exercises the regime where the
//! average-degree DCS is informative while the graph-affinity DCS degenerates to a tiny
//! subgraph — the contrast the paper draws in Tables X–XIII.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcs_graph::{GraphBuilder, VertexId};

use crate::{GraphPair, GroupKind, PlantedGroup, Scale};

/// A rectangular window of the grid, given as `(row, col)` of its top-left corner plus
/// its height and width in cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridWindow {
    /// Top row index of the window.
    pub row: usize,
    /// Left column index of the window.
    pub col: usize,
    /// Number of rows covered.
    pub height: usize,
    /// Number of columns covered.
    pub width: usize,
}

/// Configuration of the traffic pair generator.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of grid rows (intersections per column).
    pub rows: usize,
    /// Number of grid columns.
    pub cols: usize,
    /// Mean historical flow per road segment.
    pub base_flow: f64,
    /// Relative standard deviation of the observation noise applied to each period.
    pub noise: f64,
    /// Hotspot windows and the factor by which their observed flow is multiplied in `G2`.
    pub hotspots: Vec<(GridWindow, f64)>,
    /// Cooled windows and the factor by which their observed flow is multiplied in `G2`
    /// (a factor well below 1).
    pub cooled: Vec<(GridWindow, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl TrafficConfig {
    /// Preset sizes for the given scale.
    pub fn for_scale(scale: Scale) -> Self {
        let (rows, cols) = match scale {
            Scale::Tiny => (20, 20),
            Scale::Default => (80, 80),
            Scale::Full => (300, 300),
        };
        // One concentrated downtown hotspot, one broader event hotspot, one cooled zone.
        let hotspots = vec![
            (
                GridWindow {
                    row: rows / 10,
                    col: cols / 10,
                    height: 3,
                    width: 3,
                },
                6.0,
            ),
            (
                GridWindow {
                    row: rows / 2,
                    col: cols / 2,
                    height: 5,
                    width: 4,
                },
                3.0,
            ),
        ];
        let cooled = vec![(
            GridWindow {
                row: (3 * rows) / 4,
                col: cols / 5,
                height: 4,
                width: 4,
            },
            0.15,
        )];
        TrafficConfig {
            rows,
            cols,
            base_flow: 10.0,
            noise: 0.05,
            hotspots,
            cooled,
            seed: 0x70AD,
        }
    }

    /// The vertex id of the intersection at `(row, col)`.
    pub fn vertex(&self, row: usize, col: usize) -> VertexId {
        (row * self.cols + col) as VertexId
    }

    /// The number of intersections `rows × cols`.
    pub fn num_vertices(&self) -> usize {
        self.rows * self.cols
    }

    /// Generates the pair.
    pub fn generate(&self) -> GraphPair {
        assert!(
            self.rows >= 4 && self.cols >= 4,
            "grid must be at least 4x4"
        );
        assert!(
            self.noise >= 0.0 && self.noise < 1.0,
            "noise must be in [0, 1)"
        );
        for (window, _) in self.hotspots.iter().chain(self.cooled.iter()) {
            assert!(
                window.row + window.height <= self.rows && window.col + window.width <= self.cols,
                "window {window:?} does not fit the {}x{} grid",
                self.rows,
                self.cols
            );
        }

        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_vertices();
        let mut b1 = GraphBuilder::new(n);
        let mut b2 = GraphBuilder::new(n);

        // Per-window observed-flow factors, accumulated multiplicatively per edge.
        let factor_of = |u_rc: (usize, usize), v_rc: (usize, usize)| -> f64 {
            let mut factor = 1.0;
            for (window, boost) in self.hotspots.iter().chain(self.cooled.iter()) {
                if window.contains(u_rc) && window.contains(v_rc) {
                    factor *= boost;
                }
            }
            factor
        };

        for row in 0..self.rows {
            for col in 0..self.cols {
                let u = self.vertex(row, col);
                // Right and down neighbours generate each grid edge exactly once.
                let mut neighbours = Vec::with_capacity(2);
                if col + 1 < self.cols {
                    neighbours.push((row, col + 1));
                }
                if row + 1 < self.rows {
                    neighbours.push((row + 1, col));
                }
                for (vr, vc) in neighbours {
                    let v = self.vertex(vr, vc);
                    let base = self.base_flow * (0.6 + 0.8 * rng.gen::<f64>());
                    let observe = |rng: &mut StdRng, mean: f64| -> f64 {
                        (mean * (1.0 + self.noise * (2.0 * rng.gen::<f64>() - 1.0))).max(0.1)
                    };
                    let expected = observe(&mut rng, base);
                    let observed = observe(&mut rng, base * factor_of((row, col), (vr, vc)));
                    b1.add_edge(u, v, expected);
                    b2.add_edge(u, v, observed);
                }
            }
        }

        let mut planted = Vec::new();
        for (idx, (window, _)) in self.hotspots.iter().enumerate() {
            planted.push(PlantedGroup {
                name: format!("hotspot-{idx}"),
                vertices: self.window_vertices(window),
                kind: GroupKind::Emerging,
            });
        }
        for (idx, (window, _)) in self.cooled.iter().enumerate() {
            planted.push(PlantedGroup {
                name: format!("cooled-{idx}"),
                vertices: self.window_vertices(window),
                kind: GroupKind::Disappearing,
            });
        }

        GraphPair {
            g1: b1.build(),
            g2: b2.build(),
            planted,
        }
    }

    fn window_vertices(&self, window: &GridWindow) -> Vec<VertexId> {
        let mut vertices = Vec::with_capacity(window.height * window.width);
        for row in window.row..window.row + window.height {
            for col in window.col..window.col + window.width {
                vertices.push(self.vertex(row, col));
            }
        }
        vertices.sort_unstable();
        vertices
    }
}

impl GridWindow {
    /// Whether the window contains the cell `(row, col)`.
    pub fn contains(&self, (row, col): (usize, usize)) -> bool {
        row >= self.row
            && row < self.row + self.height
            && col >= self.col
            && col < self.col + self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::jaccard;
    use dcs_core::dcsad::DcsGreedy;
    use dcs_core::difference_graph;

    #[test]
    fn grid_topology_and_determinism() {
        let config = TrafficConfig::for_scale(Scale::Tiny);
        let pair = config.generate();
        let n = config.num_vertices();
        assert_eq!(pair.g1.num_vertices(), n);
        // A rows×cols grid has rows·(cols−1) + cols·(rows−1) edges.
        let expected_edges = config.rows * (config.cols - 1) + config.cols * (config.rows - 1);
        assert_eq!(pair.g1.num_edges(), expected_edges);
        assert_eq!(pair.g2.num_edges(), expected_edges);
        assert_eq!(pair.planted.len(), 3);

        let again = config.generate();
        assert_eq!(pair.g1, again.g1);
        assert_eq!(pair.g2, again.g2);
    }

    #[test]
    fn window_containment_and_vertex_enumeration() {
        let config = TrafficConfig::for_scale(Scale::Tiny);
        let window = GridWindow {
            row: 2,
            col: 3,
            height: 2,
            width: 2,
        };
        assert!(window.contains((2, 3)));
        assert!(window.contains((3, 4)));
        assert!(!window.contains((4, 3)));
        assert!(!window.contains((2, 5)));
        let vertices = config.window_vertices(&window);
        assert_eq!(vertices.len(), 4);
        assert!(vertices.contains(&config.vertex(3, 4)));
    }

    #[test]
    fn hotspots_dominate_the_emerging_difference_graph() {
        let config = TrafficConfig::for_scale(Scale::Tiny);
        let pair = config.generate();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();

        // Every planted hotspot has clearly positive contrast, the cooled zone clearly
        // negative, and the background hovers near zero.
        for group in &pair.planted {
            let density = gd.average_degree(&group.vertices);
            match group.kind {
                GroupKind::Emerging => assert!(density > 5.0, "{}: {density}", group.name),
                GroupKind::Disappearing => assert!(density < -5.0, "{}: {density}", group.name),
            }
        }
        let background: Vec<VertexId> = (0..12)
            .map(|row| config.vertex(row, config.cols - 2))
            .collect();
        assert!(gd.average_degree(&background).abs() < 3.0);

        // DCSGreedy recovers (a superset or subset of) the strongest hotspot.
        let solution = DcsGreedy::default().solve(&gd);
        let strongest = pair
            .planted
            .iter()
            .filter(|g| g.kind == GroupKind::Emerging)
            .max_by(|a, b| {
                gd.average_degree(&a.vertices)
                    .partial_cmp(&gd.average_degree(&b.vertices))
                    .unwrap()
            })
            .unwrap();
        assert!(
            jaccard(&solution.subset, &strongest.vertices) > 0.5,
            "greedy DCS {:?} should overlap hotspot {:?}",
            solution.subset,
            strongest.vertices
        );
    }

    #[test]
    fn cooled_zone_is_found_in_the_disappearing_direction() {
        let config = TrafficConfig::for_scale(Scale::Tiny);
        let pair = config.generate();
        let gd = difference_graph(&pair.g1, &pair.g2).unwrap();
        let solution = DcsGreedy::default().solve(&gd);
        let cooled = pair
            .planted
            .iter()
            .find(|g| g.kind == GroupKind::Disappearing)
            .unwrap();
        assert!(jaccard(&solution.subset, &cooled.vertices) > 0.5);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_windows_outside_the_grid() {
        let mut config = TrafficConfig::for_scale(Scale::Tiny);
        config.hotspots.push((
            GridWindow {
                row: config.rows - 1,
                col: 0,
                height: 3,
                width: 3,
            },
            2.0,
        ));
        config.generate();
    }

    #[test]
    #[should_panic(expected = "at least 4x4")]
    fn rejects_degenerate_grids() {
        let mut config = TrafficConfig::for_scale(Scale::Tiny);
        config.rows = 2;
        config.generate();
    }
}

//! Large collaboration networks (the DBLP-C and Actor efficiency datasets, Appendix B-3).
//!
//! These datasets exist in the paper purely to stress the efficiency of the DCSGA
//! solvers:
//!
//! * **DBLP-C** — a timestamped co-authorship record split into two halves, producing a
//!   signed difference graph with millions of edges; generated here by
//!   [`CollabConfig::generate_pair`].
//! * **Actor** — a single collaboration network used *directly* as the difference graph
//!   (all weights positive), optionally with the clamped "Discrete" weighting; generated
//!   by [`CollabConfig::generate_single`].

use rand::rngs::StdRng;
use rand::SeedableRng;

use dcs_graph::{GraphBuilder, SignedGraph};

use crate::planted::{allocate_groups, plant_dense_group};
use crate::random::{chung_lu_edges, collaboration_weight, power_law_weights};
use crate::{GraphPair, GroupKind, PlantedGroup, Scale};

/// Configuration of the large collaboration generators.
#[derive(Debug, Clone)]
pub struct CollabConfig {
    /// Number of vertices (authors / actors).
    pub num_vertices: usize,
    /// Number of collaboration edges.
    pub num_edges: usize,
    /// Power-law exponent of the productivity distribution.
    pub gamma: f64,
    /// Mean collaboration count per edge.
    pub mean_weight: f64,
    /// Planted heavy groups `(size, strength)` — these become the DCS answers.
    pub planted_groups: Vec<(usize, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl CollabConfig {
    /// Preset approximating the DBLP-C dataset at the given scale
    /// (`Full` ≈ 1.28M vertices / 2.5M positive edges).
    pub fn dblp_c(scale: Scale) -> Self {
        let (num_vertices, num_edges) = match scale {
            Scale::Tiny => (1_000, 4_000),
            Scale::Default => (20_000, 80_000),
            Scale::Full => (1_282_461, 2_500_000),
        };
        CollabConfig {
            num_vertices,
            num_edges,
            gamma: 2.1,
            mean_weight: 2.0,
            // The disappearing 26-group must stay the affinity optimum of its
            // direction: a pair of background edges with geometric weight gap w
            // has affinity w/2, so the group strength must clear the geometric
            // tail (P(gap ≥ 2·strength) ≈ m·2^{-2·strength} must be small).
            planted_groups: vec![(2, 200.0), (26, 12.0)],
            seed: 0xDB1C,
        }
    }

    /// Preset approximating the Actor collaboration network
    /// (`Full` ≈ 382k vertices / 15M edges; scaled presets keep the same density ratio).
    pub fn actor(scale: Scale) -> Self {
        let (num_vertices, num_edges) = match scale {
            Scale::Tiny => (800, 8_000),
            Scale::Default => (12_000, 150_000),
            Scale::Full => (382_219, 15_000_000),
        };
        CollabConfig {
            num_vertices,
            num_edges,
            gamma: 2.0,
            mean_weight: 1.1,
            planted_groups: vec![(3, 110.0), (21, 8.0)],
            seed: 0xAC70,
        }
    }

    /// Generates a timestamp-split pair (DBLP-C style): the same background topology with
    /// independent per-period collaboration counts, plus planted groups that are heavy in
    /// exactly one half.
    pub fn generate_pair(&self) -> GraphPair {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_vertices;
        let sizes: Vec<usize> = self.planted_groups.iter().map(|(s, _)| *s).collect();
        let planted_total: usize = sizes.iter().sum();
        let planted_start = (n - planted_total) as u32;
        let groups = allocate_groups(planted_start, &sizes);

        let mut b1 = GraphBuilder::new(n);
        let mut b2 = GraphBuilder::new(n);
        let weights = power_law_weights(planted_start as usize, self.gamma);
        for (u, v) in chung_lu_edges(&weights, self.num_edges, &mut rng) {
            b1.add_edge(u, v, collaboration_weight(&mut rng, self.mean_weight));
            b2.add_edge(u, v, collaboration_weight(&mut rng, self.mean_weight));
        }
        let mut planted = Vec::new();
        for (idx, (group, &(_, strength))) in groups.iter().zip(&self.planted_groups).enumerate() {
            // Alternate the direction so both emerging and disappearing structure exists.
            if idx % 2 == 0 {
                plant_dense_group(&mut b2, group, strength, 1.0, &mut rng);
                planted.push(PlantedGroup {
                    name: format!("heavy-{idx}"),
                    vertices: group.clone(),
                    kind: GroupKind::Emerging,
                });
            } else {
                plant_dense_group(&mut b1, group, strength, 1.0, &mut rng);
                planted.push(PlantedGroup {
                    name: format!("heavy-{idx}"),
                    vertices: group.clone(),
                    kind: GroupKind::Disappearing,
                });
            }
        }
        GraphPair {
            g1: b1.build(),
            g2: b2.build(),
            planted,
        }
    }

    /// Generates a single weighted collaboration network (Actor style) that is used
    /// directly as the difference graph; every edge weight is positive.  The planted
    /// groups are returned alongside.
    pub fn generate_single(&self) -> (SignedGraph, Vec<PlantedGroup>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_vertices;
        let sizes: Vec<usize> = self.planted_groups.iter().map(|(s, _)| *s).collect();
        let planted_total: usize = sizes.iter().sum();
        let planted_start = (n - planted_total) as u32;
        let groups = allocate_groups(planted_start, &sizes);

        let mut b = GraphBuilder::new(n);
        let weights = power_law_weights(planted_start as usize, self.gamma);
        for (u, v) in chung_lu_edges(&weights, self.num_edges, &mut rng) {
            b.add_edge(u, v, collaboration_weight(&mut rng, self.mean_weight));
        }
        let mut planted = Vec::new();
        for (idx, (group, &(_, strength))) in groups.iter().zip(&self.planted_groups).enumerate() {
            plant_dense_group(&mut b, group, strength, 1.0, &mut rng);
            planted.push(PlantedGroup {
                name: format!("heavy-{idx}"),
                vertices: group.clone(),
                kind: GroupKind::Emerging,
            });
        }
        (b.build(), planted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::difference_graph;

    #[test]
    fn pair_has_planted_contrast() {
        let pair = CollabConfig::dblp_c(Scale::Tiny).generate_pair();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        for group in &pair.planted {
            let d = gd.average_degree(&group.vertices);
            match group.kind {
                GroupKind::Emerging => assert!(d > 1.0, "{}: {d}", group.name),
                GroupKind::Disappearing => assert!(d < -1.0, "{}: {d}", group.name),
            }
        }
    }

    #[test]
    fn single_graph_is_all_positive() {
        let (g, planted) = CollabConfig::actor(Scale::Tiny).generate_single();
        assert_eq!(g.num_negative_edges(), 0);
        assert!(!planted.is_empty());
        assert!(g.num_edges() > 4_000);
        // The tiny planted trio is extremely heavy, as in the Actor "Weighted" row of
        // Table XIV where the DCS is a 3-vertex subgraph with affinity > 100.
        let heavy = &planted[0];
        assert!(g.average_degree(&heavy.vertices) > 100.0);
    }

    #[test]
    fn deterministic() {
        let a = CollabConfig::actor(Scale::Tiny).generate_single().0;
        let b = CollabConfig::actor(Scale::Tiny).generate_single().0;
        assert_eq!(a, b);
    }
}

//! Million-edge benchmark pairs: a Chung–Lu power-law background with
//! community-planted contrast groups.
//!
//! The benchmark preset ([`LargeConfig::benchmark`]) targets the scale of the
//! paper's larger datasets — `n = 10⁵` vertices, `m = 10⁶` background edges —
//! which is where intra-solve parallelism (parallel peeling, parallel KKT
//! scans) starts to pay for its coordination overhead.  The topology is the
//! same heavy-tailed background the other generators use ([`crate::random`]), with
//! the contrast signal planted as dense near-cliques boosted in `G2` only:
//! the background's weight churn provides realistic noise in `G_D` while the
//! planted groups stay the unambiguous densest contrast structures.
//!
//! Everything is deterministic given [`LargeConfig::seed`].

use std::io;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcs_graph::{GraphBuilder, VertexId};

use crate::pack::{PackSummary, StreamingPackWriter};
use crate::planted::{allocate_groups, plant_dense_group, plant_dense_group_stream};
use crate::random::{chung_lu_edges, chung_lu_stream, collaboration_weight, power_law_weights};
use crate::{GraphPair, GroupKind, PlantedGroup};

/// Configuration of a large power-law + planted-contrast pair.
#[derive(Debug, Clone)]
pub struct LargeConfig {
    /// Number of vertices (background ids first, planted-group ids last).
    pub vertices: usize,
    /// Target number of background edges.
    pub edges: usize,
    /// Power-law exponent of the background degree sequence.
    pub gamma: f64,
    /// Sizes of the planted emerging groups (disjoint, at the top of the id
    /// range).
    pub group_sizes: Vec<usize>,
    /// Mean edge weight inside a planted group in `G2`.
    pub group_weight: f64,
    /// Probability of each within-group pair being connected.
    pub group_edge_probability: f64,
    /// Mean background edge weight (collaboration-count distributed).
    pub weight_mean: f64,
    /// RNG seed; the pair is a pure function of the config.
    pub seed: u64,
}

impl LargeConfig {
    /// The paper-scale benchmark preset: `10⁵` vertices, `10⁶` background
    /// edges, four planted contrast groups.
    pub fn benchmark() -> Self {
        LargeConfig {
            vertices: 100_000,
            edges: 1_000_000,
            gamma: 2.3,
            group_sizes: vec![48, 40, 32, 24],
            group_weight: 20.0,
            group_edge_probability: 0.9,
            weight_mean: 2.0,
            seed: 0xDC5_1A56E,
        }
    }

    /// A shrunken preset (hundreds of vertices) with the same shape, for
    /// tests and smoke runs.
    pub fn tiny() -> Self {
        LargeConfig {
            vertices: 600,
            edges: 4_000,
            gamma: 2.3,
            group_sizes: vec![12, 8],
            group_weight: 20.0,
            group_edge_probability: 0.9,
            weight_mean: 2.0,
            seed: 0xDC5_1A56E,
        }
    }
}

/// Generates the pair: both graphs share the Chung–Lu background topology
/// with independently jittered weights (contrast noise), and each planted
/// group is boosted in `G2` only (emerging).
pub fn generate(config: &LargeConfig) -> GraphPair {
    let group_total: usize = config.group_sizes.iter().sum();
    assert!(
        config.vertices > group_total,
        "vertices must exceed the planted-group total"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Background over the low ids; planted groups live in a dedicated range
    // at the top so they stay disjoint from each other (background edges may
    // still touch them, as in the real datasets).
    let background_n = config.vertices - group_total;
    let weights = power_law_weights(background_n, config.gamma);
    let background = chung_lu_edges(&weights, config.edges, &mut rng);

    let mut b1 = GraphBuilder::new(config.vertices);
    let mut b2 = GraphBuilder::new(config.vertices);
    for &(u, v) in &background {
        let w = collaboration_weight(&mut rng, config.weight_mean);
        // Same topology, mildly churned weights: G_D carries dense noise
        // without a planted-size signal in the background.
        let jitter = 0.8 + 0.4 * rng.gen::<f64>();
        b1.add_edge(u, v, w);
        b2.add_edge(u, v, w * jitter);
    }

    let groups = allocate_groups(background_n as dcs_graph::VertexId, &config.group_sizes);
    let mut planted = Vec::with_capacity(groups.len());
    for (index, vertices) in groups.into_iter().enumerate() {
        plant_dense_group(
            &mut b2,
            &vertices,
            config.group_weight,
            config.group_edge_probability,
            &mut rng,
        );
        planted.push(PlantedGroup {
            name: format!("emerging-{index}"),
            vertices,
            kind: GroupKind::Emerging,
        });
    }

    GraphPair {
        g1: b1.build(),
        g2: b2.build(),
        planted,
    }
}

/// Streams the pair's edges instead of building graphs: `sink1` / `sink2`
/// receive every `(u, v, w)` edge of `G1` / `G2`, and the planted groups are
/// returned.  The edge sequence is **identical** to what [`generate`] feeds
/// its builders, so graphs assembled from the streams equal `generate`'s
/// pair exactly — without this function ever materialising an edge list.
///
/// How the draw order is preserved: `generate` consumes its seeded rng as
/// `[topology draws][per-edge weight draws][planting draws]`, but emits
/// weights interleaved with the topology replay.  We clone the rng before
/// the topology run, advance the *real* rng past the topology draws with a
/// discarded [`chung_lu_stream`] run, then replay the topology from the
/// clone while drawing each edge's weights from the advanced rng.  The
/// Chung–Lu sampling therefore runs twice per call — a deliberate
/// CPU-for-memory trade (the dedup set is the only O(m) state).
pub fn stream_pair(
    config: &LargeConfig,
    mut sink1: impl FnMut(VertexId, VertexId, f64),
    mut sink2: impl FnMut(VertexId, VertexId, f64),
) -> Vec<PlantedGroup> {
    let group_total: usize = config.group_sizes.iter().sum();
    assert!(
        config.vertices > group_total,
        "vertices must exceed the planted-group total"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    let background_n = config.vertices - group_total;
    let weights = power_law_weights(background_n, config.gamma);
    let mut topo_rng = rng.clone();
    // Advance the real rng past the topology draws, discarding the edges …
    chung_lu_stream(&weights, config.edges, &mut rng, |_, _| {});
    // … then replay the topology from the clone, drawing each edge's weight
    // and jitter from the advanced rng — the same values, in the same order,
    // as generate()'s post-topology loop.
    chung_lu_stream(&weights, config.edges, &mut topo_rng, |u, v| {
        let w = collaboration_weight(&mut rng, config.weight_mean);
        let jitter = 0.8 + 0.4 * rng.gen::<f64>();
        sink1(u, v, w);
        sink2(u, v, w * jitter);
    });

    let groups = allocate_groups(background_n as VertexId, &config.group_sizes);
    let mut planted = Vec::with_capacity(groups.len());
    for (index, vertices) in groups.into_iter().enumerate() {
        plant_dense_group_stream(
            &vertices,
            config.group_weight,
            config.group_edge_probability,
            &mut rng,
            &mut sink2,
        );
        planted.push(PlantedGroup {
            name: format!("emerging-{index}"),
            vertices,
            kind: GroupKind::Emerging,
        });
    }
    planted
}

/// The result of [`generate_packs`]: one write summary per graph plus the
/// planted ground truth.
#[derive(Debug, Clone)]
pub struct PackPair {
    /// Write summary of the `G1` pack.
    pub g1: PackSummary,
    /// Write summary of the `G2` pack.
    pub g2: PackSummary,
    /// The planted contrast groups (same as [`generate`]'s).
    pub planted: Vec<PlantedGroup>,
}

/// Generates the pair straight into two pack files without ever holding an
/// edge list or a second CSR copy in memory: [`stream_pair`] drives two
/// [`StreamingPackWriter`]s through their counting and filling passes.
///
/// The packs decode ([`dcs_graph::GraphPack::to_graph`]) to exactly the
/// graphs [`generate`] returns, and — because the seed pins every draw —
/// regenerating with the same config produces **byte-identical** files,
/// which is what lets CI cache the benchmark pack as an artifact keyed only
/// on the generator version.
pub fn generate_packs(
    config: &LargeConfig,
    g1_path: impl AsRef<Path>,
    g2_path: impl AsRef<Path>,
) -> io::Result<PackPair> {
    let mut w1 = StreamingPackWriter::new(config.vertices);
    let mut w2 = StreamingPackWriter::new(config.vertices);
    stream_pair(
        config,
        |u, v, _| w1.count_edge(u, v),
        |u, v, _| w2.count_edge(u, v),
    );
    w1.begin_fill();
    w2.begin_fill();
    let planted = stream_pair(
        config,
        |u, v, w| w1.add_edge(u, v, w),
        |u, v, w| w2.add_edge(u, v, w),
    );
    Ok(PackPair {
        g1: w1.finish(g1_path)?,
        g2: w2.finish(g2_path)?,
        planted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pair_is_deterministic() {
        let a = generate(&LargeConfig::tiny());
        let b = generate(&LargeConfig::tiny());
        assert_eq!(a.g1.num_edges(), b.g1.num_edges());
        assert_eq!(a.g2.num_edges(), b.g2.num_edges());
        let edges_a: Vec<_> = a.g2.edges().collect();
        let edges_b: Vec<_> = b.g2.edges().collect();
        assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn planted_groups_are_disjoint_and_at_the_top() {
        let config = LargeConfig::tiny();
        let pair = generate(&config);
        let group_total: usize = config.group_sizes.iter().sum();
        let background_n = config.vertices - group_total;
        let mut seen = std::collections::HashSet::new();
        for group in &pair.planted {
            assert_eq!(group.kind, GroupKind::Emerging);
            for &v in &group.vertices {
                assert!((v as usize) >= background_n);
                assert!(seen.insert(v), "groups must be disjoint");
            }
        }
        assert_eq!(seen.len(), group_total);
    }

    #[test]
    fn planted_groups_dominate_the_difference() {
        // The first planted group must be denser in G_D = G2 − G1 than any
        // background vertex's neighbourhood: its average degree difference
        // should dwarf the background churn.
        let config = LargeConfig::tiny();
        let pair = generate(&config);
        let gd = dcs_core::difference_graph(&pair.g2, &pair.g1).unwrap();
        let group = &pair.planted[0].vertices;
        let density = gd.average_degree(group);
        assert!(
            density > config.group_weight,
            "planted group density {density} too weak"
        );
    }

    #[test]
    fn streamed_pair_equals_generate() {
        let config = LargeConfig::tiny();
        let expected = generate(&config);
        let mut b1 = GraphBuilder::new(config.vertices);
        let mut b2 = GraphBuilder::new(config.vertices);
        let planted = stream_pair(
            &config,
            |u, v, w| b1.add_edge(u, v, w),
            |u, v, w| b2.add_edge(u, v, w),
        );
        assert_eq!(b1.build(), expected.g1);
        assert_eq!(b2.build(), expected.g2);
        assert_eq!(planted, expected.planted);
    }

    #[test]
    fn generated_packs_decode_to_the_generated_pair() {
        let config = LargeConfig::tiny();
        let dir = std::env::temp_dir();
        let p1 = dir.join(format!("dcs_large_g1_{}.pack", std::process::id()));
        let p2 = dir.join(format!("dcs_large_g2_{}.pack", std::process::id()));
        let pair = generate_packs(&config, &p1, &p2).unwrap();
        let expected = generate(&config);
        assert_eq!(pair.planted, expected.planted);
        assert_eq!(pair.g1.edges, expected.g1.num_edges());
        assert_eq!(pair.g2.edges, expected.g2.num_edges());

        let g1 = dcs_graph::GraphPack::open(&p1).unwrap().to_graph().unwrap();
        let g2 = dcs_graph::GraphPack::open(&p2).unwrap().to_graph().unwrap();
        assert_eq!(g1, expected.g1);
        assert_eq!(g2, expected.g2);

        // Regeneration from the pinned seed is byte-identical.
        let p1b = dir.join(format!("dcs_large_g1b_{}.pack", std::process::id()));
        let p2b = dir.join(format!("dcs_large_g2b_{}.pack", std::process::id()));
        generate_packs(&config, &p1b, &p2b).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p1b).unwrap());
        assert_eq!(std::fs::read(&p2).unwrap(), std::fs::read(&p2b).unwrap());
        for p in [p1, p2, p1b, p2b] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn scales_to_the_requested_edge_count() {
        let config = LargeConfig {
            vertices: 2_000,
            edges: 12_000,
            ..LargeConfig::tiny()
        };
        let pair = generate(&config);
        assert!(pair.g1.num_edges() >= config.edges * 9 / 10);
        assert!(pair.g2.num_edges() > pair.g1.num_edges());
    }
}

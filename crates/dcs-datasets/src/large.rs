//! Million-edge benchmark pairs: a Chung–Lu power-law background with
//! community-planted contrast groups.
//!
//! The benchmark preset ([`LargeConfig::benchmark`]) targets the scale of the
//! paper's larger datasets — `n = 10⁵` vertices, `m = 10⁶` background edges —
//! which is where intra-solve parallelism (parallel peeling, parallel KKT
//! scans) starts to pay for its coordination overhead.  The topology is the
//! same heavy-tailed background the other generators use ([`crate::random`]), with
//! the contrast signal planted as dense near-cliques boosted in `G2` only:
//! the background's weight churn provides realistic noise in `G_D` while the
//! planted groups stay the unambiguous densest contrast structures.
//!
//! Everything is deterministic given [`LargeConfig::seed`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcs_graph::GraphBuilder;

use crate::planted::{allocate_groups, plant_dense_group};
use crate::random::{chung_lu_edges, collaboration_weight, power_law_weights};
use crate::{GraphPair, GroupKind, PlantedGroup};

/// Configuration of a large power-law + planted-contrast pair.
#[derive(Debug, Clone)]
pub struct LargeConfig {
    /// Number of vertices (background ids first, planted-group ids last).
    pub vertices: usize,
    /// Target number of background edges.
    pub edges: usize,
    /// Power-law exponent of the background degree sequence.
    pub gamma: f64,
    /// Sizes of the planted emerging groups (disjoint, at the top of the id
    /// range).
    pub group_sizes: Vec<usize>,
    /// Mean edge weight inside a planted group in `G2`.
    pub group_weight: f64,
    /// Probability of each within-group pair being connected.
    pub group_edge_probability: f64,
    /// Mean background edge weight (collaboration-count distributed).
    pub weight_mean: f64,
    /// RNG seed; the pair is a pure function of the config.
    pub seed: u64,
}

impl LargeConfig {
    /// The paper-scale benchmark preset: `10⁵` vertices, `10⁶` background
    /// edges, four planted contrast groups.
    pub fn benchmark() -> Self {
        LargeConfig {
            vertices: 100_000,
            edges: 1_000_000,
            gamma: 2.3,
            group_sizes: vec![48, 40, 32, 24],
            group_weight: 20.0,
            group_edge_probability: 0.9,
            weight_mean: 2.0,
            seed: 0xDC5_1A56E,
        }
    }

    /// A shrunken preset (hundreds of vertices) with the same shape, for
    /// tests and smoke runs.
    pub fn tiny() -> Self {
        LargeConfig {
            vertices: 600,
            edges: 4_000,
            gamma: 2.3,
            group_sizes: vec![12, 8],
            group_weight: 20.0,
            group_edge_probability: 0.9,
            weight_mean: 2.0,
            seed: 0xDC5_1A56E,
        }
    }
}

/// Generates the pair: both graphs share the Chung–Lu background topology
/// with independently jittered weights (contrast noise), and each planted
/// group is boosted in `G2` only (emerging).
pub fn generate(config: &LargeConfig) -> GraphPair {
    let group_total: usize = config.group_sizes.iter().sum();
    assert!(
        config.vertices > group_total,
        "vertices must exceed the planted-group total"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Background over the low ids; planted groups live in a dedicated range
    // at the top so they stay disjoint from each other (background edges may
    // still touch them, as in the real datasets).
    let background_n = config.vertices - group_total;
    let weights = power_law_weights(background_n, config.gamma);
    let background = chung_lu_edges(&weights, config.edges, &mut rng);

    let mut b1 = GraphBuilder::new(config.vertices);
    let mut b2 = GraphBuilder::new(config.vertices);
    for &(u, v) in &background {
        let w = collaboration_weight(&mut rng, config.weight_mean);
        // Same topology, mildly churned weights: G_D carries dense noise
        // without a planted-size signal in the background.
        let jitter = 0.8 + 0.4 * rng.gen::<f64>();
        b1.add_edge(u, v, w);
        b2.add_edge(u, v, w * jitter);
    }

    let groups = allocate_groups(background_n as dcs_graph::VertexId, &config.group_sizes);
    let mut planted = Vec::with_capacity(groups.len());
    for (index, vertices) in groups.into_iter().enumerate() {
        plant_dense_group(
            &mut b2,
            &vertices,
            config.group_weight,
            config.group_edge_probability,
            &mut rng,
        );
        planted.push(PlantedGroup {
            name: format!("emerging-{index}"),
            vertices,
            kind: GroupKind::Emerging,
        });
    }

    GraphPair {
        g1: b1.build(),
        g2: b2.build(),
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_pair_is_deterministic() {
        let a = generate(&LargeConfig::tiny());
        let b = generate(&LargeConfig::tiny());
        assert_eq!(a.g1.num_edges(), b.g1.num_edges());
        assert_eq!(a.g2.num_edges(), b.g2.num_edges());
        let edges_a: Vec<_> = a.g2.edges().collect();
        let edges_b: Vec<_> = b.g2.edges().collect();
        assert_eq!(edges_a, edges_b);
    }

    #[test]
    fn planted_groups_are_disjoint_and_at_the_top() {
        let config = LargeConfig::tiny();
        let pair = generate(&config);
        let group_total: usize = config.group_sizes.iter().sum();
        let background_n = config.vertices - group_total;
        let mut seen = std::collections::HashSet::new();
        for group in &pair.planted {
            assert_eq!(group.kind, GroupKind::Emerging);
            for &v in &group.vertices {
                assert!((v as usize) >= background_n);
                assert!(seen.insert(v), "groups must be disjoint");
            }
        }
        assert_eq!(seen.len(), group_total);
    }

    #[test]
    fn planted_groups_dominate_the_difference() {
        // The first planted group must be denser in G_D = G2 − G1 than any
        // background vertex's neighbourhood: its average degree difference
        // should dwarf the background churn.
        let config = LargeConfig::tiny();
        let pair = generate(&config);
        let gd = dcs_core::difference_graph(&pair.g2, &pair.g1).unwrap();
        let group = &pair.planted[0].vertices;
        let density = gd.average_degree(group);
        assert!(
            density > config.group_weight,
            "planted group density {density} too weak"
        );
    }

    #[test]
    fn scales_to_the_requested_edge_count() {
        let config = LargeConfig {
            vertices: 2_000,
            edges: 12_000,
            ..LargeConfig::tiny()
        };
        let pair = generate(&config);
        assert!(pair.g1.num_edges() >= config.edges * 9 / 10);
        assert!(pair.g2.num_edges() > pair.g1.num_edges());
    }
}

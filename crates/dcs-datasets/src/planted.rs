//! Helpers for planting ground-truth contrast groups into graph builders.

use dcs_graph::{GraphBuilder, VertexId};
use rand::Rng;

/// Adds a (near-)clique on `vertices` to `builder`.
///
/// * `weight_mean` — expected weight of each clique edge (sampled as
///   `weight_mean · Uniform(0.75, 1.25)` so planted groups are not perfectly regular),
/// * `edge_probability` — probability that each pair is connected (1.0 plants a full
///   clique; lower values plant a dense near-clique).
pub fn plant_dense_group<R: Rng>(
    builder: &mut GraphBuilder,
    vertices: &[VertexId],
    weight_mean: f64,
    edge_probability: f64,
    rng: &mut R,
) {
    plant_dense_group_stream(vertices, weight_mean, edge_probability, rng, |u, v, w| {
        builder.add_edge(u, v, w)
    });
}

/// Streaming form of [`plant_dense_group`]: calls `sink` with each planted
/// `(u, v, weight)` instead of writing into a builder.  Draws from `rng` and
/// the emission order are identical to the builder form, so a seeded replay
/// through either entry point plants the same group.
pub fn plant_dense_group_stream<R: Rng>(
    vertices: &[VertexId],
    weight_mean: f64,
    edge_probability: f64,
    rng: &mut R,
    mut sink: impl FnMut(VertexId, VertexId, f64),
) {
    for (idx, &u) in vertices.iter().enumerate() {
        for &v in &vertices[idx + 1..] {
            if rng.gen::<f64>() <= edge_probability {
                let jitter = 0.75 + 0.5 * rng.gen::<f64>();
                sink(u, v, weight_mean * jitter);
            }
        }
    }
}

/// Picks `count` disjoint groups of the given sizes from the id range
/// `[start, start + Σ sizes)`, returning one sorted vertex list per group.
///
/// Using a dedicated id range keeps planted groups disjoint from each other; background
/// edges may still touch them, which is exactly what happens in the real datasets.
pub fn allocate_groups(start: VertexId, sizes: &[usize]) -> Vec<Vec<VertexId>> {
    let mut groups = Vec::with_capacity(sizes.len());
    let mut cursor = start;
    for &size in sizes {
        let group: Vec<VertexId> = (cursor..cursor + size as VertexId).collect();
        cursor += size as VertexId;
        groups.push(group);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plants_a_full_clique() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = GraphBuilder::new(10);
        plant_dense_group(&mut b, &[2, 3, 4, 5], 10.0, 1.0, &mut rng);
        let g = b.build();
        assert!(g.is_positive_clique(&[2, 3, 4, 5]));
        assert_eq!(g.num_edges(), 6);
        for (_, _, w) in g.edges() {
            assert!((7.5..=12.5).contains(&w));
        }
    }

    #[test]
    fn respects_edge_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = GraphBuilder::new(40);
        let group: Vec<u32> = (0..30).collect();
        plant_dense_group(&mut b, &group, 1.0, 0.5, &mut rng);
        let g = b.build();
        let max_edges = 30 * 29 / 2;
        assert!(g.num_edges() > max_edges / 4);
        assert!(g.num_edges() < max_edges * 3 / 4);
    }

    #[test]
    fn allocates_disjoint_groups() {
        let groups = allocate_groups(100, &[3, 5, 2]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], vec![100, 101, 102]);
        assert_eq!(groups[1], vec![103, 104, 105, 106, 107]);
        assert_eq!(groups[2], vec![108, 109]);
    }
}

//! Binary CSR **graph pack** writer — and the format specification.
//!
//! A pack stores one [`SignedGraph`] in the exact shape solvers consume
//! (CSR arrays), so the reader in `dcs-graph` ([`dcs_graph::pack`]) can
//! memory-map the file and point the graph's columns straight at it:
//! opening a million-edge pack costs O(header) eager work instead of
//! parsing a million text lines.  This module is the writing side:
//! [`PackWriter`] serialises an in-memory graph, and
//! [`StreamingPackWriter`] builds a pack from an edge *stream* in two
//! passes so a 10⁷-edge pack never holds two copies of the graph in RAM.
//!
//! # Format specification (version 1)
//!
//! All multi-byte values are **little-endian**; the file is a sequence of
//! 8-byte-aligned structures.  Readers on big-endian or 32-bit targets must
//! decode (copy) the sections; zero-copy aliasing is specified only for
//! 64-bit little-endian hosts, where `u64` row offsets coincide with the
//! in-memory `usize` representation.
//!
//! ## Header (72 bytes, at offset 0)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `"DCSPACK1"` |
//! | 8      | 8    | format version (currently 1) |
//! | 16     | 8    | `n` — number of vertices |
//! | 24     | 8    | `m` — number of undirected edges |
//! | 32     | 8    | `m⁺` — edges with positive weight |
//! | 40     | 8    | `m⁻` — edges with negative weight (`m = m⁺ + m⁻`) |
//! | 48     | 8    | flags (bit 0: names section present; bit 1: session-metadata section present) |
//! | 56     | 8    | section count (3 plus one per flag bit set) |
//! | 64     | 8    | FNV-1a/64 checksum of bytes `0..64` |
//!
//! ## Section table (at offset 72)
//!
//! One 32-byte entry per section — `{kind, byte offset, byte length,
//! FNV-1a/64 checksum of the payload}` as four `u64`s — followed by one
//! `u64` FNV-1a/64 checksum of the entry bytes.  Entries appear in strictly
//! ascending kind order; payload offsets are absolute, 8-byte aligned and
//! non-overlapping, with zero padding between payloads.  Lengths are exact
//! payload bytes (padding excluded).
//!
//! ## Sections
//!
//! | kind | name    | payload |
//! |-----:|---------|---------|
//! | 1    | offsets | `(n+1) × u64` CSR row offsets (`offsets[0] = 0`, monotone, `offsets[n] = 2m`) |
//! | 2    | targets | `2m × u32` neighbor ids, each row strictly ascending |
//! | 3    | weights | `2m × f64` IEEE-754 bit patterns, parallel to targets; finite, non-zero |
//! | 4    | names   | optional: `n ×` (`u32` byte length + UTF-8 bytes), concatenated |
//! | 5    | session | optional: opaque session-metadata bytes (streaming-session checkpoints; encoding owned by `dcs-server`) |
//!
//! Every undirected edge appears in both endpoint rows with bit-identical
//! weight; self-loops are forbidden.  These are exactly the invariants
//! [`dcs_graph::SignedGraph::from_raw_csr`] validates, which is what the
//! reader runs (allocation-free) over the mapped sections before handing
//! them to solvers.
//!
//! ## Version policy
//!
//! The magic string pins the major layout; the header's version field is
//! the compatibility contract.  Readers reject any version they do not
//! know (no silent best-effort decoding of future packs).  Backwards-
//! compatible *additions* get new section kinds — which version-1 readers
//! also reject, by design: a pack either decodes exactly or not at all.
//! Incompatible changes bump the version.  Checksums are FNV-1a/64 —
//! streamable, dependency-free, and any single-byte corruption changes the
//! digest (every update step is a bijection of the running state); they
//! detect corruption, not adversaries.
//!
//! Header and table checksums are verified eagerly at open; payload
//! checksums are verified by [`dcs_graph::GraphPack::verify`] (used by
//! `dcs pack-info --verify` and the corruption property tests) so the open
//! path stays O(header).

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use dcs_graph::pack::{
    pack_checksum, FLAG_HAS_NAMES, FLAG_HAS_SESSION, FORMAT_VERSION, HEADER_LEN, KIND_NAMES,
    KIND_OFFSETS, KIND_SESSION, KIND_TARGETS, KIND_WEIGHTS, MAGIC, SECTION_ENTRY_LEN,
};
use dcs_graph::{SignedGraph, VertexId};

/// Incremental FNV-1a/64, mirroring [`pack_checksum`] over streamed chunks.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// What a write produced: the header counts plus the file size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackSummary {
    /// Number of vertices written.
    pub vertices: usize,
    /// Number of undirected edges written.
    pub edges: usize,
    /// Edges with positive weight.
    pub positive_edges: usize,
    /// Edges with negative weight.
    pub negative_edges: usize,
    /// Total pack size in bytes.
    pub bytes: usize,
}

/// Serialises in-memory [`SignedGraph`]s into graph packs.
///
/// The graph is streamed row by row straight into a buffered file writer —
/// the only transient state is the checksum pass — so writing never
/// duplicates the CSR arrays.
pub struct PackWriter;

impl PackWriter {
    /// Writes `graph` as a pack at `path` (no names section).
    pub fn write_graph(graph: &SignedGraph, path: impl AsRef<Path>) -> io::Result<PackSummary> {
        Self::write(graph, None, None, path)
    }

    /// Writes `graph` with a vertex-name section (`names.len()` must equal
    /// the vertex count).
    pub fn write_graph_with_names(
        graph: &SignedGraph,
        names: &[String],
        path: impl AsRef<Path>,
    ) -> io::Result<PackSummary> {
        Self::write(graph, Some(names), None, path)
    }

    /// Writes `graph` with an opaque session-metadata section (kind 5) —
    /// the entry point streaming-session checkpoints use: the observed
    /// difference state rides in the CSR sections and the session counters
    /// ride in `session`, so one pack is a complete, checksummed checkpoint.
    pub fn write_graph_with_session(
        graph: &SignedGraph,
        session: &[u8],
        path: impl AsRef<Path>,
    ) -> io::Result<PackSummary> {
        Self::write(graph, None, Some(session), path)
    }

    fn write(
        graph: &SignedGraph,
        names: Option<&[String]>,
        session: Option<&[u8]>,
        path: impl AsRef<Path>,
    ) -> io::Result<PackSummary> {
        let n = graph.num_vertices();
        if let Some(names) = names {
            if names.len() != n {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("{} names for {n} vertices", names.len()),
                ));
            }
        }
        emit(
            path.as_ref(),
            n,
            graph.num_positive_edges(),
            graph.num_negative_edges(),
            names,
            session,
            &mut |sink| {
                let mut cumulative = 0u64;
                sink(&cumulative.to_le_bytes());
                for v in 0..n {
                    cumulative += graph.degree(v as VertexId) as u64;
                    sink(&cumulative.to_le_bytes());
                }
            },
            &mut |sink| {
                for v in 0..n {
                    let (nbrs, _) = graph.neighbor_slices(v as VertexId);
                    for &t in nbrs {
                        sink(&t.to_le_bytes());
                    }
                }
            },
            &mut |sink| {
                for v in 0..n {
                    let (_, ws) = graph.neighbor_slices(v as VertexId);
                    for &w in ws {
                        sink(&w.to_le_bytes());
                    }
                }
            },
        )
    }
}

/// A section serializer: streams the section's payload bytes into the
/// supplied sink, in order.  Called twice per section by [`emit`] — once to
/// checksum, once to write.
type SectionEmitter<'a> = &'a mut dyn FnMut(&mut dyn FnMut(&[u8]));

/// Emitter-driven pack serialisation: each section closure streams its
/// payload bytes into the supplied sink and is called twice — once to
/// checksum, once to write — so no section is ever materialised separately.
#[allow(clippy::too_many_arguments)]
fn emit(
    path: &Path,
    vertices: usize,
    positive_edges: usize,
    negative_edges: usize,
    names: Option<&[String]>,
    session: Option<&[u8]>,
    emit_offsets: SectionEmitter,
    emit_targets: SectionEmitter,
    emit_weights: SectionEmitter,
) -> io::Result<PackSummary> {
    let edges = positive_edges + negative_edges;
    let entries = edges * 2;
    let offsets_len = (vertices + 1) * 8;
    let targets_len = entries * 4;
    let weights_len = entries * 8;
    let names_len = names.map(|names| names.iter().map(|s| 4 + s.len()).sum::<usize>());

    let mut emit_names = |sink: &mut dyn FnMut(&[u8])| {
        if let Some(names) = names {
            for name in names {
                sink(&(name.len() as u32).to_le_bytes());
                sink(name.as_bytes());
            }
        }
    };
    let mut emit_session = |sink: &mut dyn FnMut(&[u8])| {
        if let Some(bytes) = session {
            sink(bytes);
        }
    };

    // Pass 1: checksums.
    let checksum_of = |emitter: SectionEmitter| {
        let mut fnv = Fnv::new();
        emitter(&mut |bytes| fnv.update(bytes));
        fnv.0
    };
    let offsets_checksum = checksum_of(emit_offsets);
    let targets_checksum = checksum_of(emit_targets);
    let weights_checksum = checksum_of(emit_weights);
    let names_checksum = names_len.map(|_| checksum_of(&mut emit_names));

    // Layout: header, table, then 8-aligned payloads.
    let mut section_dims: Vec<(u64, usize, u64)> = vec![
        (KIND_OFFSETS, offsets_len, offsets_checksum),
        (KIND_TARGETS, targets_len, targets_checksum),
        (KIND_WEIGHTS, weights_len, weights_checksum),
    ];
    if let (Some(len), Some(checksum)) = (names_len, names_checksum) {
        section_dims.push((KIND_NAMES, len, checksum));
    }
    if let Some(bytes) = session {
        section_dims.push((KIND_SESSION, bytes.len(), pack_checksum(bytes)));
    }
    let section_count = section_dims.len();
    let table_end = HEADER_LEN + section_count * SECTION_ENTRY_LEN + 8;
    let mut cursor = table_end;
    let mut sections: Vec<(u64, usize, usize, u64)> = Vec::with_capacity(section_count);
    for &(kind, len, checksum) in &section_dims {
        cursor = cursor.div_ceil(8) * 8;
        sections.push((kind, cursor, len, checksum));
        cursor += len;
    }
    let file_len = cursor;

    let mut header = Vec::with_capacity(HEADER_LEN);
    header.extend_from_slice(&MAGIC);
    for field in [
        FORMAT_VERSION,
        vertices as u64,
        edges as u64,
        positive_edges as u64,
        negative_edges as u64,
        if names.is_some() { FLAG_HAS_NAMES } else { 0 }
            | if session.is_some() {
                FLAG_HAS_SESSION
            } else {
                0
            },
        section_count as u64,
    ] {
        header.extend_from_slice(&field.to_le_bytes());
    }
    let header_checksum = pack_checksum(&header);
    header.extend_from_slice(&header_checksum.to_le_bytes());

    let mut table = Vec::with_capacity(section_count * SECTION_ENTRY_LEN);
    for &(kind, offset, len, checksum) in &sections {
        table.extend_from_slice(&kind.to_le_bytes());
        table.extend_from_slice(&(offset as u64).to_le_bytes());
        table.extend_from_slice(&(len as u64).to_le_bytes());
        table.extend_from_slice(&checksum.to_le_bytes());
    }
    let table_checksum = pack_checksum(&table);

    // Pass 2: write.
    let mut writer = BufWriter::new(File::create(path)?);
    writer.write_all(&header)?;
    writer.write_all(&table)?;
    writer.write_all(&table_checksum.to_le_bytes())?;
    let mut written = table_end;
    // Emitters in section order — the optional sections only join the list
    // when present, so the zip below stays positionally exact.
    let mut emitters: Vec<SectionEmitter> = vec![emit_offsets, emit_targets, emit_weights];
    if names.is_some() {
        emitters.push(&mut emit_names);
    }
    if session.is_some() {
        emitters.push(&mut emit_session);
    }
    for ((_, offset, len, _), emitter) in sections.iter().zip(emitters) {
        while written < *offset {
            writer.write_all(&[0])?;
            written += 1;
        }
        let mut io_error: Option<io::Error> = None;
        emitter(&mut |bytes| {
            if io_error.is_none() {
                if let Err(e) = writer.write_all(bytes) {
                    io_error = Some(e);
                }
            }
        });
        if let Some(e) = io_error {
            return Err(e);
        }
        written += len;
    }
    writer.flush()?;
    debug_assert_eq!(written, file_len);

    Ok(PackSummary {
        vertices,
        edges,
        positive_edges,
        negative_edges,
        bytes: file_len,
    })
}

/// Two-pass streaming pack construction: build a pack directly from an edge
/// stream without ever holding both an edge list and the CSR arrays.
///
/// Protocol — the caller streams the **same deterministic edge sequence
/// twice** (generators re-run from their pinned seed):
///
/// 1. pass 1: [`Self::count_edge`] per edge (degree counting, O(n) state);
/// 2. [`Self::begin_fill`] — allocates the single CSR copy;
/// 3. pass 2: [`Self::add_edge`] per edge (row filling);
/// 4. [`Self::finish`] — sorts each row, merges duplicate edges by summing
///    (the [`dcs_graph::GraphBuilder`] policy), drops zero sums, and
///    streams the sections to disk.
///
/// Peak memory is one CSR copy (~20 bytes per directed entry) instead of
/// the builder path's edge list + hash maps + built CSR.  The output is a
/// pure function of the edge stream, so regenerating from the same seed
/// yields a byte-identical pack.
pub struct StreamingPackWriter {
    vertices: usize,
    degrees: Vec<u32>,
    offsets: Vec<usize>,
    cursor: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<f64>,
    filling: bool,
}

impl StreamingPackWriter {
    /// Starts a pack over `vertices` vertices, in counting mode.
    pub fn new(vertices: usize) -> StreamingPackWriter {
        StreamingPackWriter {
            vertices,
            degrees: vec![0; vertices],
            offsets: Vec::new(),
            cursor: Vec::new(),
            targets: Vec::new(),
            weights: Vec::new(),
            filling: false,
        }
    }

    fn check_endpoints(&self, u: VertexId, v: VertexId) {
        assert!(u != v, "self-loop ({u}, {v})");
        assert!(
            (u as usize) < self.vertices && (v as usize) < self.vertices,
            "edge ({u}, {v}) outside 0..{}",
            self.vertices
        );
    }

    /// Pass 1: records one undirected edge for degree counting.
    pub fn count_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(!self.filling, "count_edge after begin_fill");
        self.check_endpoints(u, v);
        self.degrees[u as usize] += 1;
        self.degrees[v as usize] += 1;
    }

    /// Switches to filling mode, allocating the CSR arrays sized by pass 1.
    pub fn begin_fill(&mut self) {
        assert!(!self.filling, "begin_fill called twice");
        let mut offsets = Vec::with_capacity(self.vertices + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in &self.degrees {
            acc += d as usize;
            offsets.push(acc);
        }
        self.cursor = offsets[..self.vertices].to_vec();
        self.targets = vec![0; acc];
        self.weights = vec![0.0; acc];
        self.offsets = offsets;
        self.degrees = Vec::new();
        self.filling = true;
    }

    /// Pass 2: stores one undirected edge (both directions) with its weight.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: f64) {
        assert!(self.filling, "add_edge before begin_fill");
        self.check_endpoints(u, v);
        for (from, to) in [(u, v), (v, u)] {
            let slot = self.cursor[from as usize];
            assert!(
                slot < self.offsets[from as usize + 1],
                "pass 2 streamed more edges at vertex {from} than pass 1 counted"
            );
            self.targets[slot] = to;
            self.weights[slot] = w;
            self.cursor[from as usize] += 1;
        }
    }

    /// Sorts and canonicalises the rows, then writes the pack to `path`.
    pub fn finish(mut self, path: impl AsRef<Path>) -> io::Result<PackSummary> {
        assert!(self.filling, "finish before begin_fill");
        for v in 0..self.vertices {
            assert_eq!(
                self.cursor[v],
                self.offsets[v + 1],
                "pass 2 streamed fewer edges at vertex {v} than pass 1 counted"
            );
        }
        // Sort each row and merge duplicates (sum, drop exact-zero sums),
        // compacting front-to-back: the write cursor never overtakes the
        // read row, so this runs in place.
        let mut scratch: Vec<(VertexId, f64)> = Vec::new();
        let mut write = 0usize;
        let mut row_start = self.offsets[0];
        let mut positive_entries = 0usize;
        let mut negative_entries = 0usize;
        for v in 0..self.vertices {
            let row_end = self.offsets[v + 1];
            scratch.clear();
            scratch.extend(
                self.targets[row_start..row_end]
                    .iter()
                    .copied()
                    .zip(self.weights[row_start..row_end].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(t, _)| t);
            self.offsets[v] = write;
            let mut i = 0;
            while i < scratch.len() {
                let target = scratch[i].0;
                let mut sum = scratch[i].1;
                i += 1;
                while i < scratch.len() && scratch[i].0 == target {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    self.targets[write] = target;
                    self.weights[write] = sum;
                    if sum > 0.0 {
                        positive_entries += 1;
                    } else {
                        negative_entries += 1;
                    }
                    write += 1;
                }
            }
            row_start = row_end;
        }
        self.offsets[self.vertices] = write;
        self.targets.truncate(write);
        self.weights.truncate(write);

        let (offsets, targets, weights) = (self.offsets, self.targets, self.weights);
        emit(
            path.as_ref(),
            self.vertices,
            positive_entries / 2,
            negative_entries / 2,
            None,
            None,
            &mut |sink| {
                for &o in &offsets {
                    sink(&(o as u64).to_le_bytes());
                }
            },
            &mut |sink| {
                for &t in &targets {
                    sink(&t.to_le_bytes());
                }
            },
            &mut |sink| {
                for &w in &weights {
                    sink(&w.to_le_bytes());
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::{GraphBuilder, GraphPack};

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dcs_packwriter_{name}_{}.pack", std::process::id()))
    }

    fn sample_graph() -> SignedGraph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1.5);
        b.add_edge(0, 3, -2.0);
        b.add_edge(2, 3, 3.0);
        b.add_edge(2, 4, -1.0);
        b.add_edge(3, 4, 2.25);
        b.build()
    }

    #[test]
    fn write_then_open_roundtrips() {
        let g = sample_graph();
        let path = temp_path("roundtrip");
        let summary = PackWriter::write_graph(&g, &path).unwrap();
        assert_eq!(summary.vertices, 6);
        assert_eq!(summary.edges, 5);
        assert_eq!(summary.positive_edges, 3);
        let pack = GraphPack::open(&path).unwrap();
        pack.verify().unwrap();
        let decoded = pack.to_graph().unwrap();
        assert_eq!(decoded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn names_section_roundtrips() {
        let g = sample_graph();
        let names: Vec<String> = (0..6).map(|i| format!("vertex-{i}")).collect();
        let path = temp_path("names");
        PackWriter::write_graph_with_names(&g, &names, &path).unwrap();
        let pack = GraphPack::open(&path).unwrap();
        assert!(pack.has_names());
        pack.verify().unwrap();
        assert_eq!(pack.read_names().unwrap().unwrap(), names);
        assert_eq!(pack.to_graph().unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn session_section_roundtrips() {
        let g = sample_graph();
        let meta = b"{\"version\":7,\"observations\":3}";
        let path = temp_path("session");
        PackWriter::write_graph_with_session(&g, meta, &path).unwrap();
        let pack = GraphPack::open(&path).unwrap();
        assert!(pack.has_session());
        assert!(!pack.has_names());
        pack.verify().unwrap();
        assert_eq!(pack.session_bytes().unwrap(), meta);
        assert_eq!(pack.to_graph().unwrap(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn name_count_mismatch_is_rejected() {
        let g = sample_graph();
        let err = PackWriter::write_graph_with_names(&g, &["one".to_string()], temp_path("bad"))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn streaming_writer_matches_builder_graph() {
        let edges: Vec<(VertexId, VertexId, f64)> = vec![
            (0, 1, 1.5),
            (0, 3, -2.0),
            (2, 3, 3.0),
            (2, 4, -1.0),
            (3, 4, 2.25),
            // A duplicate that must merge by summing, builder-style.
            (0, 1, 0.5),
            // A pair that must cancel to zero and be dropped.
            (1, 4, 2.0),
            (1, 4, -2.0),
        ];
        let mut w = StreamingPackWriter::new(6);
        for &(u, v, _) in &edges {
            w.count_edge(u, v);
        }
        w.begin_fill();
        for &(u, v, wt) in &edges {
            w.add_edge(u, v, wt);
        }
        let path = temp_path("streaming");
        let summary = w.finish(&path).unwrap();

        let mut b = GraphBuilder::new(6);
        b.add_edges(edges);
        let expected = b.build();

        let pack = GraphPack::open(&path).unwrap();
        pack.verify().unwrap();
        assert_eq!(pack.to_graph().unwrap(), expected);
        assert_eq!(summary.edges, expected.num_edges());
        assert_eq!(summary.positive_edges, expected.num_positive_edges());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn same_graph_writes_byte_identical_packs() {
        let g = sample_graph();
        let a = temp_path("identical_a");
        let b = temp_path("identical_b");
        PackWriter::write_graph(&g, &a).unwrap();
        PackWriter::write_graph(&g, &b).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn empty_graph_packs() {
        let g = SignedGraph::empty(4);
        let path = temp_path("empty");
        let summary = PackWriter::write_graph(&g, &path).unwrap();
        assert_eq!(summary.edges, 0);
        let pack = GraphPack::open(&path).unwrap();
        pack.verify().unwrap();
        assert_eq!(pack.to_graph().unwrap(), g);
        std::fs::remove_file(&path).ok();
    }
}

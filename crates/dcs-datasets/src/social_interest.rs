//! Synthetic social/interest graph pairs (the Douban experiment, Appendix B-2).
//!
//! The Douban dataset pairs a user **social** graph `G1` with an **interest-similarity**
//! graph `G2` (an edge when two users' rated movie/book lists have Jaccard similarity
//! above a threshold; only pairs within two social hops are considered).  Both graphs are
//! uniformly weighted (all weights 1).  Mining the `Interest − Social` difference graph
//! finds groups of users with strongly overlapping tastes who are *not* socially
//! connected; `Social − Interest` finds tight social circles with unrelated tastes.
//!
//! The generator mirrors that construction: a power-law social background with planted
//! social circles, interest communities defined independently of the social structure,
//! and an interest graph built from 2-hop social pairs plus interest-community pairs —
//! matching the paper's setup where the interest graph is constructed around the social
//! neighbourhood.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashSet;

use dcs_graph::{traversal::k_hop_neighborhood, GraphBuilder, VertexId};

use crate::planted::allocate_groups;
use crate::random::{chung_lu_edges, power_law_weights};
use crate::{GraphPair, GroupKind, PlantedGroup, Scale};

/// Configuration of the social/interest pair generator.
#[derive(Debug, Clone)]
pub struct SocialInterestConfig {
    /// Number of users.
    pub num_users: usize,
    /// Number of background social edges.
    pub social_edges: usize,
    /// Power-law exponent of social activity.
    pub gamma: f64,
    /// Probability that a 2-hop social pair shares enough ratings to get an interest edge
    /// (background interest noise).
    pub background_interest_probability: f64,
    /// Planted interest communities (dense in the interest graph, sparse socially):
    /// `(size, within-community interest-edge probability)`.
    pub interest_communities: Vec<(usize, f64)>,
    /// Planted social circles (dense socially, low interest overlap):
    /// `(size, within-circle social-edge probability)`.
    pub social_circles: Vec<(usize, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl SocialInterestConfig {
    /// Preset mimicking the **Movie** interest profile: interest edges are plentiful, so
    /// the Interest−Social contrast groups are large and strong.
    pub fn movie(scale: Scale) -> Self {
        let (num_users, social_edges) = match scale {
            Scale::Tiny => (500, 2_500),
            Scale::Default => (6_000, 35_000),
            Scale::Full => (55_710, 330_000),
        };
        SocialInterestConfig {
            num_users,
            social_edges,
            gamma: 2.2,
            background_interest_probability: 0.20,
            interest_communities: vec![(32, 0.95), (18, 0.9)],
            social_circles: vec![(24, 0.9), (14, 0.85)],
            seed: 0xD0BA_0001,
        }
    }

    /// Preset mimicking the **Book** interest profile: interest ratings are sparser
    /// (lower background probability and smaller planted interest communities), so the
    /// contrast goes the other way than for movies.
    pub fn book(scale: Scale) -> Self {
        let mut cfg = Self::movie(scale);
        cfg.background_interest_probability = 0.06;
        cfg.interest_communities = vec![(14, 0.85), (10, 0.8)];
        cfg.social_circles = vec![(26, 0.92), (20, 0.9)];
        cfg.seed = 0xD0BA_0002;
        cfg
    }

    /// Generates the pair: `g1` = social graph, `g2` = interest graph (both uniformly
    /// weighted with weight 1, like the Douban graphs in the paper).
    pub fn generate(&self) -> GraphPair {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_users;
        let planted_sizes: Vec<usize> = self
            .interest_communities
            .iter()
            .chain(self.social_circles.iter())
            .map(|(s, _)| *s)
            .collect();
        let planted_total: usize = planted_sizes.iter().sum();
        assert!(planted_total < n / 2, "planted groups must fit");
        let planted_start = (n - planted_total) as u32;
        let groups = allocate_groups(planted_start, &planted_sizes);
        let (interest_groups, social_groups) = groups.split_at(self.interest_communities.len());

        // ---- Social graph ----------------------------------------------------------
        let mut b_social = GraphBuilder::new(n);
        let weights = power_law_weights(planted_start as usize, self.gamma);
        for (u, v) in chung_lu_edges(&weights, self.social_edges, &mut rng) {
            b_social.add_edge(u, v, 1.0);
        }
        // Planted social circles are densely connected socially.
        for (group, &(_, p)) in social_groups.iter().zip(&self.social_circles) {
            plant_uniform(&mut b_social, group, p, &mut rng);
        }
        // Members of interest communities get a couple of random social ties so they are
        // within 2 hops of the rest of the network (the Douban construction only links
        // users within 2 social hops), but they are NOT socially dense.
        for group in interest_groups {
            for &u in group {
                let v = rng.gen_range(0..planted_start);
                b_social.add_edge(u, v, 1.0);
            }
        }
        let social = b_social.build();

        // ---- Interest graph ---------------------------------------------------------
        let mut b_interest = GraphBuilder::new(n);
        // Background: 2-hop social pairs share interests with a base probability.
        let mut seen_pairs: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        for u in 0..n as VertexId {
            if social.degree(u) == 0 {
                continue;
            }
            for v in k_hop_neighborhood(&social, u, 2) {
                if v <= u {
                    continue;
                }
                if !seen_pairs.insert((u, v)) {
                    continue;
                }
                if rng.gen::<f64>() < self.background_interest_probability {
                    b_interest.add_edge(u, v, 1.0);
                }
            }
        }
        // Planted interest communities: high pairwise similarity regardless of social
        // distance.
        for (group, &(_, p)) in interest_groups.iter().zip(&self.interest_communities) {
            plant_uniform(&mut b_interest, group, p, &mut rng);
        }
        // Planted social circles have *low* interest overlap: no extra edges added.
        let interest = b_interest.build();

        // ---- Ground truth -----------------------------------------------------------
        let mut planted = Vec::new();
        for (idx, group) in interest_groups.iter().enumerate() {
            planted.push(PlantedGroup {
                name: format!("interest-community-{idx}"),
                vertices: group.clone(),
                // Dense in G2 (interest) ⇒ found in Interest − Social.
                kind: GroupKind::Emerging,
            });
        }
        for (idx, group) in social_groups.iter().enumerate() {
            planted.push(PlantedGroup {
                name: format!("social-circle-{idx}"),
                vertices: group.clone(),
                kind: GroupKind::Disappearing,
            });
        }

        GraphPair {
            g1: social,
            g2: interest,
            planted,
        }
    }
}

/// Adds unit-weight edges between all pairs of `group` independently with probability `p`.
fn plant_uniform<R: Rng>(builder: &mut GraphBuilder, group: &[VertexId], p: f64, rng: &mut R) {
    for (i, &u) in group.iter().enumerate() {
        for &v in &group[i + 1..] {
            if rng.gen::<f64>() < p {
                builder.add_edge(u, v, 1.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::difference_graph;

    #[test]
    fn uniform_weights() {
        let pair = SocialInterestConfig::movie(Scale::Tiny).generate();
        for (_, _, w) in pair.g1.edges().take(200) {
            assert_eq!(w, 1.0);
        }
        for (_, _, w) in pair.g2.edges().take(200) {
            assert_eq!(w, 1.0);
        }
    }

    #[test]
    fn interest_minus_social_contains_interest_communities() {
        let pair = SocialInterestConfig::movie(Scale::Tiny).generate();
        let interest_minus_social = difference_graph(&pair.g2, &pair.g1).unwrap();
        let social_minus_interest = difference_graph(&pair.g1, &pair.g2).unwrap();
        for group in &pair.planted {
            match group.kind {
                GroupKind::Emerging => {
                    assert!(
                        interest_minus_social.average_degree(&group.vertices) > 1.0,
                        "{}",
                        group.name
                    );
                }
                GroupKind::Disappearing => {
                    assert!(
                        social_minus_interest.average_degree(&group.vertices) > 1.0,
                        "{}",
                        group.name
                    );
                }
            }
        }
    }

    #[test]
    fn movie_has_more_interest_edges_than_book() {
        let movie = SocialInterestConfig::movie(Scale::Tiny).generate();
        let book = SocialInterestConfig::book(Scale::Tiny).generate();
        // Matching the statistics pattern of Table II: the Book interest graph is much
        // sparser than the Movie interest graph.
        assert!(movie.g2.num_edges() > book.g2.num_edges());
    }

    #[test]
    fn both_directions_have_positive_and_negative_edges() {
        let pair = SocialInterestConfig::movie(Scale::Tiny).generate();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        assert!(gd.num_positive_edges() > 50);
        assert!(gd.num_negative_edges() > 50);
    }
}

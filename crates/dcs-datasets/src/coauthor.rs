//! Synthetic co-author graph pairs (the DBLP experiment of Section VI-B).
//!
//! The paper builds two co-author graphs — collaborations before 2010 (`G1`) and from
//! 2010 to 2016 (`G2`) — and mines emerging/disappearing co-author groups.  The generator
//! reproduces that setup with
//!
//! * a shared power-law collaboration background whose per-edge collaboration counts are
//!   drawn independently for the two periods (so most differences are small noise),
//! * planted **emerging** groups — research groups whose pairwise collaboration counts are
//!   much higher in the second period (e.g. the "UTA Machine Learning" or "CMU Privacy &
//!   Security" groups of Table III), and
//! * planted **disappearing** groups — groups that collaborated heavily only in the first
//!   period (the "Japan Robotics" / "Compiler & Software System" groups).

use rand::rngs::StdRng;
use rand::SeedableRng;

use dcs_graph::GraphBuilder;

use crate::planted::{allocate_groups, plant_dense_group};
use crate::random::{chung_lu_edges, collaboration_weight, power_law_weights};
use crate::{GraphPair, GroupKind, PlantedGroup, Scale};

/// Configuration of the co-author pair generator.
#[derive(Debug, Clone)]
pub struct CoauthorConfig {
    /// Number of authors.
    pub num_authors: usize,
    /// Number of background collaboration edges shared by both periods.
    pub background_edges: usize,
    /// Power-law exponent of the author "productivity" distribution.
    pub gamma: f64,
    /// Mean collaboration count per background edge and period.
    pub background_mean_weight: f64,
    /// Sizes of the planted emerging groups, together with the mean within-group
    /// collaboration count in the second period.
    pub emerging_groups: Vec<(usize, f64)>,
    /// Sizes and first-period strengths of the planted disappearing groups.
    pub disappearing_groups: Vec<(usize, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl CoauthorConfig {
    /// Preset sizes for the given scale; the `Full` preset approaches Table II's DBLP
    /// difference graph (22.5k vertices, ~123k signed edges).
    pub fn for_scale(scale: Scale) -> Self {
        let (num_authors, background_edges) = match scale {
            Scale::Tiny => (300, 900),
            Scale::Default => (3_000, 12_000),
            Scale::Full => (22_572, 120_000),
        };
        CoauthorConfig {
            num_authors,
            background_edges,
            gamma: 2.3,
            background_mean_weight: 2.0,
            // Mirror the flavour of Table III: one small very strong ML-style group, one
            // mid-size security-style group (emerging); one robotics-style group and one
            // large consortium-style group (disappearing).
            emerging_groups: vec![(4, 40.0), (7, 8.0)],
            disappearing_groups: vec![(6, 30.0), (22, 6.0)],
            seed: 0xD15C0,
        }
    }

    /// Generates the pair.
    pub fn generate(&self) -> GraphPair {
        assert!(self.num_authors >= 64, "need a reasonably sized author set");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_authors;

        // Planted groups occupy a dedicated id range at the end of the vertex set so they
        // stay disjoint from one another.
        let sizes: Vec<usize> = self
            .emerging_groups
            .iter()
            .chain(self.disappearing_groups.iter())
            .map(|(s, _)| *s)
            .collect();
        let total_planted: usize = sizes.iter().sum();
        assert!(
            total_planted < n / 2,
            "planted groups must fit in the vertex set"
        );
        let planted_start = (n - total_planted) as u32;
        let groups = allocate_groups(planted_start, &sizes);

        let mut b1 = GraphBuilder::new(n);
        let mut b2 = GraphBuilder::new(n);

        // Background collaborations: same topology, independent per-period counts.
        let weights = power_law_weights(planted_start as usize, self.gamma);
        for (u, v) in chung_lu_edges(&weights, self.background_edges, &mut rng) {
            b1.add_edge(
                u,
                v,
                collaboration_weight(&mut rng, self.background_mean_weight),
            );
            b2.add_edge(
                u,
                v,
                collaboration_weight(&mut rng, self.background_mean_weight),
            );
        }

        // Planted groups.
        let mut planted = Vec::new();
        let mut group_iter = groups.into_iter();
        for (idx, &(size, strength)) in self.emerging_groups.iter().enumerate() {
            let vertices = group_iter.next().expect("allocated");
            debug_assert_eq!(vertices.len(), size);
            // Weak (or absent) collaboration in period 1, strong in period 2.
            plant_dense_group(&mut b1, &vertices, 1.0, 0.3, &mut rng);
            plant_dense_group(&mut b2, &vertices, strength, 1.0, &mut rng);
            planted.push(PlantedGroup {
                name: format!("emerging-{idx}"),
                vertices,
                kind: GroupKind::Emerging,
            });
        }
        for (idx, &(size, strength)) in self.disappearing_groups.iter().enumerate() {
            let vertices = group_iter.next().expect("allocated");
            debug_assert_eq!(vertices.len(), size);
            plant_dense_group(&mut b1, &vertices, strength, 1.0, &mut rng);
            plant_dense_group(&mut b2, &vertices, 1.0, 0.3, &mut rng);
            planted.push(PlantedGroup {
                name: format!("disappearing-{idx}"),
                vertices,
                kind: GroupKind::Disappearing,
            });
        }

        GraphPair {
            g1: b1.build(),
            g2: b2.build(),
            planted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::difference_graph;

    #[test]
    fn generates_consistent_pair() {
        let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
        assert_eq!(pair.g1.num_vertices(), pair.g2.num_vertices());
        assert!(pair.g1.num_edges() > 500);
        assert!(pair.g2.num_edges() > 500);
        assert_eq!(pair.planted.len(), 4);
        // Weights are positive collaboration counts.
        assert!(pair.g1.min_edge_weight().unwrap() >= 1.0 * 0.75);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CoauthorConfig::for_scale(Scale::Tiny).generate();
        let b = CoauthorConfig::for_scale(Scale::Tiny).generate();
        assert_eq!(a.g1, b.g1);
        assert_eq!(a.g2, b.g2);
    }

    #[test]
    fn planted_groups_have_the_right_contrast() {
        let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        for group in &pair.planted {
            let density = gd.average_degree(&group.vertices);
            match group.kind {
                GroupKind::Emerging => assert!(
                    density > 1.0,
                    "{} should be positive in G2-G1, got {density}",
                    group.name
                ),
                GroupKind::Disappearing => assert!(
                    density < -1.0,
                    "{} should be negative in G2-G1, got {density}",
                    group.name
                ),
            }
        }
    }

    #[test]
    fn emerging_group_is_the_densest_contrast_region() {
        // The strongest planted emerging group should dominate any background subset.
        let pair = CoauthorConfig::for_scale(Scale::Tiny).generate();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        let strongest = pair
            .planted
            .iter()
            .filter(|g| g.kind == GroupKind::Emerging)
            .map(|g| gd.average_degree(&g.vertices))
            .fold(f64::NEG_INFINITY, f64::max);
        // Compare against the densities of a few arbitrary background windows.
        for start in (0..200).step_by(40) {
            let window: Vec<u32> = (start..start + 10).collect();
            assert!(gd.average_degree(&window) < strongest);
        }
    }

    #[test]
    #[should_panic(expected = "reasonably sized")]
    fn rejects_tiny_author_sets() {
        let mut cfg = CoauthorConfig::for_scale(Scale::Tiny);
        cfg.num_authors = 10;
        cfg.generate();
    }
}

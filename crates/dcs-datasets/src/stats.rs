//! Difference-graph statistics (the rows of Table II).

use dcs_graph::{SignedGraph, Weight};

/// The statistics the paper reports per difference graph in Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffStats {
    /// Number of vertices `n`.
    pub n: usize,
    /// Number of edges with positive weight `m+`.
    pub m_plus: usize,
    /// Number of edges with negative weight `m−`.
    pub m_minus: usize,
    /// Maximum edge weight.
    pub max_weight: Weight,
    /// Minimum edge weight.
    pub min_weight: Weight,
    /// Average edge weight.
    pub average_weight: Weight,
}

impl DiffStats {
    /// Computes the statistics of a difference graph.
    pub fn compute(gd: &SignedGraph) -> Self {
        DiffStats {
            n: gd.num_vertices(),
            m_plus: gd.num_positive_edges(),
            m_minus: gd.num_negative_edges(),
            max_weight: gd.max_edge_weight().unwrap_or(0.0),
            min_weight: gd.min_edge_weight().unwrap_or(0.0),
            average_weight: gd.average_edge_weight(),
        }
    }

    /// The density measure `m+/n` used on the x-axis of Fig. 2.
    pub fn positive_density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m_plus as f64 / self.n as f64
        }
    }

    /// Formats the statistics as a table row
    /// (`n  m+  m−  max w  min w  average w`).
    pub fn as_row(&self) -> String {
        format!(
            "{:>9} {:>10} {:>10} {:>10.3} {:>10.3} {:>10.4}",
            self.n,
            self.m_plus,
            self.m_minus,
            self.max_weight,
            self.min_weight,
            self.average_weight
        )
    }
}

impl std::fmt::Display for DiffStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_row())
    }
}

impl serde_json::Serialize for DiffStats {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::json!({
            "n": self.n,
            "m_plus": self.m_plus,
            "m_minus": self.m_minus,
            "max_weight": self.max_weight,
            "min_weight": self.min_weight,
            "average_weight": self.average_weight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    #[test]
    fn computes_table2_style_row() {
        let gd = GraphBuilder::from_edges(
            5,
            vec![(0, 1, 2.0), (1, 2, -4.0), (2, 3, 1.0), (3, 4, -1.0)],
        );
        let stats = DiffStats::compute(&gd);
        assert_eq!(stats.n, 5);
        assert_eq!(stats.m_plus, 2);
        assert_eq!(stats.m_minus, 2);
        assert_eq!(stats.max_weight, 2.0);
        assert_eq!(stats.min_weight, -4.0);
        assert!((stats.average_weight - (-0.5)).abs() < 1e-12);
        assert!((stats.positive_density() - 0.4).abs() < 1e-12);
        let row = stats.as_row();
        assert!(row.contains('5'));
        assert!(format!("{stats}").contains("-4"));
    }

    #[test]
    fn empty_graph_stats() {
        let stats = DiffStats::compute(&SignedGraph::empty(3));
        assert_eq!(stats.m_plus, 0);
        assert_eq!(stats.max_weight, 0.0);
        assert_eq!(stats.positive_density(), 0.0);
    }
}

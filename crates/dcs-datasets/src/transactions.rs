//! Synthetic transaction-network pairs: expected vs. observed money flow between
//! accounts.
//!
//! The second anomaly-detection application in the paper's introduction is uncovering
//! "money launderer dark networks": `G1` holds the *expected* pairwise transaction volume
//! between accounts (estimated from history), `G2` the volume observed in the current
//! period, and the DCS of `G2 − G1` is a group of accounts that suddenly transacts far
//! more among itself than it used to.  The generator reproduces that setup with
//!
//! * a heavy-tailed background of legitimate transactions whose per-period volumes
//!   fluctuate only mildly,
//! * planted **dark networks** — rings of accounts with little or no historical mutual
//!   activity that start transacting densely (near-clique) in the observed period, and
//! * planted **dissolved rings** — groups that were active historically and went quiet,
//!   the disappearing counterpart used when mining `G1 − G2`.
//!
//! Dark networks are clique-like, so both density measures recover them; this is the
//! dataset used by the `dark_network` example.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcs_graph::GraphBuilder;

use crate::planted::{allocate_groups, plant_dense_group};
use crate::random::{chung_lu_edges, power_law_weights};
use crate::{GraphPair, GroupKind, PlantedGroup, Scale};

/// Configuration of the transaction pair generator.
#[derive(Debug, Clone)]
pub struct TransactionConfig {
    /// Number of accounts.
    pub num_accounts: usize,
    /// Number of background (legitimate) transaction relationships.
    pub background_edges: usize,
    /// Power-law exponent of account activity.
    pub gamma: f64,
    /// Mean historical transaction volume per background relationship.
    pub background_mean_volume: f64,
    /// Relative period-to-period fluctuation of legitimate volumes (e.g. `0.2` = ±20%).
    pub background_fluctuation: f64,
    /// Sizes and observed within-group volumes of the planted dark networks (emerging).
    pub dark_networks: Vec<(usize, f64)>,
    /// Sizes and historical within-group volumes of the planted dissolved rings
    /// (disappearing).
    pub dissolved_rings: Vec<(usize, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl TransactionConfig {
    /// Preset sizes for the given scale.
    pub fn for_scale(scale: Scale) -> Self {
        let (num_accounts, background_edges) = match scale {
            Scale::Tiny => (400, 1_600),
            Scale::Default => (8_000, 40_000),
            Scale::Full => (100_000, 600_000),
        };
        TransactionConfig {
            num_accounts,
            background_edges,
            gamma: 2.1,
            background_mean_volume: 50.0,
            background_fluctuation: 0.2,
            // One tight laundering ring, one larger looser network; one dissolved ring.
            dark_networks: vec![(5, 400.0), (9, 120.0)],
            dissolved_rings: vec![(6, 250.0)],
            seed: 0xDA2C,
        }
    }

    /// Generates the pair.
    pub fn generate(&self) -> GraphPair {
        assert!(
            self.num_accounts >= 64,
            "need a reasonably sized account set"
        );
        assert!(
            (0.0..1.0).contains(&self.background_fluctuation),
            "fluctuation must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_accounts;

        let sizes: Vec<usize> = self
            .dark_networks
            .iter()
            .chain(self.dissolved_rings.iter())
            .map(|(s, _)| *s)
            .collect();
        let total_planted: usize = sizes.iter().sum();
        assert!(
            total_planted < n / 2,
            "planted groups must fit in the account set"
        );
        let planted_start = (n - total_planted) as u32;
        let groups = allocate_groups(planted_start, &sizes);

        let mut b1 = GraphBuilder::new(n);
        let mut b2 = GraphBuilder::new(n);

        // Legitimate background: identical relationships, volumes fluctuate mildly.
        let weights = power_law_weights(planted_start as usize, self.gamma);
        for (u, v) in chung_lu_edges(&weights, self.background_edges, &mut rng) {
            let base = self.background_mean_volume * (0.2 + 1.6 * rng.gen::<f64>());
            let fluctuate = |rng: &mut StdRng| {
                1.0 + self.background_fluctuation * (2.0 * rng.gen::<f64>() - 1.0)
            };
            b1.add_edge(u, v, base * fluctuate(&mut rng));
            b2.add_edge(u, v, base * fluctuate(&mut rng));
        }

        let mut planted = Vec::new();
        let mut group_iter = groups.into_iter();
        for (idx, &(size, volume)) in self.dark_networks.iter().enumerate() {
            let vertices = group_iter.next().expect("allocated");
            debug_assert_eq!(vertices.len(), size);
            // Dark networks keep a thin legitimate footprint in G1 (they do not appear
            // out of nowhere) and transact heavily in G2.
            plant_dense_group(
                &mut b1,
                &vertices,
                self.background_mean_volume * 0.1,
                0.3,
                &mut rng,
            );
            plant_dense_group(&mut b2, &vertices, volume, 0.95, &mut rng);
            planted.push(PlantedGroup {
                name: format!("dark-network-{idx}"),
                vertices,
                kind: GroupKind::Emerging,
            });
        }
        for (idx, &(size, volume)) in self.dissolved_rings.iter().enumerate() {
            let vertices = group_iter.next().expect("allocated");
            debug_assert_eq!(vertices.len(), size);
            plant_dense_group(&mut b1, &vertices, volume, 0.95, &mut rng);
            plant_dense_group(
                &mut b2,
                &vertices,
                self.background_mean_volume * 0.1,
                0.3,
                &mut rng,
            );
            planted.push(PlantedGroup {
                name: format!("dissolved-ring-{idx}"),
                vertices,
                kind: GroupKind::Disappearing,
            });
        }

        GraphPair {
            g1: b1.build(),
            g2: b2.build(),
            planted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::jaccard;
    use dcs_core::dcsga::NewSea;
    use dcs_core::difference_graph;

    #[test]
    fn generates_consistent_and_deterministic_pairs() {
        let config = TransactionConfig::for_scale(Scale::Tiny);
        let pair = config.generate();
        assert_eq!(pair.g1.num_vertices(), config.num_accounts);
        assert_eq!(pair.g2.num_vertices(), config.num_accounts);
        assert!(pair.g1.num_edges() > config.background_edges / 2);
        assert_eq!(pair.planted.len(), 3);
        assert!(pair.g1.min_edge_weight().unwrap() > 0.0);

        let again = config.generate();
        assert_eq!(pair.g1, again.g1);
        assert_eq!(pair.g2, again.g2);
    }

    #[test]
    fn planted_groups_have_the_expected_contrast_sign() {
        let pair = TransactionConfig::for_scale(Scale::Tiny).generate();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        for group in &pair.planted {
            let density = gd.average_degree(&group.vertices);
            match group.kind {
                GroupKind::Emerging => {
                    assert!(density > 50.0, "{}: {density}", group.name)
                }
                GroupKind::Disappearing => {
                    assert!(density < -50.0, "{}: {density}", group.name)
                }
            }
        }
    }

    #[test]
    fn affinity_dcs_exposes_the_tight_dark_network() {
        let pair = TransactionConfig::for_scale(Scale::Tiny).generate();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        let solution = NewSea::default().solve(&gd);
        let support = solution.support();
        // The mined positive clique lies inside one of the planted dark networks.
        let emerging = pair.planted_of_kind(GroupKind::Emerging);
        assert!(
            emerging
                .iter()
                .any(|group| support.iter().all(|v| group.vertices.contains(v))),
            "support {support:?} should be inside a dark network"
        );
        assert!(support.len() >= 3);
        assert!(gd.is_positive_clique(&support));
    }

    #[test]
    fn disappearing_direction_recovers_the_dissolved_ring() {
        let pair = TransactionConfig::for_scale(Scale::Tiny).generate();
        let gd = difference_graph(&pair.g1, &pair.g2).unwrap();
        let solution = NewSea::default().solve(&gd);
        let dissolved = pair
            .planted
            .iter()
            .find(|g| g.kind == GroupKind::Disappearing)
            .unwrap();
        assert!(
            jaccard(&solution.support(), &dissolved.vertices) > 0.4,
            "support {:?} vs ring {:?}",
            solution.support(),
            dissolved.vertices
        );
    }

    #[test]
    #[should_panic(expected = "reasonably sized")]
    fn rejects_tiny_account_sets() {
        let mut config = TransactionConfig::for_scale(Scale::Tiny);
        config.num_accounts = 16;
        config.generate();
    }

    #[test]
    #[should_panic(expected = "fluctuation")]
    fn rejects_out_of_range_fluctuation() {
        let mut config = TransactionConfig::for_scale(Scale::Tiny);
        config.background_fluctuation = 1.5;
        config.generate();
    }
}

//! Random-graph building blocks: Chung–Lu power-law backgrounds and weight samplers.
//!
//! The paper's datasets are collaboration / interaction networks with heavy-tailed degree
//! distributions and skewed weight distributions ("number of joint papers", "number of
//! reverts", …).  The generators in this crate use the classic Chung–Lu model for the
//! background topology: vertex `i` gets an expected-degree weight `θ_i ∝ (i + i₀)^{-α}`
//! and edges are sampled by picking endpoints proportionally to `θ`.

use rand::Rng;
use rand_distr::{Distribution, Geometric, Poisson, Zipf};
use rustc_hash::FxHashSet;

use dcs_graph::VertexId;

/// Expected-degree weights of a power-law (Zipf-like) degree sequence with exponent
/// `gamma` (typical social networks: 2.0–3.0).  Larger `gamma` ⇒ lighter tail.
pub fn power_law_weights(n: usize, gamma: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one vertex");
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let alpha = 1.0 / (gamma - 1.0);
    let offset = 1.0;
    (0..n).map(|i| (i as f64 + offset).powf(-alpha)).collect()
}

/// Samples approximately `m_target` distinct undirected edges of a Chung–Lu graph with
/// the given expected-degree weights.  Self-loops and duplicates are rejected; the
/// routine gives up after `8·m_target` attempts so it always terminates (the attained
/// edge count is returned implicitly by the vector length).
pub fn chung_lu_edges<R: Rng>(
    weights: &[f64],
    m_target: usize,
    rng: &mut R,
) -> Vec<(VertexId, VertexId)> {
    let mut out = Vec::with_capacity(m_target);
    chung_lu_stream(weights, m_target, rng, |u, v| out.push((u, v)));
    out
}

/// Streaming form of [`chung_lu_edges`]: calls `sink` once per accepted edge
/// instead of collecting a vector, and returns the number of edges emitted.
///
/// Draws from `rng` and the emission order are identical to
/// [`chung_lu_edges`], so replaying the same seeded rng through either entry
/// point produces the same edge sequence — which is what lets the streaming
/// pack generator in [`crate::large`] reproduce `generate()`'s graphs without
/// materialising an edge list.  The internal dedup set is sampling state
/// (Chung–Lu without replacement), not an intermediate edge copy.
pub fn chung_lu_stream<R: Rng>(
    weights: &[f64],
    m_target: usize,
    rng: &mut R,
    mut sink: impl FnMut(VertexId, VertexId),
) -> usize {
    let n = weights.len();
    assert!(n >= 2, "need at least two vertices");
    // Cumulative distribution for endpoint sampling.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in weights {
        acc += w;
        cumulative.push(acc);
    }
    let total = acc;
    let sample_vertex = |rng: &mut R| -> VertexId {
        let target = rng.gen::<f64>() * total;
        cumulative.partition_point(|&c| c < target) as VertexId
    };

    let mut edges: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    let mut emitted = 0usize;
    let max_attempts = m_target.saturating_mul(8).max(64);
    let mut attempts = 0;
    while emitted < m_target && attempts < max_attempts {
        attempts += 1;
        let mut u = sample_vertex(rng);
        let mut v = sample_vertex(rng);
        if u == v {
            continue;
        }
        if u > v {
            std::mem::swap(&mut u, &mut v);
        }
        if u as usize >= n || v as usize >= n {
            continue;
        }
        if edges.insert((u, v)) {
            emitted += 1;
            sink(u, v);
        }
    }
    emitted
}

/// Samples a collaboration-count style weight: `1 + Geometric(p)` (mean `1/p`), the
/// typical distribution of "number of papers written together".
pub fn collaboration_weight<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    let mean = mean.max(1.0);
    let p = (1.0 / mean).clamp(1e-6, 1.0);
    let g = Geometric::new(p).expect("valid geometric parameter");
    1.0 + g.sample(rng) as f64
}

/// Samples a Poisson-distributed count with the given mean, clamped to at least zero.
pub fn poisson_count<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let p = Poisson::new(mean).expect("valid poisson parameter");
    p.sample(rng)
}

/// Samples a Zipf-distributed rank in `1..=n` with the given exponent (used to pick
/// "popular" keywords in the title generator).
pub fn zipf_rank<R: Rng>(rng: &mut R, n: usize, exponent: f64) -> usize {
    let z = Zipf::new(n as u64, exponent).expect("valid zipf parameters");
    z.sample(rng) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn power_law_weights_decrease() {
        let w = power_law_weights(100, 2.5);
        assert_eq!(w.len(), 100);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        assert!(w[0] <= 1.0 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn power_law_rejects_bad_gamma() {
        power_law_weights(10, 1.0);
    }

    #[test]
    fn chung_lu_produces_requested_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = power_law_weights(500, 2.2);
        let edges = chung_lu_edges(&w, 1500, &mut rng);
        assert!(edges.len() >= 1200, "got {} edges", edges.len());
        // No self loops, no duplicates, canonical orientation.
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert!(u < v);
            assert!(seen.insert((u, v)));
            assert!((v as usize) < 500);
        }
    }

    #[test]
    fn chung_lu_is_deterministic_per_seed() {
        let w = power_law_weights(200, 2.5);
        let a = chung_lu_edges(&w, 400, &mut StdRng::seed_from_u64(1));
        let b = chung_lu_edges(&w, 400, &mut StdRng::seed_from_u64(1));
        let c = chung_lu_edges(&w, 400, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn low_ids_have_higher_degree() {
        // Power-law weights are decreasing in the vertex id, so low ids should appear in
        // more edges.
        let mut rng = StdRng::seed_from_u64(11);
        let w = power_law_weights(300, 2.0);
        let edges = chung_lu_edges(&w, 2000, &mut rng);
        let mut degree = vec![0usize; 300];
        for (u, v) in edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let head: usize = degree[..30].iter().sum();
        let tail: usize = degree[270..].iter().sum();
        assert!(head > tail * 3, "head {head} vs tail {tail}");
    }

    #[test]
    fn weight_samplers_are_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            assert!(collaboration_weight(&mut rng, 2.5) >= 1.0);
            assert!(poisson_count(&mut rng, 1.5) >= 0.0);
            let r = zipf_rank(&mut rng, 50, 1.2);
            assert!((1..=50).contains(&r));
        }
        assert_eq!(poisson_count(&mut rng, 0.0), 0.0);
    }
}

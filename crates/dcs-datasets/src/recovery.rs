//! Recovery metrics: how well a mined subgraph matches the planted ground truth.
//!
//! The paper validates effectiveness qualitatively (the mined author groups/topics "make
//! sense").  With planted ground truth we can quantify the same claim: the Jaccard
//! similarity between the mined vertex set and its best-matching planted group.

use dcs_graph::VertexId;

use crate::PlantedGroup;

/// Jaccard similarity of two vertex sets.
pub fn jaccard(a: &[VertexId], b: &[VertexId]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::BTreeSet<_> = a.iter().copied().collect();
    let sb: std::collections::BTreeSet<_> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// The result of matching a mined subgraph against the planted groups.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Name of the best-matching planted group (empty if there is none).
    pub best_group: String,
    /// Jaccard similarity with that group.
    pub jaccard: f64,
    /// Precision: fraction of mined vertices that belong to the best-matching group.
    pub precision: f64,
    /// Recall: fraction of the best-matching group that was mined.
    pub recall: f64,
}

/// Matches a mined vertex set against a collection of planted groups and reports the
/// best match by Jaccard similarity.
pub fn best_match(found: &[VertexId], planted: &[&PlantedGroup]) -> RecoveryReport {
    let mut best = RecoveryReport {
        best_group: String::new(),
        jaccard: 0.0,
        precision: 0.0,
        recall: 0.0,
    };
    let found_set: std::collections::BTreeSet<_> = found.iter().copied().collect();
    for group in planted {
        let j = jaccard(found, &group.vertices);
        if j > best.jaccard || best.best_group.is_empty() {
            let group_set: std::collections::BTreeSet<_> = group.vertices.iter().copied().collect();
            let inter = found_set.intersection(&group_set).count();
            best = RecoveryReport {
                best_group: group.name.clone(),
                jaccard: j,
                precision: if found.is_empty() {
                    0.0
                } else {
                    inter as f64 / found.len() as f64
                },
                recall: if group.vertices.is_empty() {
                    0.0
                } else {
                    inter as f64 / group.vertices.len() as f64
                },
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupKind;

    fn group(name: &str, vertices: Vec<VertexId>) -> PlantedGroup {
        PlantedGroup {
            name: name.into(),
            vertices,
            kind: GroupKind::Emerging,
        }
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(jaccard(&[1, 2], &[3, 4]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&[1], &[]), 0.0);
    }

    #[test]
    fn best_match_picks_the_right_group() {
        let g1 = group("alpha", vec![0, 1, 2, 3]);
        let g2 = group("beta", vec![10, 11, 12]);
        let report = best_match(&[1, 2, 3, 10], &[&g1, &g2]);
        assert_eq!(report.best_group, "alpha");
        assert!((report.jaccard - 3.0 / 5.0).abs() < 1e-12);
        assert!((report.precision - 0.75).abs() < 1e-12);
        assert!((report.recall - 0.75).abs() < 1e-12);
    }

    #[test]
    fn perfect_recovery() {
        let g = group("alpha", vec![5, 6, 7]);
        let report = best_match(&[5, 6, 7], &[&g]);
        assert_eq!(report.jaccard, 1.0);
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.recall, 1.0);
    }

    #[test]
    fn no_planted_groups() {
        let report = best_match(&[1, 2], &[]);
        assert!(report.best_group.is_empty());
        assert_eq!(report.jaccard, 0.0);
    }
}

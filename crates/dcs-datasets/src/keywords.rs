//! Synthetic keyword-association graph pairs (the data-mining-topics experiment,
//! Section VI-C).
//!
//! Following Angel et al. (the paper's reference \[1\]) the paper builds a keyword
//! association graph per time period: vertices are title keywords and the weight of an
//! edge is `100 ×` the fraction of titles containing both keywords.  Emerging topics are
//! keyword sets that co-occur much more frequently in the recent period.
//!
//! The generator simulates paper titles directly: each title draws a topic according to
//! per-period popularity and pads it with Zipf-distributed background words, then the two
//! co-occurrence graphs are assembled exactly like the paper describes.  Topics popular
//! only in the recent period are the planted *emerging* ground truth (e.g. "social
//! networks"), topics popular only in the early period are *disappearing* ("association
//! rules"), and topics popular in both periods ("time series") are planted as distractors
//! to demonstrate why single-graph mining fails — they dominate both graphs but not the
//! difference graph.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rustc_hash::FxHashMap;

use dcs_graph::{GraphBuilder, SignedGraph, VertexId};

use crate::random::zipf_rank;
use crate::{GraphPair, GroupKind, PlantedGroup, Scale};

/// One synthetic topic: a set of keywords plus its popularity in each period.
#[derive(Debug, Clone)]
pub struct TopicSpec {
    /// Human-readable name.
    pub name: String,
    /// The topic's keyword ids.
    pub keywords: Vec<VertexId>,
    /// Probability that a period-1 title is about this topic.
    pub popularity_g1: f64,
    /// Probability that a period-2 title is about this topic.
    pub popularity_g2: f64,
}

/// Configuration of the keyword-association pair generator.
#[derive(Debug, Clone)]
pub struct KeywordConfig {
    /// Vocabulary size (number of keyword vertices).
    pub vocabulary: usize,
    /// Number of titles simulated per period.
    pub titles_per_period: usize,
    /// Number of background (non-topic) words added to every title.
    pub background_words_per_title: usize,
    /// Zipf exponent of background word popularity.
    pub zipf_exponent: f64,
    /// The planted topics.
    pub topics: Vec<TopicSpec>,
    /// RNG seed.
    pub seed: u64,
}

impl KeywordConfig {
    /// Preset configuration for the given scale, with topic structure mirroring
    /// Tables V/VI (emerging: "social networks", "matrix factorization", …;
    /// disappearing: "association rules", "support vector machines"; stable distractors:
    /// "time series", "feature selection").
    pub fn for_scale(scale: Scale) -> Self {
        let (vocabulary, titles) = match scale {
            Scale::Tiny => (400, 1_500),
            Scale::Default => (3_000, 8_000),
            Scale::Full => (9_890, 40_000),
        };
        // Reserve the last ids of the vocabulary for topic keywords so they do not clash
        // with frequent background words (low ids are the most popular under Zipf).
        let mut next_kw = (vocabulary as VertexId) - 40;
        let mut take = |k: usize| -> Vec<VertexId> {
            let v: Vec<VertexId> = (next_kw..next_kw + k as VertexId).collect();
            next_kw += k as VertexId;
            v
        };
        let topics = vec![
            TopicSpec {
                name: "social networks".into(),
                keywords: take(2),
                popularity_g1: 0.005,
                popularity_g2: 0.09,
            },
            TopicSpec {
                name: "matrix factorization".into(),
                keywords: take(2),
                popularity_g1: 0.004,
                popularity_g2: 0.05,
            },
            TopicSpec {
                name: "unsupervised feature selection".into(),
                keywords: take(3),
                popularity_g1: 0.002,
                popularity_g2: 0.03,
            },
            TopicSpec {
                name: "association rules".into(),
                keywords: take(3),
                popularity_g1: 0.09,
                popularity_g2: 0.006,
            },
            TopicSpec {
                name: "support vector machines".into(),
                keywords: take(3),
                popularity_g1: 0.05,
                popularity_g2: 0.005,
            },
            TopicSpec {
                name: "time series".into(),
                keywords: take(2),
                popularity_g1: 0.08,
                popularity_g2: 0.07,
            },
            TopicSpec {
                name: "feature selection".into(),
                keywords: take(2),
                popularity_g1: 0.05,
                popularity_g2: 0.05,
            },
        ];
        KeywordConfig {
            vocabulary,
            titles_per_period: titles,
            background_words_per_title: 6,
            zipf_exponent: 1.1,
            topics,
            seed: 0xBEEF,
        }
    }

    /// Generates the keyword-association graph pair.
    pub fn generate(&self) -> GraphPair {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let g1 = self.generate_period(&mut rng, |t| t.popularity_g1);
        let g2 = self.generate_period(&mut rng, |t| t.popularity_g2);

        let mut planted = Vec::new();
        for topic in &self.topics {
            let kind = if topic.popularity_g2 > 2.0 * topic.popularity_g1 {
                Some(GroupKind::Emerging)
            } else if topic.popularity_g1 > 2.0 * topic.popularity_g2 {
                Some(GroupKind::Disappearing)
            } else {
                None // stable distractor topics are not ground truth for DCS
            };
            if let Some(kind) = kind {
                planted.push(PlantedGroup {
                    name: topic.name.clone(),
                    vertices: topic.keywords.clone(),
                    kind,
                });
            }
        }
        GraphPair { g1, g2, planted }
    }

    /// Simulates one period's titles and builds its co-occurrence graph.
    fn generate_period<F: Fn(&TopicSpec) -> f64>(
        &self,
        rng: &mut StdRng,
        popularity: F,
    ) -> SignedGraph {
        let mut pair_counts: FxHashMap<(VertexId, VertexId), u32> = FxHashMap::default();
        let mut title_words: Vec<VertexId> = Vec::new();
        for _ in 0..self.titles_per_period {
            title_words.clear();
            // Topic keywords.
            for topic in &self.topics {
                if rng.gen::<f64>() < popularity(topic) {
                    title_words.extend_from_slice(&topic.keywords);
                }
            }
            // Background words (Zipf ranks map to low keyword ids = frequent words).
            for _ in 0..self.background_words_per_title {
                let w = (zipf_rank(rng, self.vocabulary, self.zipf_exponent) - 1) as VertexId;
                title_words.push(w);
            }
            title_words.sort_unstable();
            title_words.dedup();
            for i in 0..title_words.len() {
                for j in (i + 1)..title_words.len() {
                    *pair_counts
                        .entry((title_words[i], title_words[j]))
                        .or_insert(0) += 1;
                }
            }
        }
        let mut builder = GraphBuilder::new(self.vocabulary);
        let scale = 100.0 / self.titles_per_period as f64;
        for ((u, v), count) in pair_counts {
            builder.add_edge(u, v, count as f64 * scale);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::difference_graph;

    #[test]
    fn generates_two_graphs_over_the_vocabulary() {
        let pair = KeywordConfig::for_scale(Scale::Tiny).generate();
        assert_eq!(pair.g1.num_vertices(), 400);
        assert_eq!(pair.g2.num_vertices(), 400);
        assert!(pair.g1.num_edges() > 500);
        assert!(pair.g2.num_edges() > 500);
        // Ground truth contains emerging and disappearing topics but not the stable ones.
        assert!(pair.planted.iter().any(|g| g.kind == GroupKind::Emerging));
        assert!(pair
            .planted
            .iter()
            .any(|g| g.kind == GroupKind::Disappearing));
        assert!(pair.planted.iter().all(|g| g.name != "time series"));
    }

    #[test]
    fn emerging_topic_is_dense_in_difference_graph() {
        let cfg = KeywordConfig::for_scale(Scale::Tiny);
        let pair = cfg.generate();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        let social = pair
            .planted
            .iter()
            .find(|g| g.name == "social networks")
            .unwrap();
        let rules = pair
            .planted
            .iter()
            .find(|g| g.name == "association rules")
            .unwrap();
        assert!(gd.average_degree(&social.vertices) > 1.0);
        assert!(gd.average_degree(&rules.vertices) < -1.0);
    }

    #[test]
    fn stable_topics_dominate_single_period_graphs_but_not_the_difference() {
        let cfg = KeywordConfig::for_scale(Scale::Tiny);
        let pair = cfg.generate();
        let time_series = cfg
            .topics
            .iter()
            .find(|t| t.name == "time series")
            .unwrap()
            .keywords
            .clone();
        let social = cfg
            .topics
            .iter()
            .find(|t| t.name == "social networks")
            .unwrap()
            .keywords
            .clone();
        // In G2 alone the stable topic is still (roughly) comparable to the emerging one…
        let g2_ts = pair.g2.average_degree(&time_series);
        assert!(g2_ts > 1.0);
        // …but in the difference graph the emerging topic clearly wins.
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        assert!(gd.average_degree(&social) > gd.average_degree(&time_series) + 1.0);
    }

    #[test]
    fn weights_are_percentages() {
        let pair = KeywordConfig::for_scale(Scale::Tiny).generate();
        // Edge weights are 100 * fraction of titles, hence within (0, 100].
        for (_, _, w) in pair.g1.edges() {
            assert!(w > 0.0 && w <= 100.0);
        }
    }
}

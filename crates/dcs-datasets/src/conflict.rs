//! Synthetic editor-interaction graph pairs (the Wikipedia experiment, Appendix B-1).
//!
//! The wikiconflict dataset consists of two weighted networks over the same editors: a
//! positive-interaction graph `G1` and a negative-interaction graph `G2` (reverts,
//! edit wars).  Mining the *Consistent* difference graph `G1 − G2` finds groups of
//! editors that cooperate far more than they fight; the *Conflicting* graph `G2 − G1`
//! finds the opposite.
//!
//! The generator plants a cooperative group (dense and heavy in `G1`, almost absent from
//! `G2`) and a conflicting group (dense in `G2`), on top of heavy-tailed backgrounds in
//! which positive and negative interactions are weakly correlated — matching the paper's
//! observation that the mined DCSAD groups on this data are large and are *not* positive
//! cliques.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcs_graph::GraphBuilder;

use crate::planted::{allocate_groups, plant_dense_group};
use crate::random::{chung_lu_edges, power_law_weights};
use crate::{GraphPair, GroupKind, PlantedGroup, Scale};

/// Configuration of the editor-interaction pair generator.
#[derive(Debug, Clone)]
pub struct ConflictConfig {
    /// Number of editors.
    pub num_editors: usize,
    /// Number of background interaction edges (each may carry positive and/or negative
    /// interaction weight).
    pub background_edges: usize,
    /// Power-law exponent of editor activity.
    pub gamma: f64,
    /// Mean positive-interaction weight on background edges.
    pub mean_positive: f64,
    /// Mean negative-interaction weight on background edges.
    pub mean_negative: f64,
    /// Size and strength of the planted consistent (cooperative) group.
    pub consistent_group: (usize, f64),
    /// Size and strength of the planted conflicting group.
    pub conflicting_group: (usize, f64),
    /// RNG seed.
    pub seed: u64,
}

impl ConflictConfig {
    /// Preset for a scale (the `Full` preset approaches the wikiconflict statistics of
    /// Table II: 116k editors, ~2M signed edges).
    pub fn for_scale(scale: Scale) -> Self {
        let (num_editors, background_edges) = match scale {
            Scale::Tiny => (400, 2_000),
            Scale::Default => (6_000, 40_000),
            Scale::Full => (116_836, 1_800_000),
        };
        ConflictConfig {
            num_editors,
            background_edges,
            gamma: 2.1,
            mean_positive: 2.5,
            mean_negative: 3.5,
            consistent_group: (30, 12.0),
            conflicting_group: (24, 14.0),
            seed: 0x51C4,
        }
    }

    /// Generates the pair: `g1` = positive interactions, `g2` = negative interactions.
    pub fn generate(&self) -> GraphPair {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.num_editors;
        let planted_total = self.consistent_group.0 + self.conflicting_group.0;
        assert!(planted_total < n / 2, "planted groups must fit");
        let planted_start = (n - planted_total) as u32;
        let groups = allocate_groups(
            planted_start,
            &[self.consistent_group.0, self.conflicting_group.0],
        );

        let mut b_pos = GraphBuilder::new(n);
        let mut b_neg = GraphBuilder::new(n);

        // Background: editors that interact do so with both signs, with independent
        // exponential-ish weights.
        let weights = power_law_weights(planted_start as usize, self.gamma);
        for (u, v) in chung_lu_edges(&weights, self.background_edges, &mut rng) {
            let pos = -(1.0 - rng.gen::<f64>()).ln() * self.mean_positive;
            let neg = -(1.0 - rng.gen::<f64>()).ln() * self.mean_negative;
            if pos > 0.05 {
                b_pos.add_edge(u, v, pos);
            }
            if neg > 0.05 && rng.gen::<f64>() < 0.8 {
                b_neg.add_edge(u, v, neg);
            }
        }

        // Planted consistent group: heavy cooperation, little conflict.
        let consistent = groups[0].clone();
        plant_dense_group(
            &mut b_pos,
            &consistent,
            self.consistent_group.1,
            0.9,
            &mut rng,
        );
        plant_dense_group(&mut b_neg, &consistent, 0.5, 0.15, &mut rng);
        // Planted conflicting group: heavy conflict, little cooperation.
        let conflicting = groups[1].clone();
        plant_dense_group(
            &mut b_neg,
            &conflicting,
            self.conflicting_group.1,
            0.9,
            &mut rng,
        );
        plant_dense_group(&mut b_pos, &conflicting, 0.5, 0.15, &mut rng);

        GraphPair {
            g1: b_pos.build(),
            g2: b_neg.build(),
            planted: vec![
                PlantedGroup {
                    name: "consistent".into(),
                    vertices: consistent,
                    // Dense in G1 (positive interactions): mined from G1 − G2, i.e. it is
                    // the "disappearing"-direction group of the standard G2 − G1 graph.
                    kind: GroupKind::Disappearing,
                },
                PlantedGroup {
                    name: "conflicting".into(),
                    vertices: conflicting,
                    kind: GroupKind::Emerging,
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_core::difference_graph;

    #[test]
    fn generates_signed_contrast() {
        let pair = ConflictConfig::for_scale(Scale::Tiny).generate();
        // Consistent GD = G1 − G2 must make the cooperative group strongly positive.
        let consistent_gd = difference_graph(&pair.g1, &pair.g2).unwrap();
        let conflicting_gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        let coop = &pair.planted[0];
        let fight = &pair.planted[1];
        assert!(consistent_gd.average_degree(&coop.vertices) > 3.0);
        assert!(conflicting_gd.average_degree(&fight.vertices) > 3.0);
        // And each group is a poor answer in the opposite direction.
        assert!(consistent_gd.average_degree(&fight.vertices) < 0.0);
        assert!(conflicting_gd.average_degree(&coop.vertices) < 0.0);
    }

    #[test]
    fn backgrounds_have_both_signs() {
        let pair = ConflictConfig::for_scale(Scale::Tiny).generate();
        let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
        assert!(gd.num_positive_edges() > 100);
        assert!(gd.num_negative_edges() > 100);
    }

    #[test]
    fn deterministic() {
        let a = ConflictConfig::for_scale(Scale::Tiny).generate();
        let b = ConflictConfig::for_scale(Scale::Tiny).generate();
        assert_eq!(a.g1, b.g1);
        assert_eq!(a.g2, b.g2);
    }
}

//! # dcs-datasets
//!
//! Synthetic graph-*pair* generators that stand in for the datasets used in the DCS
//! paper's evaluation (DBLP co-authorships, data-mining paper titles, Wikipedia editor
//! interactions, Douban social/interest graphs, DBLP-C and Actor collaboration
//! networks).  The real datasets are not redistributable with this repository, so every
//! generator produces a pair `(G1, G2)` with
//!
//! 1. a heavy-tailed random background whose size and weight distribution can be dialled
//!    to match the statistics of Table II,
//! 2. **planted contrast groups** — near-cliques whose connection strength is boosted in
//!    exactly one of the two graphs — which provide measurable ground truth for the
//!    effectiveness experiments, and
//! 3. the paper's Weighted/Discrete re-weighting rules (implemented in `dcs-core::diff`).
//!
//! Every generator is deterministic given its seed.
//!
//! | Paper dataset | Generator |
//! |---|---|
//! | DBLP co-author graphs (before/after 2010) | [`coauthor`] |
//! | DM keyword-association graphs (1998–2007 vs 2008–2017) | [`keywords`] |
//! | Wikipedia editor interaction graphs (positive/negative) | [`conflict`] |
//! | Douban social vs Movie/Book interest graphs | [`social_interest`] |
//! | DBLP-C / Actor collaboration graphs | [`collab`] |
//!
//! Two further generators cover the anomaly-detection applications the paper's
//! introduction motivates but does not evaluate on (no such public datasets exist):
//! expected-vs-observed road traffic on a grid network ([`traffic`]) and
//! expected-vs-observed transaction volumes with planted laundering rings
//! ([`transactions`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coauthor;
pub mod collab;
pub mod conflict;
pub mod keywords;
pub mod large;
pub mod pack;
pub mod planted;
pub mod random;
pub mod recovery;
pub mod social_interest;
pub mod stats;
pub mod traffic;
pub mod transactions;

pub use coauthor::CoauthorConfig;
pub use collab::CollabConfig;
pub use conflict::ConflictConfig;
pub use keywords::{KeywordConfig, TopicSpec};
pub use large::LargeConfig;
pub use pack::{PackSummary, PackWriter, StreamingPackWriter};
pub use recovery::{best_match, jaccard, RecoveryReport};
pub use social_interest::SocialInterestConfig;
pub use stats::DiffStats;
pub use traffic::{GridWindow, TrafficConfig};
pub use transactions::TransactionConfig;

use dcs_graph::{SignedGraph, VertexId};

/// Whether a planted group is denser in `G2` (emerging) or in `G1` (disappearing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupKind {
    /// Denser in `G2` than in `G1` — found by mining `G_D = G2 − G1`.
    Emerging,
    /// Denser in `G1` than in `G2` — found by mining `G_D = G1 − G2`.
    Disappearing,
}

/// A planted ground-truth group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlantedGroup {
    /// Human-readable name ("emerging-0", "conflicting", …).
    pub name: String,
    /// The group's vertices, sorted ascending.
    pub vertices: Vec<VertexId>,
    /// Whether the group is emerging or disappearing.
    pub kind: GroupKind,
}

/// A generated pair of graphs over the same vertex set, plus the planted ground truth.
#[derive(Debug, Clone)]
pub struct GraphPair {
    /// The "early"/"expected"/"first" graph (`G1` of the paper).
    pub g1: SignedGraph,
    /// The "recent"/"observed"/"second" graph (`G2` of the paper).
    pub g2: SignedGraph,
    /// Ground-truth planted groups.
    pub planted: Vec<PlantedGroup>,
}

impl GraphPair {
    /// The planted groups of a given kind.
    pub fn planted_of_kind(&self, kind: GroupKind) -> Vec<&PlantedGroup> {
        self.planted.iter().filter(|g| g.kind == kind).collect()
    }
}

/// Scaling presets shared by every generator: the paper's graphs range from ~10k to
/// ~1.3M vertices; the presets shrink them so the full experiment suite runs on a laptop
/// while `Full` approaches the published sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Minimal sizes for unit/integration tests (hundreds of vertices).
    Tiny,
    /// Default experiment scale (thousands of vertices).
    #[default]
    Default,
    /// Paper-scale graphs (tens of thousands to millions of vertices) — slow.
    Full,
}

impl Scale {
    /// Parses a `--scale` command-line value.
    pub fn parse(text: &str) -> Option<Scale> {
        match text.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("DEFAULT"), Some(Scale::Default));
        assert_eq!(Scale::parse("Full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn planted_group_filtering() {
        let pair = GraphPair {
            g1: SignedGraph::empty(3),
            g2: SignedGraph::empty(3),
            planted: vec![
                PlantedGroup {
                    name: "a".into(),
                    vertices: vec![0, 1],
                    kind: GroupKind::Emerging,
                },
                PlantedGroup {
                    name: "b".into(),
                    vertices: vec![2],
                    kind: GroupKind::Disappearing,
                },
            ],
        };
        assert_eq!(pair.planted_of_kind(GroupKind::Emerging).len(), 1);
        assert_eq!(pair.planted_of_kind(GroupKind::Disappearing)[0].name, "b");
    }
}

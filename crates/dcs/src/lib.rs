//! # dcs — Density Contrast Subgraph mining
//!
//! Facade crate of the `density-contrast` workspace: it re-exports the full public API of
//! the underlying crates so applications can depend on a single crate.
//!
//! * [`graph`] — signed weighted graphs, components, cores, IO (`dcs-graph`),
//! * [`densest`] — classical densest-subgraph machinery (`dcs-densest`),
//! * [`core`] — the DCS algorithms: difference graphs, DCSGreedy, SEACD, NewSEA
//!   (`dcs-core`),
//! * [`baselines`] — EgoScan substitute and exact reference solvers (`dcs-baselines`),
//! * [`datasets`] — synthetic graph-pair generators and recovery metrics
//!   (`dcs-datasets`),
//! * [`server`] — the long-running contrast-mining service: session registry,
//!   worker pool and NDJSON-over-TCP protocol (`dcs-server`).
//!
//! The most common entry points are also re-exported at the crate root.
//!
//! ```
//! use dcs::prelude::*;
//!
//! // Build two graphs over the same vertex set.
//! let g1 = GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (3, 4, 4.0)]);
//! let g2 = GraphBuilder::from_edges(5, vec![(0, 1, 3.0), (1, 2, 3.0), (0, 2, 3.0)]);
//!
//! // Mine the density contrast subgraph under both measures.
//! let gd = difference_graph(&g2, &g1).unwrap();
//! let by_degree = DcsGreedy::default().solve(&gd);
//! let by_affinity = NewSea::default().solve(&gd);
//!
//! assert_eq!(by_degree.subset, vec![0, 1, 2]);
//! assert_eq!(by_affinity.support(), vec![0, 1, 2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dcs_baselines as baselines;
pub use dcs_core as core;
pub use dcs_datasets as datasets;
pub use dcs_densest as densest;
pub use dcs_graph as graph;
pub use dcs_server as server;

/// The most commonly used items of the whole workspace.
pub mod prelude {
    pub use dcs_baselines::{EgoScan, EgoScanConfig};
    pub use dcs_core::dcsad::DcsGreedy;
    pub use dcs_core::dcsga::{NewSea, SeaCd};
    pub use dcs_core::{
        difference_graph, difference_graph_with, mine_affinity_dcs, mine_average_degree_dcs,
        ContrastReport, DcsError, DiscreteRule, Embedding, WeightScheme,
    };
    pub use dcs_core::{
        CancelToken, ContrastSolver, EngineSolution, MeasureSolver, SolveContext, SolveStats,
        Termination,
    };
    pub use dcs_core::{StreamingConfig, StreamingDcs};
    pub use dcs_datasets::{GraphPair, Scale};
    pub use dcs_densest::{densest_subgraph_exact, greedy_peeling};
    pub use dcs_graph::{DeltaGraph, GraphBuilder, SignedGraph, VertexId, Weight};
    pub use dcs_server::{Client as DcsClient, Server as DcsServer, ServerConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        use crate::prelude::*;
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, -1.0)]);
        assert_eq!(g.num_edges(), 2);
        let _ = DcsGreedy::default();
        let _ = NewSea::default();
        let _ = EgoScan::default();
        let _ = ServerConfig::default();
    }
}

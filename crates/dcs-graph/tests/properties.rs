//! Property-based tests for the graph substrate.

use dcs_graph::{connected_components, core_decomposition, DeltaGraph, GraphBuilder, SignedGraph};
use proptest::prelude::*;

/// Strategy: a random edge list over `n <= 24` vertices with signed weights.
fn arb_graph() -> impl Strategy<Value = SignedGraph> {
    (2usize..24).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, -5.0f64..5.0f64);
        (Just(n), proptest::collection::vec(edge, 0..80)).prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                if u != v && w != 0.0 {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        })
    })
}

proptest! {
    /// Adjacency is symmetric: the weight of (u, v) equals the weight of (v, u), and
    /// every stored neighbor relation exists in both directions.
    #[test]
    fn adjacency_is_symmetric(g in arb_graph()) {
        for u in g.vertices() {
            for e in g.neighbors(u) {
                prop_assert_eq!(g.edge_weight(e.neighbor, u), Some(e.weight));
            }
        }
    }

    /// The positive part contains exactly the positive edges and no vertex is lost.
    #[test]
    fn positive_part_keeps_positive_edges(g in arb_graph()) {
        let gp = g.positive_part();
        prop_assert_eq!(gp.num_vertices(), g.num_vertices());
        prop_assert_eq!(gp.num_edges(), g.num_positive_edges());
        prop_assert_eq!(gp.num_negative_edges(), 0);
        for (u, v, w) in g.edges() {
            if w > 0.0 {
                prop_assert_eq!(gp.edge_weight(u, v), Some(w));
            } else {
                prop_assert_eq!(gp.edge_weight(u, v), None);
            }
        }
    }

    /// Negating twice is the identity (up to edge order).
    #[test]
    fn double_negation_is_identity(g in arb_graph()) {
        let gg = g.negated().negated();
        prop_assert_eq!(gg.num_edges(), g.num_edges());
        for (u, v, w) in g.edges() {
            prop_assert_eq!(gg.edge_weight(u, v), Some(w));
        }
    }

    /// The sum of weighted degrees equals twice the total weight.
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let degree_sum: f64 = g.vertices().map(|v| g.weighted_degree(v)).sum();
        prop_assert!((degree_sum - 2.0 * g.total_weight()).abs() < 1e-9);
    }

    /// total_degree over the full vertex set equals the degree sum, and average degree
    /// of the full set equals degree-sum / n.
    #[test]
    fn full_set_metrics(g in arb_graph()) {
        let all: Vec<u32> = g.vertices().collect();
        let w = g.total_degree(&all);
        let degree_sum: f64 = g.vertices().map(|v| g.weighted_degree(v)).sum();
        prop_assert!((w - degree_sum).abs() < 1e-9);
        prop_assert!((g.average_degree(&all) - degree_sum / all.len() as f64).abs() < 1e-9);
    }

    /// Core numbers are upper-bounded by degree and the k-core is non-empty for k <=
    /// degeneracy.
    #[test]
    fn core_numbers_are_sane(g in arb_graph()) {
        let cd = core_decomposition(&g);
        for v in g.vertices() {
            prop_assert!(cd.core[v as usize] as usize <= g.degree(v));
        }
        prop_assert!(!cd.k_core(cd.degeneracy).is_empty() || g.num_vertices() == 0);
        // Within the degeneracy-core, every vertex has induced degree >= degeneracy.
        let kcore = cd.k_core(cd.degeneracy);
        let marks = dcs_graph::VertexSubset::from_slice(g.num_vertices(), &kcore);
        for &v in &kcore {
            let deg_in = g
                .neighbors(v)
                .filter(|e| marks.contains(e.neighbor))
                .count() as u32;
            prop_assert!(deg_in >= cd.degeneracy);
        }
    }

    /// Every connected component is indeed connected and components partition the
    /// vertex set.
    #[test]
    fn components_partition(g in arb_graph()) {
        let cc = connected_components(&g);
        let groups = cc.groups();
        let total: usize = groups.iter().map(|grp| grp.len()).sum();
        prop_assert_eq!(total, g.num_vertices());
        for grp in &groups {
            prop_assert!(dcs_graph::components::is_connected(&g, grp));
        }
        // No edge crosses two components.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(cc.labels[u as usize], cc.labels[v as usize]);
        }
    }

    /// Extracting an induced subgraph preserves induced metrics.
    #[test]
    fn induced_subgraph_preserves_metrics(g in arb_graph(), bits in proptest::collection::vec(any::<bool>(), 24)) {
        let subset: Vec<u32> = g
            .vertices()
            .filter(|&v| bits.get(v as usize).copied().unwrap_or(false))
            .collect();
        let (sub, map) = g.induced_subgraph(&subset);
        let all_new: Vec<u32> = sub.vertices().collect();
        prop_assert_eq!(map.len(), sub.num_vertices());
        prop_assert!((sub.total_degree(&all_new) - g.total_degree(&subset)).abs() < 1e-9);
        prop_assert_eq!(sub.induced_edge_count(&all_new), g.induced_edge_count(&subset));
    }

    /// Edge-list IO round-trips.
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        dcs_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = dcs_graph::io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v, w) in g.edges() {
            let w2 = g2.edge_weight(u, v).unwrap();
            prop_assert!((w - w2).abs() < 1e-9);
        }
    }

    /// A DeltaGraph driven by an arbitrary mutation sequence (absolute sets,
    /// relative adds, removals via zero, repeated touches of the same edge)
    /// always snapshots to exactly the graph a from-scratch build produces —
    /// including across interleaved snapshots, where clean rows are copied
    /// from the previous snapshot instead of rebuilt.
    #[test]
    fn delta_snapshots_equal_scratch_builds(
        n in 2usize..20,
        ops in proptest::collection::vec((0u32..20, 0u32..20, -4.0f64..4.0, any::<bool>(), any::<bool>()), 0..120),
    ) {
        let mut delta = DeltaGraph::new(n);
        let mut reference: std::collections::BTreeMap<(u32, u32), f64> = std::collections::BTreeMap::new();
        for (i, (u, v, w, absolute, snapshot_now)) in ops.into_iter().enumerate() {
            let (u, v) = (u % n as u32, v % n as u32);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            let value = if absolute {
                delta.set_weight(u, v, w);
                w
            } else {
                delta.add_weight(u, v, w)
            };
            if value == 0.0 {
                reference.remove(&key);
            } else {
                reference.insert(key, value);
            }
            // Snapshot mid-sequence on roughly a third of the operations so the
            // incremental (partially-dirty) rebuild path is exercised.
            if snapshot_now || i % 3 == 0 {
                let snap = delta.snapshot();
                let scratch = GraphBuilder::from_edges(
                    n,
                    reference.iter().map(|(&(a, b), &wt)| (a, b, wt)),
                );
                prop_assert_eq!(&*snap, &scratch);
            }
        }
        let snap = delta.snapshot();
        let scratch = GraphBuilder::from_edges(n, reference.iter().map(|(&(a, b), &wt)| (a, b, wt)));
        prop_assert_eq!(&*snap, &scratch);
        prop_assert_eq!(snap.num_edges(), delta.num_edges());
        // An unchanged version returns the cached snapshot, pointer-equal.
        let again = delta.snapshot();
        prop_assert!(std::sync::Arc::ptr_eq(&snap, &again));
    }
}

proptest! {
    /// A masked view is exactly the in-place vertex removal it replaces: same edge
    /// set, same degrees, same metrics — without touching the CSR arrays.
    #[test]
    fn masked_view_equals_in_place_removal(
        g in arb_graph(),
        removal in proptest::collection::vec(0u32..24, 0..12),
    ) {
        use dcs_graph::{GraphView, VertexMask};
        let n = g.num_vertices();
        let removal: Vec<u32> = removal.into_iter().filter(|&v| (v as usize) < n).collect();
        let mut mask = VertexMask::full(n);
        mask.remove_all(&removal);
        let view = GraphView::masked(&g, &mask);
        let mut reference = g.clone();
        reference.remove_vertices_in_place(&removal);
        prop_assert_eq!(view.materialize(), reference.clone());
        prop_assert_eq!(view.edges().count(), reference.num_edges());
        for v in view.vertices() {
            prop_assert_eq!(view.degree(v), reference.degree(v));
            let dv: f64 = view.weighted_degree(v);
            prop_assert!((dv - reference.weighted_degree(v)).abs() < 1e-12);
        }
        // The positive filter composes: view == materialised positive part.
        prop_assert_eq!(
            view.positive_part().materialize(),
            reference.positive_part()
        );
        // Mask bookkeeping is exact.
        let mut unique = removal.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(mask.len(), n - unique.len());
        prop_assert_eq!(mask.iter().count(), mask.len());
    }

    /// View-based core decomposition equals the decomposition of the materialised
    /// view for the alive vertices.
    #[test]
    fn view_cores_match_materialized(
        g in arb_graph(),
        removal in proptest::collection::vec(0u32..24, 0..12),
    ) {
        use dcs_graph::{core_decomposition_view, GraphView, VertexMask};
        let n = g.num_vertices();
        let removal: Vec<u32> = removal.into_iter().filter(|&v| (v as usize) < n).collect();
        let mut mask = VertexMask::full(n);
        mask.remove_all(&removal);
        let view = GraphView::masked(&g, &mask);
        let of_view = core_decomposition_view(view);
        let of_materialized = core_decomposition(&view.materialize());
        for v in view.vertices() {
            prop_assert_eq!(of_view.core[v as usize], of_materialized.core[v as usize]);
        }
        prop_assert_eq!(of_view.degeneracy, of_materialized.degeneracy);
    }
}

//! k-core decomposition (core numbers) of the *unweighted* skeleton of a graph.
//!
//! The NewSEA smart-initialisation bound (Theorem 6 and the discussion that follows it)
//! needs, for every vertex `u`, an upper bound `τ_u + 1` on the size of the largest clique
//! of `G_{D+}` containing `u`, where `τ_u` is the core number of `u`.  Core numbers are
//! computed with the classical O(n + m) bucket peeling algorithm of Batagelj–Zaveršnik.

use crate::{GraphView, SignedGraph, VertexId};

/// Result of a core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` is the core number of vertex `v`: the largest `k` such that `v` belongs
    /// to a subgraph in which every vertex has (unweighted) degree at least `k`.
    pub core: Vec<u32>,
    /// The degeneracy of the graph (the maximum core number; 0 for an edgeless graph).
    pub degeneracy: u32,
    /// Vertices in the order they were peeled (non-decreasing core number); this is a
    /// degeneracy ordering of the graph.
    pub peel_order: Vec<VertexId>,
}

impl CoreDecomposition {
    /// Core number of a single vertex.
    pub fn core_of(&self, v: VertexId) -> u32 {
        self.core[v as usize]
    }

    /// The vertices of the `k`-core (every vertex with core number >= `k`).
    pub fn k_core(&self, k: u32) -> Vec<VertexId> {
        self.core
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

/// Computes core numbers of the unweighted skeleton of `g` (edge weights and signs are
/// ignored; every edge counts as 1).
///
/// Runs in O(n + m) time using bucket sort over degrees.
pub fn core_decomposition(g: &SignedGraph) -> CoreDecomposition {
    let n = g.num_vertices();
    if n == 0 {
        return CoreDecomposition {
            core: Vec::new(),
            degeneracy: 0,
            peel_order: Vec::new(),
        };
    }
    let mut degree: Vec<usize> = (0..n).map(|v| g.degree(v as VertexId)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    // pos[v] = position of v in vert; vert is sorted by current degree.
    let mut vert = vec![0 as VertexId; n];
    let mut pos = vec![0usize; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = cursor[d];
            vert[cursor[d]] = v as VertexId;
            cursor[d] += 1;
        }
    }

    let mut core: Vec<u32> = degree.iter().map(|&d| d as u32).collect();
    let mut peel_order = Vec::with_capacity(n);

    for i in 0..n {
        let v = vert[i];
        peel_order.push(v);
        core[v as usize] = degree[v as usize] as u32;
        for e in g.neighbors(v) {
            let u = e.neighbor as usize;
            if degree[u] > degree[v as usize] {
                // Move u one bucket down: swap it with the first vertex of its bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u as VertexId != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w as usize] = pu;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }

    // Core numbers must be non-decreasing along the peel order; enforce the classical
    // post-condition core[v_i] = max(core[v_i], core[v_{i-1}]) is NOT needed because the
    // bucket algorithm already guarantees it; keep the maximum as degeneracy.
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core,
        degeneracy,
        peel_order,
    }
}

/// Convenience: the degeneracy of `g` (maximum core number).
pub fn degeneracy(g: &SignedGraph) -> u32 {
    core_decomposition(g).degeneracy
}

/// Core numbers of the subgraph exposed by a [`GraphView`] — the alive-induced (and,
/// for positive views, sign-filtered) skeleton — without materialising it.
///
/// Dead vertices get core number 0 and do not appear in the peel order; alive
/// vertices get exactly the core number they would have in
/// [`GraphView::materialize`]'s output.  On a full view this is identical to
/// [`core_decomposition`].
pub fn core_decomposition_view(view: GraphView<'_>) -> CoreDecomposition {
    let mut scratch = CoreScratch::default();
    core_numbers_view_into(view, &mut scratch);
    let degeneracy = scratch.core.iter().copied().max().unwrap_or(0);
    CoreDecomposition {
        core: scratch.core,
        degeneracy,
        peel_order: scratch.peel_order,
    }
}

/// Reusable buffers of [`core_numbers_view_into`].
///
/// The output lands in [`CoreScratch::core`] / [`CoreScratch::peel_order`]; every
/// other field is internal bucket-sort scratch.  Re-running on graphs of the same
/// vertex count allocates nothing — this is the per-solve core-number seeding of
/// NewSEA's smart-initialisation bound, kept inside the solver workspace.
#[derive(Debug, Clone, Default)]
pub struct CoreScratch {
    /// `core[v]` after a run: the core number of `v` (0 for dead vertices).
    pub core: Vec<u32>,
    /// The peel order of the last run (alive vertices, non-decreasing core number).
    pub peel_order: Vec<VertexId>,
    degree: Vec<usize>,
    bin: Vec<usize>,
    cursor: Vec<usize>,
    vert: Vec<VertexId>,
    pos: Vec<usize>,
    alive: Vec<VertexId>,
}

/// [`core_decomposition_view`] into reusable buffers: computes the core numbers and
/// peel order of the view's alive-induced (and sign-filtered) skeleton without
/// allocating in steady state.  Results are identical to the allocating routine.
pub fn core_numbers_view_into(view: GraphView<'_>, s: &mut CoreScratch) {
    let n = view.num_vertices();
    s.core.clear();
    s.core.resize(n, 0);
    s.peel_order.clear();
    s.alive.clear();
    s.alive.extend(view.vertices());
    if s.alive.is_empty() {
        return;
    }
    s.degree.clear();
    s.degree.resize(n, 0);
    let mut max_degree = 0usize;
    for &v in &s.alive {
        let d = view.degree(v);
        s.degree[v as usize] = d;
        max_degree = max_degree.max(d);
    }

    // Bucket sort the alive vertices by degree (same algorithm as the full-graph
    // routine; dead vertices never enter the buckets and are filtered out of every
    // adjacency walk by the view itself).
    let m = s.alive.len();
    s.bin.clear();
    s.bin.resize(max_degree + 2, 0);
    for &v in &s.alive {
        s.bin[s.degree[v as usize]] += 1;
    }
    let mut start = 0usize;
    for b in s.bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    s.vert.clear();
    s.vert.resize(m, 0);
    s.pos.clear();
    s.pos.resize(n, 0);
    s.cursor.clear();
    s.cursor.extend_from_slice(&s.bin);
    for &v in &s.alive {
        let d = s.degree[v as usize];
        s.pos[v as usize] = s.cursor[d];
        s.vert[s.cursor[d]] = v;
        s.cursor[d] += 1;
    }

    for i in 0..m {
        let v = s.vert[i];
        s.peel_order.push(v);
        s.core[v as usize] = s.degree[v as usize] as u32;
        for e in view.neighbors(v) {
            let u = e.neighbor as usize;
            if s.degree[u] > s.degree[v as usize] {
                let du = s.degree[u];
                let pu = s.pos[u];
                let pw = s.bin[du];
                let w = s.vert[pw];
                if u as VertexId != w {
                    s.vert.swap(pu, pw);
                    s.pos[u] = pw;
                    s.pos[w as usize] = pu;
                }
                s.bin[du] += 1;
                s.degree[u] -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_with_tail() {
        // Triangle {0,1,2} plus path 2-3-4.
        let g = GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
            ],
        );
        let cd = core_decomposition(&g);
        assert_eq!(cd.core, vec![2, 2, 2, 1, 1]);
        assert_eq!(cd.degeneracy, 2);
        assert_eq!(cd.k_core(2), vec![0, 1, 2]);
        assert_eq!(cd.k_core(1).len(), 5);
        assert_eq!(cd.peel_order.len(), 5);
    }

    #[test]
    fn clique_core_numbers() {
        // K5: every vertex has core number 4.
        let mut b = GraphBuilder::new(5);
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        let cd = core_decomposition(&b.build());
        assert!(cd.core.iter().all(|&c| c == 4));
        assert_eq!(cd.degeneracy, 4);
    }

    #[test]
    fn signs_are_ignored() {
        let pos = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let neg = GraphBuilder::from_edges(3, vec![(0, 1, -1.0), (1, 2, -5.0), (0, 2, 2.0)]);
        assert_eq!(core_decomposition(&pos).core, core_decomposition(&neg).core);
    }

    #[test]
    fn star_graph() {
        let g =
            GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]);
        let cd = core_decomposition(&g);
        assert_eq!(cd.core, vec![1, 1, 1, 1, 1]);
        assert_eq!(cd.degeneracy, 1);
    }

    #[test]
    fn empty_and_edgeless() {
        let cd = core_decomposition(&crate::SignedGraph::empty(0));
        assert_eq!(cd.degeneracy, 0);
        let cd = core_decomposition(&crate::SignedGraph::empty(3));
        assert_eq!(cd.core, vec![0, 0, 0]);
        assert_eq!(degeneracy(&crate::SignedGraph::empty(3)), 0);
    }

    #[test]
    fn view_decomposition_matches_full_and_materialized() {
        let mut b = GraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(3, 4, -2.0);
        b.add_edge(4, 5, 1.0);
        b.add_edge(6, 7, 1.0);
        let g = b.build();

        // Full view: identical to the direct routine, peel order included.
        let full = core_decomposition_view(crate::GraphView::full(&g));
        assert_eq!(full, core_decomposition(&g));

        // Masked view: alive cores match the materialised alive-induced graph.
        let mut mask = crate::VertexMask::full(8);
        mask.remove_all(&[0, 6]);
        let view = crate::GraphView::masked(&g, &mask);
        let of_view = core_decomposition_view(view);
        let of_materialized = core_decomposition(&view.materialize());
        assert_eq!(of_view.core, of_materialized.core);
        assert_eq!(of_view.degeneracy, of_materialized.degeneracy);
        assert_eq!(of_view.peel_order.len(), 6);
        assert_eq!(of_view.core[0], 0);

        // Positive view: the negative bridge does not link 3 and 4.
        let positive = core_decomposition_view(crate::GraphView::full(&g).positive_part());
        assert_eq!(positive.core, core_decomposition(&g.positive_part()).core);
    }

    #[test]
    fn clique_upper_bound_property() {
        // For every vertex u of the max clique K of size k, core(u) >= k - 1.
        // Build a K4 {0..3} plus some pendant edges.
        let mut b = GraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(0, 4, 1.0);
        b.add_edge(4, 5, 1.0);
        b.add_edge(6, 7, 1.0);
        let cd = core_decomposition(&b.build());
        for u in 0..4 {
            assert!(cd.core[u] >= 3);
        }
    }
}

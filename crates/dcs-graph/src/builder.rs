//! Incremental construction of [`SignedGraph`]s from edge lists.

use rustc_hash::FxHashMap;

use crate::{EdgeTriple, SignedGraph, VertexId, Weight};

/// What to do when the same undirected edge `(u, v)` is added more than once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Sum the weights of duplicate insertions (the natural policy for co-occurrence /
    /// collaboration counts; this is the default).
    #[default]
    Sum,
    /// Keep the weight of the last insertion.
    Overwrite,
    /// Keep the maximum weight seen.
    Max,
    /// Keep the minimum weight seen.
    Min,
}

/// Builder that accumulates an undirected edge list and packs it into CSR form.
///
/// * Self-loops are ignored.
/// * Edges whose final (merged) weight is exactly `0.0` are dropped — the paper defines
///   the edge set of the difference graph as `{(u,v) | D(u,v) ≠ 0}`.
/// * Adding an edge with an endpoint `>= n` grows the vertex set automatically.
///
/// ```
/// use dcs_graph::{GraphBuilder, DuplicatePolicy};
/// let mut b = GraphBuilder::with_policy(3, DuplicatePolicy::Sum);
/// b.add_edge(0, 1, 1.0);
/// b.add_edge(1, 0, 2.0);   // merged with the previous insertion
/// b.add_edge(1, 2, -3.0);
/// b.add_edge(2, 2, 9.0);   // self loop: ignored
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.edge_weight(0, 1), Some(3.0));
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    policy: DuplicatePolicy,
    /// Map keyed by (min(u,v), max(u,v)).
    edges: FxHashMap<(VertexId, VertexId), Weight>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices and the default
    /// [`DuplicatePolicy::Sum`] policy.
    pub fn new(n: usize) -> Self {
        Self::with_policy(n, DuplicatePolicy::Sum)
    }

    /// Creates a builder with an explicit duplicate-merging policy.
    pub fn with_policy(n: usize, policy: DuplicatePolicy) -> Self {
        GraphBuilder {
            n,
            policy,
            edges: FxHashMap::default(),
        }
    }

    /// Number of vertices the built graph will have (grows as edges are added).
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of distinct undirected edges currently accumulated (including edges whose
    /// merged weight is zero, which will be dropped at [`Self::build`] time).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Ensures the vertex set covers `0..n`.
    pub fn grow_to(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds (or merges) the undirected edge `(u, v)` with weight `w`.
    ///
    /// Self-loops (`u == v`) are silently ignored.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        if u == v {
            return;
        }
        self.grow_to(u.max(v) as usize + 1);
        let key = if u < v { (u, v) } else { (v, u) };
        use DuplicatePolicy::*;
        self.edges
            .entry(key)
            .and_modify(|cur| match self.policy {
                Sum => *cur += w,
                Overwrite => *cur = w,
                Max => *cur = cur.max(w),
                Min => *cur = cur.min(w),
            })
            .or_insert(w);
    }

    /// Adds every edge of an iterator of `(u, v, w)` triples.
    pub fn add_edges<I: IntoIterator<Item = EdgeTriple>>(&mut self, edges: I) {
        for (u, v, w) in edges {
            self.add_edge(u, v, w);
        }
    }

    /// Current merged weight of edge `(u, v)`, if it has been added.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let key = if u < v { (u, v) } else { (v, u) };
        self.edges.get(&key).copied()
    }

    /// Finalises the builder into a CSR [`SignedGraph`].
    ///
    /// Adjacency lists are sorted by neighbor id, which enables binary-search edge
    /// lookups on high-degree vertices.
    pub fn build(self) -> SignedGraph {
        let n = self.n;
        let mut degrees = vec![0usize; n];
        let mut kept: Vec<(VertexId, VertexId, Weight)> = Vec::with_capacity(self.edges.len());
        for (&(u, v), &w) in &self.edges {
            if w != 0.0 {
                kept.push((u, v, w));
                degrees[u as usize] += 1;
                degrees[v as usize] += 1;
            }
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degrees[v];
        }
        let total = offsets[n];
        let mut neighbors = vec![0 as VertexId; total];
        let mut weights = vec![0.0 as Weight; total];
        let mut cursor = offsets.clone();
        for (u, v, w) in kept {
            let cu = cursor[u as usize];
            neighbors[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            neighbors[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency list by neighbor id (insertion order from a hash map is
        // arbitrary).
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            let mut pairs: Vec<(VertexId, Weight)> = neighbors[range.clone()]
                .iter()
                .copied()
                .zip(weights[range.clone()].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|p| p.0);
            for (i, (nb, w)) in pairs.into_iter().enumerate() {
                neighbors[offsets[v] + i] = nb;
                weights[offsets[v] + i] = w;
            }
        }
        SignedGraph::from_csr(offsets, neighbors, weights)
    }

    /// Convenience: build a graph directly from an edge list.
    pub fn from_edges<I: IntoIterator<Item = EdgeTriple>>(n: usize, edges: I) -> SignedGraph {
        let mut b = GraphBuilder::new(n);
        b.add_edges(edges);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_policies() {
        for (policy, expect) in [
            (DuplicatePolicy::Sum, 3.0),
            (DuplicatePolicy::Overwrite, 2.0),
            (DuplicatePolicy::Max, 2.0),
            (DuplicatePolicy::Min, 1.0),
        ] {
            let mut b = GraphBuilder::with_policy(2, policy);
            b.add_edge(0, 1, 1.0);
            b.add_edge(1, 0, 2.0);
            let g = b.build();
            assert_eq!(g.edge_weight(0, 1), Some(expect), "policy {policy:?}");
        }
    }

    #[test]
    fn zero_weight_edges_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 1, -1.0); // sums to zero → dropped
        b.add_edge(1, 2, 0.0); // exactly zero → dropped
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn grows_vertex_set() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(4, 2, 1.5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.edge_weight(2, 4), Some(1.5));
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1, 7.0);
        assert_eq!(b.num_edges(), 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn adjacency_sorted() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(0, 3, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let (nbrs, _) = g.neighbor_slices(0);
        assert_eq!(nbrs, &[1, 2, 3, 4]);
    }

    #[test]
    fn from_edges_convenience() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, -2.0)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_negative_edges(), 1);
    }
}

//! Plain-text edge-list input/output.
//!
//! The format is one edge per line, whitespace separated: `u v w`.  Lines starting with
//! `#` or `%` are comments.  This matches the common SNAP / KONECT export formats used by
//! the datasets referenced in the paper (DBLP, wikiconflict, …), so users who do have the
//! original data can load it directly.

use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

use crate::{GraphBuilder, SignedGraph, VertexId, Weight};

/// Errors produced by edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and the line content.
    Parse {
        /// 1-based line number of the offending line.
        line_number: usize,
        /// The offending line.
        line: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line_number, line } => {
                write!(f, "cannot parse edge on line {line_number}: {line:?}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses an edge list from a reader.
///
/// Each non-comment, non-empty line must contain `u v [w]`; a missing weight defaults to
/// `1.0`.  Vertex ids are arbitrary `u32` values; the resulting graph has
/// `max id + 1` vertices.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<SignedGraph, IoError> {
    let mut builder = GraphBuilder::new(0);
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<f64> { tok.and_then(|t| t.parse::<f64>().ok()) };
        let u = parse(it.next());
        let v = parse(it.next());
        let w = it.next().map(|t| t.parse::<f64>());
        let (u, v) = match (u, v) {
            (Some(u), Some(v)) if u >= 0.0 && v >= 0.0 => (u as VertexId, v as VertexId),
            _ => {
                return Err(IoError::Parse {
                    line_number: idx + 1,
                    line,
                })
            }
        };
        let w: Weight = match w {
            None => 1.0,
            Some(Ok(w)) => w,
            Some(Err(_)) => {
                return Err(IoError::Parse {
                    line_number: idx + 1,
                    line,
                })
            }
        };
        builder.add_edge(u, v, w);
    }
    Ok(builder.build())
}

/// Reads an edge list from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<SignedGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(io::BufReader::new(file))
}

/// Writes the graph as an edge list (`u v w` per line, each undirected edge once).
pub fn write_edge_list<W: Write>(g: &SignedGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v, weight) in g.edges() {
        writeln!(w, "{u} {v} {weight}")?;
    }
    w.flush()
}

/// Writes the graph to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &SignedGraph, path: P) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let text = "# comment\n0 1 2.5\n1 2 -1\n\n% another comment\n2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(2.5));
        assert_eq!(g.edge_weight(1, 2), Some(-1.0));
        assert_eq!(g.edge_weight(2, 3), Some(1.0));
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "0 1 1.0\nnot an edge\n";
        match read_edge_list(text.as_bytes()) {
            Err(IoError::Parse { line_number, .. }) => assert_eq!(line_number, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parse_bad_weight() {
        let text = "0 1 abc\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip() {
        let g = crate::GraphBuilder::from_edges(4, vec![(0, 1, 1.5), (1, 2, -2.0), (0, 3, 4.0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.edge_weight(1, 2), Some(-2.0));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("dcs_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.edges");
        let g = crate::GraphBuilder::from_edges(3, vec![(0, 2, 7.0)]);
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.edge_weight(0, 2), Some(7.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display() {
        let err = IoError::Parse {
            line_number: 3,
            line: "x".into(),
        };
        assert!(format!("{err}").contains("line 3"));
    }
}

//! Backing storage for CSR columns: owned `Vec`s or zero-copy pack slices.
//!
//! [`crate::SignedGraph`] historically stored its three CSR arrays as `Vec`s.
//! Memory-mapped graph packs ([`crate::pack`]) need the same graph to sit
//! directly on file-backed memory without copying, so each column is now a
//! [`CsrColumn`]: either an owned `Vec<T>` or a borrowed [`ArcSlice<T>`] view
//! into a mapped pack.  `Deref<Target = [T]>` keeps every read-only accessor
//! untouched; the few mutating methods call [`CsrColumn::make_mut`], which
//! transparently copies a mapped column into an owned `Vec` first
//! (copy-on-write), so solvers never observe the difference.

use std::ops::Deref;

use mmap::{ArcSlice, Pod};

/// One CSR column: an owned vector or a zero-copy slice of a mapped pack.
pub(crate) enum CsrColumn<T: Pod> {
    /// Heap-allocated storage, mutable in place.
    Owned(Vec<T>),
    /// A view into a memory-mapped (or buffered) pack; cloning bumps an
    /// `Arc`, mutation copies out first.
    Mapped(ArcSlice<T>),
}

impl<T: Pod> CsrColumn<T> {
    /// The column as a slice regardless of backing.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            CsrColumn::Owned(v) => v,
            CsrColumn::Mapped(s) => s,
        }
    }

    /// Mutable access, converting a mapped column into an owned `Vec` first
    /// (the copy-on-write step; a no-op for already-owned columns).
    pub(crate) fn make_mut(&mut self) -> &mut Vec<T> {
        if let CsrColumn::Mapped(slice) = self {
            *self = CsrColumn::Owned(slice.to_vec());
        }
        match self {
            CsrColumn::Owned(v) => v,
            CsrColumn::Mapped(_) => unreachable!("mapped column was just copied out"),
        }
    }

    /// Extracts an owned `Vec`, copying when the column is mapped.
    pub(crate) fn into_vec(self) -> Vec<T> {
        match self {
            CsrColumn::Owned(v) => v,
            CsrColumn::Mapped(s) => s.to_vec(),
        }
    }

    /// Whether the column aliases pack memory (as opposed to owning a heap
    /// allocation).
    pub(crate) fn is_mapped(&self) -> bool {
        matches!(self, CsrColumn::Mapped(_))
    }
}

impl<T: Pod> Deref for CsrColumn<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for CsrColumn<T> {
    fn from(v: Vec<T>) -> Self {
        CsrColumn::Owned(v)
    }
}

impl<T: Pod> From<ArcSlice<T>> for CsrColumn<T> {
    fn from(s: ArcSlice<T>) -> Self {
        CsrColumn::Mapped(s)
    }
}

impl<T: Pod> Clone for CsrColumn<T> {
    fn clone(&self) -> Self {
        match self {
            CsrColumn::Owned(v) => CsrColumn::Owned(v.clone()),
            // Cheap: an Arc bump, no bytes copied.
            CsrColumn::Mapped(s) => CsrColumn::Mapped(s.clone()),
        }
    }
}

impl<T: Pod + PartialEq> PartialEq for CsrColumn<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for CsrColumn<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mapped_u32(values: &[u32]) -> CsrColumn<u32> {
        let mut bytes = Vec::new();
        for v in values {
            bytes.extend_from_slice(&v.to_ne_bytes());
        }
        let owner = Arc::new(mmap::Mmap::from_vec(bytes));
        let len = values.len();
        CsrColumn::Mapped(ArcSlice::new(owner, 0, len).unwrap())
    }

    #[test]
    fn owned_and_mapped_compare_equal_by_contents() {
        let owned: CsrColumn<u32> = vec![1, 2, 3].into();
        let mapped = mapped_u32(&[1, 2, 3]);
        assert_eq!(owned, mapped);
        assert!(!owned.is_mapped());
        assert!(mapped.is_mapped());
        assert_eq!(&*owned, &*mapped);
    }

    #[test]
    fn make_mut_copies_mapped_out() {
        let mut col = mapped_u32(&[5, 6]);
        col.make_mut().push(7);
        assert!(!col.is_mapped());
        assert_eq!(&*col, &[5, 6, 7]);
    }

    #[test]
    fn clone_of_mapped_stays_mapped() {
        let col = mapped_u32(&[9]);
        let clone = col.clone();
        assert!(clone.is_mapped());
        assert_eq!(col, clone);
    }

    #[test]
    fn into_vec_roundtrips() {
        assert_eq!(mapped_u32(&[4, 2]).into_vec(), vec![4, 2]);
        let owned: CsrColumn<u32> = vec![4, 2].into();
        assert_eq!(owned.into_vec(), vec![4, 2]);
    }
}

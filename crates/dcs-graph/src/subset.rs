//! Dense vertex subsets with O(1) membership tests.

use crate::VertexId;

/// A subset of the vertices of a graph with `n` vertices.
///
/// Internally a membership bit-vector plus an insertion-ordered list of members, so that
/// membership tests, insertion and iteration are all O(1)/O(|S|).  This is the workhorse
/// set representation for the peeling and local-search algorithms, which repeatedly ask
/// "is this neighbor still inside S?" while iterating adjacency lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexSubset {
    member: Vec<bool>,
    items: Vec<VertexId>,
}

impl VertexSubset {
    /// Creates an empty subset of a vertex universe of size `n`.
    pub fn new(n: usize) -> Self {
        VertexSubset {
            member: vec![false; n],
            items: Vec::new(),
        }
    }

    /// Creates a subset containing every vertex `0..n`.
    pub fn full(n: usize) -> Self {
        VertexSubset {
            member: vec![true; n],
            items: (0..n as VertexId).collect(),
        }
    }

    /// Creates a subset from a slice of vertex ids (duplicates are ignored).
    pub fn from_slice(n: usize, vertices: &[VertexId]) -> Self {
        let mut s = VertexSubset::new(n);
        s.items.reserve(vertices.len());
        for &v in vertices {
            s.insert(v);
        }
        s
    }

    /// Re-initialises the subset to an **empty** set over a universe of `n` vertices,
    /// keeping all allocated capacity — the scratch-reuse primitive of the solver
    /// workspaces (a reused subset performs no allocation once its buffers have grown
    /// to the largest universe seen).
    pub fn reset_universe(&mut self, n: usize) {
        self.clear();
        self.member.resize(n, false);
    }

    /// Inserts every vertex of `vertices` (duplicates are ignored).
    pub fn insert_all(&mut self, vertices: &[VertexId]) {
        self.items.reserve(vertices.len());
        for &v in vertices {
            self.insert(v);
        }
    }

    /// Size of the vertex universe.
    pub fn universe_size(&self) -> usize {
        self.member.len()
    }

    /// Number of vertices currently in the subset.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.member[v as usize]
    }

    /// Inserts `v`; returns `true` if it was not already present.
    pub fn insert(&mut self, v: VertexId) -> bool {
        if self.member[v as usize] {
            false
        } else {
            self.member[v as usize] = true;
            self.items.push(v);
            true
        }
    }

    /// Removes `v`; returns `true` if it was present.
    ///
    /// O(|S|) in the worst case because the insertion-ordered list must be compacted;
    /// the compaction uses `swap_remove` so the amortised cost is O(1) when removal order
    /// does not matter (it never does for the algorithms in this workspace).
    pub fn remove(&mut self, v: VertexId) -> bool {
        if !self.member[v as usize] {
            return false;
        }
        self.member[v as usize] = false;
        // Find and swap-remove from the list.
        if let Some(pos) = self.items.iter().position(|&x| x == v) {
            self.items.swap_remove(pos);
        }
        true
    }

    /// Removes every vertex, keeping the allocated capacity.
    pub fn clear(&mut self) {
        for &v in &self.items {
            self.member[v as usize] = false;
        }
        self.items.clear();
    }

    /// Iterates the members in insertion order (arbitrary but stable between mutations).
    pub fn iter(&self) -> std::slice::Iter<'_, VertexId> {
        self.items.iter()
    }

    /// Returns the members as a slice.
    pub fn as_slice(&self) -> &[VertexId] {
        &self.items
    }

    /// Returns the members as a sorted `Vec`.
    ///
    /// This clones the member list; it is the right call only when the subset must
    /// stay iterable while the snapshot is consumed (e.g. a removal pass over a
    /// frozen ordering).  Solution normalisation should use [`Self::sorted_items`]
    /// or [`Self::into_sorted_vec`], which sort in place without cloning.
    pub fn to_sorted_vec(&self) -> Vec<VertexId> {
        let mut v = self.items.clone();
        v.sort_unstable();
        v
    }

    /// Sorts the member list in place and returns it as a slice — the allocation-free
    /// sorted accessor (iteration order is documented as arbitrary, so re-ordering the
    /// internal list is observable only through this method's own guarantee).
    pub fn sorted_items(&mut self) -> &[VertexId] {
        self.items.sort_unstable();
        &self.items
    }

    /// Consumes the subset and returns its members sorted ascending, without cloning —
    /// the zero-copy solution-normalisation accessor.
    pub fn into_sorted_vec(mut self) -> Vec<VertexId> {
        self.items.sort_unstable();
        self.items
    }
}

impl<'a> IntoIterator for &'a VertexSubset {
    type Item = &'a VertexId;
    type IntoIter = std::slice::Iter<'a, VertexId>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<VertexId> for VertexSubset {
    /// Builds a subset whose universe is just large enough to hold the maximum id.
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        let items: Vec<VertexId> = iter.into_iter().collect();
        let n = items.iter().map(|&v| v as usize + 1).max().unwrap_or(0);
        VertexSubset::from_slice(n, &items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = VertexSubset::new(5);
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(1));
        assert_eq!(s.len(), 2);
        assert!(s.contains(3));
        assert!(!s.contains(0));
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.to_sorted_vec(), vec![1]);
    }

    #[test]
    fn sorted_accessors_agree_and_avoid_cloning() {
        let mut s = VertexSubset::from_slice(8, &[7, 2, 5, 0]);
        assert_eq!(s.sorted_items(), &[0, 2, 5, 7]);
        // The in-place sort is idempotent and membership is untouched.
        assert_eq!(s.sorted_items(), &[0, 2, 5, 7]);
        assert!(s.contains(5) && !s.contains(1));
        assert_eq!(s.to_sorted_vec(), vec![0, 2, 5, 7]);
        assert_eq!(s.into_sorted_vec(), vec![0, 2, 5, 7]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = VertexSubset::full(4);
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(3));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(2));
        assert_eq!(s.universe_size(), 4);
    }

    #[test]
    fn from_slice_dedups() {
        let s = VertexSubset::from_slice(6, &[5, 1, 5, 1, 2]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_sorted_vec(), vec![1, 2, 5]);
    }

    #[test]
    fn reset_universe_reuses_buffers() {
        let mut s = VertexSubset::from_slice(6, &[5, 1]);
        s.reset_universe(10);
        assert!(s.is_empty());
        assert_eq!(s.universe_size(), 10);
        assert!(!s.contains(5));
        s.insert_all(&[9, 2, 9]);
        assert_eq!(s.len(), 2);
        // Shrinking drops the tail of the universe.
        s.reset_universe(3);
        assert_eq!(s.universe_size(), 3);
        assert!(s.is_empty());
        s.insert(2);
        assert!(s.contains(2));
    }

    #[test]
    fn from_iterator() {
        let s: VertexSubset = vec![2u32, 7, 2].into_iter().collect();
        assert_eq!(s.universe_size(), 8);
        assert_eq!(s.len(), 2);
    }
}

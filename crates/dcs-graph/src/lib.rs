//! # dcs-graph
//!
//! Signed, weighted, undirected graph substrate used by the
//! [density-contrast-subgraph](https://arxiv.org/abs/1802.06775) workspace.
//!
//! The central type is [`SignedGraph`]: an immutable, CSR-packed, undirected graph whose
//! edge weights may be **positive or negative**.  This is exactly the object the paper
//! calls the *difference graph* `G_D = <V, E_D, D = A2 - A1>`.  Ordinary weighted graphs
//! (all weights positive) are represented by the same type; the invariant is only that a
//! weight is non-zero.
//!
//! The crate provides the primitives the paper's algorithms need:
//!
//! * [`GraphBuilder`] — accumulate an edge list (with duplicate merging) and pack it into
//!   CSR form,
//! * [`DeltaGraph`] — an incrementally maintained graph with O(1) weight updates,
//!   dirty-vertex tracking and cheap versioned `Arc<SignedGraph>` CSR snapshots
//!   ([`delta`]), the substrate of the streaming difference-graph engine,
//! * induced-subgraph metrics over vertex subsets ([`SignedGraph::total_degree`],
//!   [`SignedGraph::average_degree`], [`SignedGraph::edge_density`], …),
//! * [`SignedGraph::positive_part`] — the graph `G_{D+}` containing only positive edges,
//! * string-labelled vertices and labelled edge-list IO for graphs over named entities
//!   such as authors or keywords ([`labels`]),
//! * connected components, both global and restricted to an induced subgraph
//!   ([`components`]),
//! * k-core decomposition / core numbers ([`cores`]), used by the NewSEA smart
//!   initialisation,
//! * breadth/depth-first traversal ([`traversal`]),
//! * a dense [`VertexSubset`] set with O(1) membership tests used pervasively in the
//!   peeling and local-search algorithms,
//! * plain-text edge-list IO ([`io`]).
//!
//! ## Example
//!
//! ```
//! use dcs_graph::{GraphBuilder, SignedGraph};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 2.0);
//! b.add_edge(1, 2, -1.0);
//! b.add_edge(2, 3, 3.0);
//! let g: SignedGraph = b.build();
//!
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 3);
//! // Average degree of the whole graph: 2 * (2 - 1 + 3) / 4 = 2.0
//! let all: Vec<u32> = (0..4).collect();
//! assert!((g.average_degree(&all) - 2.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
mod column;
pub mod components;
pub mod cores;
pub mod csr;
pub mod delta;
pub mod io;
pub mod labels;
pub mod mask;
pub mod pack;
pub mod subset;
pub mod traversal;
pub mod view;

pub use builder::{DuplicatePolicy, GraphBuilder};
pub use components::{
    connected_components, connected_components_of, is_connected_scratch, ComponentLabels,
};
pub use cores::{
    core_decomposition, core_decomposition_view, core_numbers_view_into, degeneracy,
    CoreDecomposition, CoreScratch,
};
pub use csr::{CorruptGraph, EdgeRef, NeighborIter, SignedGraph};
pub use delta::DeltaGraph;
pub use labels::{LabeledGraphBuilder, VertexLabels};
pub use mask::VertexMask;
pub use pack::{GraphPack, PackError};
pub use subset::VertexSubset;
pub use view::GraphView;

/// Vertex identifier.
///
/// Vertices are dense integers in `0..n`.  `u32` keeps adjacency arrays compact (the
/// largest graphs in the paper have ~1.3M vertices and ~15M edges, far below `u32::MAX`).
pub type VertexId = u32;

/// Edge weight type.  Signed: the difference graph may carry negative weights.
pub type Weight = f64;

/// A `(u, v, w)` triple used when exchanging edge lists with builders and IO.
pub type EdgeTriple = (VertexId, VertexId, Weight);

/// Commonly used items, for glob import in downstream crates and examples.
pub mod prelude {
    pub use crate::builder::{DuplicatePolicy, GraphBuilder};
    pub use crate::components::{connected_components, connected_components_of};
    pub use crate::cores::core_decomposition;
    pub use crate::csr::SignedGraph;
    pub use crate::delta::DeltaGraph;
    pub use crate::mask::VertexMask;
    pub use crate::subset::VertexSubset;
    pub use crate::view::GraphView;
    pub use crate::{EdgeTriple, VertexId, Weight};
}

//! Labelled vertices: mapping between external string names and dense [`VertexId`]s.
//!
//! The paper's inputs are graphs over named entities — authors, keywords, Wikipedia
//! editors — while every algorithm in this workspace works on dense integer vertex ids.
//! This module provides the bridge:
//!
//! * [`VertexLabels`] — a bidirectional map `label ↔ VertexId` that assigns ids densely in
//!   insertion order,
//! * [`LabeledGraphBuilder`] — a [`GraphBuilder`] that accepts labelled edges and interns
//!   the labels into a shared [`VertexLabels`] table,
//! * [`read_labeled_edge_list`] / [`write_labeled_edge_list`] — plain-text IO in the
//!   `label label weight` format.
//!
//! The important property for DCS mining is that **both** input graphs must share one
//! vertex numbering.  The intended pattern is therefore to build a single
//! [`VertexLabels`] (or a single [`LabeledGraphBuilder`] per graph sharing one table via
//! [`LabeledGraphBuilder::with_labels`]) and load both graphs through it; see
//! [`read_labeled_graph_pair`].

use std::io::{self, BufRead, BufWriter, Write};

use rustc_hash::FxHashMap;

use crate::io::IoError;
use crate::{GraphBuilder, SignedGraph, VertexId, Weight};

/// A bidirectional mapping between string labels and dense vertex ids.
///
/// Ids are handed out in first-seen order starting from 0, so a table shared between two
/// graphs guarantees a common vertex numbering — the prerequisite of every DCS problem.
#[derive(Debug, Clone, Default)]
pub struct VertexLabels {
    by_label: FxHashMap<String, VertexId>,
    by_id: Vec<String>,
}

impl VertexLabels {
    /// Creates an empty label table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct labels interned so far (equivalently, the vertex count).
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Interns `label`, returning its vertex id (allocating a fresh one on first sight).
    pub fn intern(&mut self, label: &str) -> VertexId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = self.by_id.len() as VertexId;
        self.by_id.push(label.to_owned());
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Looks up the id of an already-interned label.
    pub fn id_of(&self, label: &str) -> Option<VertexId> {
        self.by_label.get(label).copied()
    }

    /// Looks up the label of a vertex id.
    pub fn label_of(&self, id: VertexId) -> Option<&str> {
        self.by_id.get(id as usize).map(String::as_str)
    }

    /// Translates a slice of vertex ids into their labels.
    ///
    /// Ids without a label (possible when the graph was grown past the label table) are
    /// rendered as `v<id>`.
    pub fn labels_of(&self, ids: &[VertexId]) -> Vec<String> {
        ids.iter()
            .map(|&id| {
                self.label_of(id)
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("v{id}"))
            })
            .collect()
    }

    /// Iterates over `(id, label)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &str)> + '_ {
        self.by_id
            .iter()
            .enumerate()
            .map(|(i, l)| (i as VertexId, l.as_str()))
    }
}

/// A graph builder that accepts labelled edges.
///
/// Internally this is a [`GraphBuilder`] plus a [`VertexLabels`] table.  The table can be
/// supplied up front ([`LabeledGraphBuilder::with_labels`]) so that several graphs share
/// one numbering, and is handed back by [`LabeledGraphBuilder::build`].
#[derive(Debug, Clone, Default)]
pub struct LabeledGraphBuilder {
    labels: VertexLabels,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl LabeledGraphBuilder {
    /// Creates a builder with an empty label table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that continues an existing label table.
    ///
    /// Use this to load a second graph over the same vertex set as a first one.
    pub fn with_labels(labels: VertexLabels) -> Self {
        LabeledGraphBuilder {
            labels,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge between two labelled vertices.
    ///
    /// Duplicate edges are merged by summation when the graph is built (the same policy
    /// a difference-graph construction relies on).
    pub fn add_edge(&mut self, u: &str, v: &str, w: Weight) {
        let u = self.labels.intern(u);
        let v = self.labels.intern(v);
        self.edges.push((u, v, w));
    }

    /// Number of labelled vertices seen so far.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Finishes the graph.
    ///
    /// The graph has `max(n, labels.len())` vertices where `n` is the optional minimum
    /// vertex count, so that two graphs built from the same evolving table can be aligned
    /// afterwards with [`align_vertex_counts`].
    pub fn build(self) -> (SignedGraph, VertexLabels) {
        let mut builder = GraphBuilder::new(self.labels.len());
        builder.add_edges(self.edges);
        (builder.build(), self.labels)
    }
}

/// Pads the smaller of two graphs with isolated vertices so both have the same count.
///
/// DCS inputs must share a vertex set; when two graphs are loaded through a shared,
/// growing label table the first graph may have been built before the table saw every
/// label, so it can be smaller.  Padding with isolated vertices changes neither densities
/// nor any algorithm's output.
pub fn align_vertex_counts(g1: &SignedGraph, g2: &SignedGraph) -> (SignedGraph, SignedGraph) {
    let n = g1.num_vertices().max(g2.num_vertices());
    let pad = |g: &SignedGraph| {
        if g.num_vertices() == n {
            g.clone()
        } else {
            let mut b = GraphBuilder::new(n);
            b.add_edges(g.edges());
            b.build()
        }
    };
    (pad(g1), pad(g2))
}

/// Reads a labelled edge list (`label label [weight]` per line) into a graph.
///
/// Lines starting with `#` or `%` are comments; a missing weight defaults to `1.0`.
/// Labels may not contain whitespace.  The supplied `labels` table is extended in place,
/// so reading a second file with the same table yields a graph over a shared numbering.
pub fn read_labeled_edge_list<R: BufRead>(
    reader: R,
    labels: &mut VertexLabels,
) -> Result<SignedGraph, IoError> {
    let mut edges: Vec<(VertexId, VertexId, Weight)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (u, v) = match (it.next(), it.next()) {
            (Some(u), Some(v)) => (u, v),
            _ => {
                return Err(IoError::Parse {
                    line_number: idx + 1,
                    line,
                })
            }
        };
        let w: Weight = match it.next() {
            None => 1.0,
            Some(tok) => match tok.parse() {
                Ok(w) => w,
                Err(_) => {
                    return Err(IoError::Parse {
                        line_number: idx + 1,
                        line,
                    })
                }
            },
        };
        let u = labels.intern(u);
        let v = labels.intern(v);
        edges.push((u, v, w));
    }
    let mut builder = GraphBuilder::new(labels.len());
    builder.add_edges(edges);
    Ok(builder.build())
}

/// Reads a labelled edge list from a file path, extending `labels` in place.
pub fn read_labeled_edge_list_file<P: AsRef<std::path::Path>>(
    path: P,
    labels: &mut VertexLabels,
) -> Result<SignedGraph, IoError> {
    let file = std::fs::File::open(path)?;
    read_labeled_edge_list(io::BufReader::new(file), labels)
}

/// Loads a `(G1, G2)` pair of labelled edge lists over a single shared vertex numbering.
///
/// Both graphs are padded to the same vertex count so they can be fed directly to a
/// difference-graph construction.  Returns `(g1, g2, labels)`.
pub fn read_labeled_graph_pair<R1: BufRead, R2: BufRead>(
    reader1: R1,
    reader2: R2,
) -> Result<(SignedGraph, SignedGraph, VertexLabels), IoError> {
    let mut labels = VertexLabels::new();
    let g1 = read_labeled_edge_list(reader1, &mut labels)?;
    let g2 = read_labeled_edge_list(reader2, &mut labels)?;
    let (g1, g2) = align_vertex_counts(&g1, &g2);
    Ok((g1, g2, labels))
}

/// Loads a `(G1, G2)` pair of labelled edge-list files over a shared vertex numbering.
pub fn read_labeled_graph_pair_files<P1: AsRef<std::path::Path>, P2: AsRef<std::path::Path>>(
    path1: P1,
    path2: P2,
) -> Result<(SignedGraph, SignedGraph, VertexLabels), IoError> {
    let f1 = std::fs::File::open(path1)?;
    let f2 = std::fs::File::open(path2)?;
    read_labeled_graph_pair(io::BufReader::new(f1), io::BufReader::new(f2))
}

/// Writes a graph as a labelled edge list (`label label weight` per line).
///
/// Vertices without a label are written as `v<id>`.
pub fn write_labeled_edge_list<W: Write>(
    g: &SignedGraph,
    labels: &VertexLabels,
    writer: W,
) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v, weight) in g.edges() {
        let lu = labels
            .label_of(u)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("v{u}"));
        let lv = labels
            .label_of(v)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("v{v}"));
        writeln!(w, "{lu} {lv} {weight}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut labels = VertexLabels::new();
        let a = labels.intern("alice");
        let b = labels.intern("bob");
        let a2 = labels.intern("alice");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(labels.len(), 2);
        assert_eq!(labels.label_of(0), Some("alice"));
        assert_eq!(labels.id_of("bob"), Some(1));
        assert_eq!(labels.id_of("carol"), None);
        assert_eq!(labels.label_of(7), None);
    }

    #[test]
    fn labels_of_falls_back_to_numeric_names() {
        let mut labels = VertexLabels::new();
        labels.intern("alice");
        assert_eq!(
            labels.labels_of(&[0, 3]),
            vec!["alice".to_owned(), "v3".to_owned()]
        );
    }

    #[test]
    fn iter_returns_id_order() {
        let mut labels = VertexLabels::new();
        labels.intern("x");
        labels.intern("y");
        let collected: Vec<(VertexId, &str)> = labels.iter().collect();
        assert_eq!(collected, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn labeled_builder_merges_duplicates_by_sum() {
        let mut b = LabeledGraphBuilder::new();
        b.add_edge("alice", "bob", 1.0);
        b.add_edge("bob", "alice", 2.0);
        b.add_edge("bob", "carol", -1.0);
        assert_eq!(b.num_vertices(), 3);
        let (g, labels) = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let alice = labels.id_of("alice").unwrap();
        let bob = labels.id_of("bob").unwrap();
        assert_eq!(g.edge_weight(alice, bob), Some(3.0));
    }

    #[test]
    fn shared_table_gives_shared_numbering() {
        let mut b1 = LabeledGraphBuilder::new();
        b1.add_edge("a", "b", 1.0);
        let (g1, labels) = b1.build();

        let mut b2 = LabeledGraphBuilder::with_labels(labels);
        b2.add_edge("b", "c", 2.0);
        b2.add_edge("a", "b", 5.0);
        let (g2, labels) = b2.build();

        // "a" and "b" keep the ids they received in the first graph.
        assert_eq!(labels.id_of("a"), Some(0));
        assert_eq!(labels.id_of("b"), Some(1));
        assert_eq!(labels.id_of("c"), Some(2));
        assert_eq!(g1.num_vertices(), 2);
        assert_eq!(g2.num_vertices(), 3);

        let (g1, g2) = align_vertex_counts(&g1, &g2);
        assert_eq!(g1.num_vertices(), 3);
        assert_eq!(g2.num_vertices(), 3);
        assert_eq!(g1.edge_weight(0, 1), Some(1.0));
        assert_eq!(g2.edge_weight(0, 1), Some(5.0));
    }

    #[test]
    fn read_labeled_edge_list_basic() {
        let text = "# co-authors\nalice bob 2\nbob carol\n% trailing comment\n";
        let mut labels = VertexLabels::new();
        let g = read_labeled_edge_list(text.as_bytes(), &mut labels).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let bob = labels.id_of("bob").unwrap();
        let carol = labels.id_of("carol").unwrap();
        assert_eq!(g.edge_weight(bob, carol), Some(1.0));
    }

    #[test]
    fn read_labeled_edge_list_errors() {
        let mut labels = VertexLabels::new();
        let missing_endpoint = "alice\n";
        assert!(matches!(
            read_labeled_edge_list(missing_endpoint.as_bytes(), &mut labels),
            Err(IoError::Parse { line_number: 1, .. })
        ));
        let bad_weight = "alice bob heavy\n";
        assert!(matches!(
            read_labeled_edge_list(bad_weight.as_bytes(), &mut labels),
            Err(IoError::Parse { line_number: 1, .. })
        ));
    }

    #[test]
    fn pair_loader_aligns_vertex_sets() {
        let early = "alice bob 3\nbob carol 1\n";
        let late = "alice bob 1\ncarol dave 4\n";
        let (g1, g2, labels) = read_labeled_graph_pair(early.as_bytes(), late.as_bytes()).unwrap();
        assert_eq!(g1.num_vertices(), 4);
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(labels.len(), 4);
        let carol = labels.id_of("carol").unwrap();
        let dave = labels.id_of("dave").unwrap();
        assert_eq!(g1.edge_weight(carol, dave), None);
        assert_eq!(g2.edge_weight(carol, dave), Some(4.0));
    }

    #[test]
    fn labeled_roundtrip() {
        let mut b = LabeledGraphBuilder::new();
        b.add_edge("x", "y", 1.5);
        b.add_edge("y", "z", -2.0);
        let (g, labels) = b.build();

        let mut buf = Vec::new();
        write_labeled_edge_list(&g, &labels, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("x y 1.5"));

        let mut labels2 = VertexLabels::new();
        let g2 = read_labeled_edge_list(text.as_bytes(), &mut labels2).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        let y = labels2.id_of("y").unwrap();
        let z = labels2.id_of("z").unwrap();
        assert_eq!(g2.edge_weight(y, z), Some(-2.0));
    }

    #[test]
    fn file_pair_roundtrip() {
        let dir = std::env::temp_dir().join("dcs_graph_labels_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p1 = dir.join("g1.edges");
        let p2 = dir.join("g2.edges");
        std::fs::write(&p1, "a b 1\n").unwrap();
        std::fs::write(&p2, "a b 2\nb c 3\n").unwrap();
        let (g1, g2, labels) = read_labeled_graph_pair_files(&p1, &p2).unwrap();
        assert_eq!(g1.num_vertices(), 3);
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(labels.len(), 3);
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }
}

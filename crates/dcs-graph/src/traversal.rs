//! Breadth-first and depth-first traversal utilities.

use std::collections::VecDeque;

use crate::{SignedGraph, VertexId, VertexSubset};

/// Breadth-first search order starting from `start`, optionally restricted to the
/// subgraph induced by `within` (pass `None` to traverse the whole graph).
pub fn bfs_order(g: &SignedGraph, start: VertexId, within: Option<&VertexSubset>) -> Vec<VertexId> {
    if let Some(w) = within {
        if !w.contains(start) {
            return Vec::new();
        }
    }
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start as usize] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for e in g.neighbors(u) {
            let v = e.neighbor;
            if visited[v as usize] {
                continue;
            }
            if let Some(w) = within {
                if !w.contains(v) {
                    continue;
                }
            }
            visited[v as usize] = true;
            queue.push_back(v);
        }
    }
    order
}

/// Iterative depth-first search order starting from `start`, optionally restricted to
/// the subgraph induced by `within`.
pub fn dfs_order(g: &SignedGraph, start: VertexId, within: Option<&VertexSubset>) -> Vec<VertexId> {
    if let Some(w) = within {
        if !w.contains(start) {
            return Vec::new();
        }
    }
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u as usize] {
            continue;
        }
        visited[u as usize] = true;
        order.push(u);
        // Push in reverse so that lower-numbered neighbors are visited first.
        let (nbrs, _) = g.neighbor_slices(u);
        for &v in nbrs.iter().rev() {
            if visited[v as usize] {
                continue;
            }
            if let Some(w) = within {
                if !w.contains(v) {
                    continue;
                }
            }
            stack.push(v);
        }
    }
    order
}

/// Unweighted shortest-path distances (hop counts) from `start`; unreachable vertices get
/// `u32::MAX`.
pub fn bfs_distances(g: &SignedGraph, start: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for e in g.neighbors(u) {
            let v = e.neighbor as usize;
            if dist[v] == u32::MAX {
                dist[v] = du + 1;
                queue.push_back(e.neighbor);
            }
        }
    }
    dist
}

/// All vertices within `hops` hops of `start` (including `start` itself).
///
/// Used by the Douban-style generators, which connect users by interest similarity only
/// when they are within 2 hops in the social graph, and by the EgoScan-substitute
/// baseline when growing candidate sets around a seed.
pub fn k_hop_neighborhood(g: &SignedGraph, start: VertexId, hops: u32) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    out.push(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == hops {
            continue;
        }
        for e in g.neighbors(u) {
            let v = e.neighbor;
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                out.push(v);
                queue.push_back(v);
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> SignedGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..(n - 1) as u32 {
            b.add_edge(v, v + 1, 1.0);
        }
        b.build()
    }

    #[test]
    fn bfs_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_order(&g, 0, None), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_order(&g, 2, None), vec![2, 1, 3, 0, 4]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn dfs_on_path() {
        let g = path_graph(4);
        assert_eq!(dfs_order(&g, 0, None), vec![0, 1, 2, 3]);
    }

    #[test]
    fn restricted_traversal() {
        let g = path_graph(5);
        let within = VertexSubset::from_slice(5, &[0, 1, 3, 4]);
        // vertex 2 is missing, so 3 and 4 are unreachable from 0
        assert_eq!(bfs_order(&g, 0, Some(&within)), vec![0, 1]);
        assert_eq!(dfs_order(&g, 0, Some(&within)), vec![0, 1]);
        // starting outside the subset yields nothing
        assert!(bfs_order(&g, 2, Some(&within)).is_empty());
        assert!(dfs_order(&g, 2, Some(&within)).is_empty());
    }

    #[test]
    fn unreachable_distances() {
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn k_hop() {
        let g = path_graph(6);
        assert_eq!(k_hop_neighborhood(&g, 0, 2), vec![0, 1, 2]);
        assert_eq!(k_hop_neighborhood(&g, 3, 1), vec![2, 3, 4]);
        assert_eq!(k_hop_neighborhood(&g, 3, 0), vec![3]);
    }
}

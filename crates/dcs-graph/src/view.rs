//! Masked (and sign-filtered) overlays on an immutable CSR graph.
//!
//! A [`GraphView`] is a zero-allocation lens over a [`SignedGraph`]: it iterates the
//! alive neighbors of an alive vertex without rebuilding adjacency rows.  Two
//! orthogonal filters compose:
//!
//! * a **vertex mask** ([`VertexMask`]) — dead vertices and every edge incident to
//!   them disappear, exactly the contract of
//!   [`SignedGraph::remove_vertices_in_place`] but in O(1) per removal instead of an
//!   O(n + m) CSR rewrite per peeling round;
//! * a **positive-only** flag — non-positive edges disappear, exactly the edge set of
//!   [`SignedGraph::positive_part`] but without materialising `G_{D+}`.
//!
//! The view is `Copy` (two pointers and a flag), so solver layers pass it by value.
//! [`GraphView::materialize`] builds the equivalent standalone graph; property tests
//! assert that peeling/solving on a view equals solving the materialised graph.

use crate::{EdgeRef, SignedGraph, VertexId, VertexMask, Weight};

/// A borrowed view of a [`SignedGraph`] restricted to alive vertices (and optionally
/// to positive edges).  See the module docs for the semantics.
#[derive(Debug, Clone, Copy)]
pub struct GraphView<'a> {
    graph: &'a SignedGraph,
    mask: Option<&'a VertexMask>,
    positive_only: bool,
}

impl<'a> GraphView<'a> {
    /// A view exposing the whole graph unchanged.
    pub fn full(graph: &'a SignedGraph) -> Self {
        GraphView {
            graph,
            mask: None,
            positive_only: false,
        }
    }

    /// A view restricted to the alive vertices of `mask`.
    ///
    /// The mask's universe must match the graph's vertex count.
    pub fn masked(graph: &'a SignedGraph, mask: &'a VertexMask) -> Self {
        debug_assert_eq!(mask.universe_size(), graph.num_vertices());
        GraphView {
            graph,
            mask: Some(mask),
            positive_only: false,
        }
    }

    /// The same view with non-positive edges additionally filtered out (`G_{D+}` of
    /// whatever this view exposes).
    pub fn positive_part(self) -> Self {
        GraphView {
            positive_only: true,
            ..self
        }
    }

    /// The underlying graph (unfiltered).
    #[inline]
    pub fn graph(self) -> &'a SignedGraph {
        self.graph
    }

    /// Whether this view filters non-positive edges.
    #[inline]
    pub fn is_positive_only(self) -> bool {
        self.positive_only
    }

    /// Size of the vertex universe (ids are stable: dead vertices keep their id).
    #[inline]
    pub fn num_vertices(self) -> usize {
        self.graph.num_vertices()
    }

    /// Whether `v` is alive in this view.
    #[inline]
    pub fn is_alive(self, v: VertexId) -> bool {
        match self.mask {
            Some(mask) => mask.contains(v),
            None => true,
        }
    }

    /// Number of alive vertices.
    #[inline]
    pub fn alive_count(self) -> usize {
        match self.mask {
            Some(mask) => mask.len(),
            None => self.graph.num_vertices(),
        }
    }

    /// The smallest alive vertex, or `None` when everything is masked out.
    pub fn first_alive(self) -> Option<VertexId> {
        match self.mask {
            Some(mask) => mask.first(),
            None => {
                if self.graph.num_vertices() > 0 {
                    Some(0)
                } else {
                    None
                }
            }
        }
    }

    /// Iterates the alive vertices in ascending order.
    pub fn vertices(self) -> impl Iterator<Item = VertexId> + 'a {
        let view = self;
        self.graph.vertices().filter(move |&v| view.is_alive(v))
    }

    #[inline]
    fn passes(self, e: &EdgeRef) -> bool {
        self.is_alive(e.neighbor) && (!self.positive_only || e.weight > 0.0)
    }

    /// Iterates the surviving `(neighbor, weight)` pairs of `v`.
    ///
    /// The caller is responsible for `v` itself being alive (neighbors of a dead
    /// vertex are still reported relative to the filters, mirroring how a
    /// materialised graph would answer for a vertex that was kept but isolated).
    #[inline]
    pub fn neighbors(self, v: VertexId) -> impl Iterator<Item = EdgeRef> + 'a {
        let view = self;
        self.graph.neighbors(v).filter(move |e| view.passes(e))
    }

    /// Weighted degree of `v` within the view.
    pub fn weighted_degree(self, v: VertexId) -> Weight {
        self.neighbors(v).map(|e| e.weight).sum()
    }

    /// Unweighted degree of `v` within the view.
    pub fn degree(self, v: VertexId) -> usize {
        self.neighbors(v).count()
    }

    /// The weight of the surviving edge `(u, v)`, or `None` when the edge is absent
    /// from the underlying graph, filtered by the positive-only flag, or incident to
    /// a dead vertex — exactly [`SignedGraph::edge_weight`] on
    /// [`Self::materialize`]'s output.
    pub fn edge_weight(self, u: VertexId, v: VertexId) -> Option<Weight> {
        if !self.is_alive(u) || !self.is_alive(v) {
            return None;
        }
        match self.graph.edge_weight(u, v) {
            Some(w) if !self.positive_only || w > 0.0 => Some(w),
            _ => None,
        }
    }

    /// Iterates every surviving undirected edge `(u, v, w)` once, with `u < v` and
    /// both endpoints alive.
    pub fn edges(self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + 'a {
        let view = self;
        self.vertices().flat_map(move |u| {
            view.neighbors(u)
                .filter(move |e| u < e.neighbor)
                .map(move |e| (u, e.neighbor, e.weight))
        })
    }

    /// The surviving edge with the maximum weight, or `None` if the view is edgeless.
    pub fn max_weight_edge(self) -> Option<(VertexId, VertexId, Weight)> {
        let mut best: Option<(VertexId, VertexId, Weight)> = None;
        for (u, v, w) in self.edges() {
            match best {
                None => best = Some((u, v, w)),
                Some((_, _, bw)) if w > bw => best = Some((u, v, w)),
                _ => {}
            }
        }
        best
    }

    /// Whether any edge survives the filters.
    pub fn has_edge(self) -> bool {
        self.edges().next().is_some()
    }

    /// Whether any **positive** edge survives the vertex mask (the top-k driver's
    /// "is there contrast left to mine" test).
    pub fn has_positive_edge(self) -> bool {
        self.positive_part().has_edge()
    }

    /// Builds the standalone [`SignedGraph`] this view is equivalent to: same vertex
    /// count (ids stable, dead vertices become isolated), only surviving edges.
    ///
    /// This is the reference semantics of the view — property tests peel/solve a view
    /// and the materialised graph and assert identical results.  It allocates; hot
    /// paths use the view directly.
    pub fn materialize(self) -> SignedGraph {
        let mut builder = crate::GraphBuilder::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            builder.add_edge(u, v, w);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn fig1_gd() -> SignedGraph {
        GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 1.0),
                (0, 3, -2.0),
                (2, 3, 3.0),
                (2, 4, -1.0),
                (3, 4, 2.0),
            ],
        )
    }

    #[test]
    fn full_view_is_transparent() {
        let g = fig1_gd();
        let view = GraphView::full(&g);
        assert_eq!(view.num_vertices(), 5);
        assert_eq!(view.alive_count(), 5);
        assert_eq!(view.first_alive(), Some(0));
        assert_eq!(view.edges().count(), 5);
        assert_eq!(view.degree(3), 3);
        assert!((view.weighted_degree(3) - 3.0).abs() < 1e-12);
        assert_eq!(view.max_weight_edge(), Some((2, 3, 3.0)));
        assert_eq!(view.materialize(), g);
    }

    #[test]
    fn masked_view_matches_remove_vertices_in_place() {
        let g = fig1_gd();
        let mut mask = VertexMask::full(5);
        mask.remove_all(&[3]);
        let view = GraphView::masked(&g, &mask);
        let mut reference = g.clone();
        reference.remove_vertices_in_place(&[3]);
        assert_eq!(view.materialize(), reference);
        assert_eq!(view.alive_count(), 4);
        assert!(!view.is_alive(3));
        assert_eq!(view.degree(0), 1);
        assert_eq!(view.edges().count(), 2);
        assert_eq!(view.max_weight_edge(), Some((0, 1, 1.0)));
    }

    #[test]
    fn positive_view_matches_positive_part() {
        let g = fig1_gd();
        let view = GraphView::full(&g).positive_part();
        assert!(view.is_positive_only());
        assert_eq!(view.materialize(), g.positive_part());
        assert_eq!(view.degree(0), 1); // the -2.0 edge to 3 is filtered
        assert!((view.weighted_degree(3) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn masked_positive_view_composes_both_filters() {
        let g = fig1_gd();
        let mut mask = VertexMask::full(5);
        mask.remove(2);
        let view = GraphView::masked(&g, &mask).positive_part();
        let mut reference = g.clone();
        reference.remove_vertices_in_place(&[2]);
        let reference = reference.positive_part();
        assert_eq!(view.materialize(), reference);
        assert!(view.has_edge());
        assert!(view.has_positive_edge());
    }

    #[test]
    fn exhaustion_checks() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        let view = GraphView::full(&g);
        assert!(view.has_edge());
        assert!(!view.has_positive_edge());
        let mut mask = VertexMask::full(3);
        mask.remove(0);
        let view = GraphView::masked(&g, &mask);
        assert!(!view.has_edge());
        assert_eq!(view.first_alive(), Some(1));
    }
}

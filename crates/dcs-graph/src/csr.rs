//! Compressed-sparse-row storage for signed, weighted, undirected graphs.

use crate::column::CsrColumn;
use crate::{VertexId, VertexSubset, Weight};

/// Why a CSR triple was rejected as structurally invalid.
///
/// Produced by [`SignedGraph::from_raw_csr`] (and by the pack reader in
/// [`crate::pack`]) when untrusted input — a file, a network payload, a
/// memory-mapped pack — fails the representation invariants.  Every variant
/// names the first offending location so corrupt inputs are diagnosable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CorruptGraph {
    /// The offsets array was empty (it must have `n + 1` entries).
    EmptyOffsets,
    /// `offsets[0]` was not zero.
    NonzeroFirstOffset {
        /// The value found at `offsets[0]`.
        first: usize,
    },
    /// `offsets[vertex + 1] < offsets[vertex]` — rows must be monotone.
    NonMonotoneOffsets {
        /// The first vertex whose row range runs backwards.
        vertex: usize,
    },
    /// The final offset does not equal the adjacency length.
    OffsetEndMismatch {
        /// `offsets[n]` as stored.
        last: usize,
        /// Actual number of adjacency entries.
        entries: usize,
    },
    /// `neighbors` and `weights` have different lengths.
    LengthMismatch {
        /// Length of the neighbor array.
        neighbors: usize,
        /// Length of the weight array.
        weights: usize,
    },
    /// The adjacency length is odd — impossible when every undirected edge
    /// is stored in both endpoint rows.
    OddEntryCount {
        /// The adjacency length found.
        entries: usize,
    },
    /// A neighbor id is `>= n`.
    TargetOutOfRange {
        /// The vertex whose row contains the bad target.
        vertex: usize,
        /// The out-of-range neighbor id.
        target: VertexId,
    },
    /// A vertex lists itself as a neighbor (self-loops are not allowed).
    SelfLoop {
        /// The offending vertex.
        vertex: usize,
    },
    /// A row is not strictly ascending by neighbor id (unsorted, or a
    /// duplicate edge).
    UnsortedRow {
        /// The first vertex whose row violates the ordering.
        vertex: usize,
    },
    /// An edge weight is NaN or infinite.
    NonFiniteWeight {
        /// The vertex whose row contains the weight.
        vertex: usize,
    },
    /// An edge weight is exactly zero (zero-weight edges are dropped, never
    /// stored).
    ZeroWeight {
        /// The vertex whose row contains the weight.
        vertex: usize,
    },
}

impl std::fmt::Display for CorruptGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorruptGraph::EmptyOffsets => {
                write!(f, "corrupt graph: offsets array is empty")
            }
            CorruptGraph::NonzeroFirstOffset { first } => {
                write!(f, "corrupt graph: offsets[0] = {first}, expected 0")
            }
            CorruptGraph::NonMonotoneOffsets { vertex } => {
                write!(f, "corrupt graph: offsets decrease at vertex {vertex}")
            }
            CorruptGraph::OffsetEndMismatch { last, entries } => write!(
                f,
                "corrupt graph: final offset {last} != {entries} adjacency entries"
            ),
            CorruptGraph::LengthMismatch { neighbors, weights } => write!(
                f,
                "corrupt graph: {neighbors} neighbors vs {weights} weights"
            ),
            CorruptGraph::OddEntryCount { entries } => write!(
                f,
                "corrupt graph: odd adjacency length {entries} (undirected edges are stored twice)"
            ),
            CorruptGraph::TargetOutOfRange { vertex, target } => write!(
                f,
                "corrupt graph: vertex {vertex} has out-of-range neighbor {target}"
            ),
            CorruptGraph::SelfLoop { vertex } => {
                write!(f, "corrupt graph: self-loop at vertex {vertex}")
            }
            CorruptGraph::UnsortedRow { vertex } => write!(
                f,
                "corrupt graph: adjacency row of vertex {vertex} is not strictly sorted"
            ),
            CorruptGraph::NonFiniteWeight { vertex } => write!(
                f,
                "corrupt graph: non-finite edge weight in row of vertex {vertex}"
            ),
            CorruptGraph::ZeroWeight { vertex } => write!(
                f,
                "corrupt graph: zero edge weight in row of vertex {vertex}"
            ),
        }
    }
}

impl std::error::Error for CorruptGraph {}

/// Validates a CSR triple against every representation invariant of
/// [`SignedGraph`] and returns the `(positive, negative)` **entry** counts
/// (directed, i.e. twice the undirected edge counts).
///
/// Checks: `n + 1` offsets starting at 0, monotone, ending at the adjacency
/// length; parallel neighbor/weight arrays of even length; neighbor ids in
/// range, no self-loops, rows strictly ascending; weights finite and
/// non-zero.  Performs no allocation — safe to run over memory-mapped
/// sections without touching the heap.  Adjacency *symmetry* (each edge
/// present in both endpoint rows) is not checked here; packs cross-check it
/// via their section checksums and writers construct it by construction.
pub(crate) fn validate_csr(
    offsets: &[usize],
    neighbors: &[VertexId],
    weights: &[Weight],
) -> Result<(usize, usize), CorruptGraph> {
    let (&last, _) = offsets.split_last().ok_or(CorruptGraph::EmptyOffsets)?;
    if offsets[0] != 0 {
        return Err(CorruptGraph::NonzeroFirstOffset { first: offsets[0] });
    }
    if neighbors.len() != weights.len() {
        return Err(CorruptGraph::LengthMismatch {
            neighbors: neighbors.len(),
            weights: weights.len(),
        });
    }
    if last != neighbors.len() {
        return Err(CorruptGraph::OffsetEndMismatch {
            last,
            entries: neighbors.len(),
        });
    }
    if !neighbors.len().is_multiple_of(2) {
        return Err(CorruptGraph::OddEntryCount {
            entries: neighbors.len(),
        });
    }
    let n = offsets.len() - 1;
    let mut positive = 0usize;
    let mut negative = 0usize;
    for v in 0..n {
        let start = offsets[v];
        let end = offsets[v + 1];
        if end < start {
            return Err(CorruptGraph::NonMonotoneOffsets { vertex: v });
        }
        // Monotonicity plus the final-offset check bounds every row, but an
        // interior offset past the end would still slice out of range before
        // the *pairwise* check reaches the decreasing step, so bound it here.
        if end > neighbors.len() {
            return Err(CorruptGraph::NonMonotoneOffsets { vertex: v });
        }
        let mut prev: Option<VertexId> = None;
        for &t in &neighbors[start..end] {
            if (t as usize) >= n {
                return Err(CorruptGraph::TargetOutOfRange {
                    vertex: v,
                    target: t,
                });
            }
            if (t as usize) == v {
                return Err(CorruptGraph::SelfLoop { vertex: v });
            }
            if let Some(p) = prev {
                if t <= p {
                    return Err(CorruptGraph::UnsortedRow { vertex: v });
                }
            }
            prev = Some(t);
        }
        for &w in &weights[start..end] {
            if !w.is_finite() {
                return Err(CorruptGraph::NonFiniteWeight { vertex: v });
            }
            if w == 0.0 {
                return Err(CorruptGraph::ZeroWeight { vertex: v });
            }
            if w > 0.0 {
                positive += 1;
            } else {
                negative += 1;
            }
        }
    }
    Ok((positive, negative))
}

/// A reference to one endpoint of an undirected edge, as seen from a fixed source vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// The other endpoint of the edge.
    pub neighbor: VertexId,
    /// The (signed) weight of the edge.
    pub weight: Weight,
}

/// An immutable, undirected, signed-weight graph in CSR (compressed sparse row) form.
///
/// Every undirected edge `(u, v)` with weight `w` is stored twice, once in the adjacency
/// list of `u` and once in that of `v`.  Self-loops are not allowed.  Edge weights are
/// non-zero; zero-weight edges are dropped by [`crate::GraphBuilder`].
///
/// The type plays two roles in the workspace:
///
/// * an ordinary weighted graph (`G1`, `G2`, `G_{D+}`) when all weights are positive, and
/// * the *difference graph* `G_D` of the paper, whose weights may be negative.
#[derive(Debug, Clone, PartialEq)]
pub struct SignedGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors`/`weights` for vertex `v`.
    offsets: CsrColumn<usize>,
    /// Flattened adjacency: neighbor ids.
    neighbors: CsrColumn<VertexId>,
    /// Flattened adjacency: edge weights, parallel to `neighbors`.
    weights: CsrColumn<Weight>,
    /// Number of undirected edges (each counted once).
    num_edges: usize,
    /// Number of undirected edges with strictly positive weight.
    num_positive_edges: usize,
    /// Number of undirected edges with strictly negative weight.
    num_negative_edges: usize,
}

impl SignedGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// This is an internal constructor used by [`crate::GraphBuilder`]; the arrays must
    /// already be consistent (symmetrical adjacency, sorted or unsorted neighbor order).
    pub(crate) fn from_csr(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Self {
        debug_assert_eq!(neighbors.len(), weights.len());
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbors.len());
        let num_pos = weights.iter().filter(|w| **w > 0.0).count();
        let num_neg = weights.iter().filter(|w| **w < 0.0).count();
        debug_assert!(
            neighbors.len().is_multiple_of(2),
            "undirected edges stored twice"
        );
        SignedGraph {
            offsets: offsets.into(),
            neighbors: neighbors.into(),
            weights: weights.into(),
            num_edges: (num_pos + num_neg) / 2,
            num_positive_edges: num_pos / 2,
            num_negative_edges: num_neg / 2,
        }
    }

    /// Assembles a graph from pre-validated CSR columns and directed
    /// positive/negative entry counts — the zero-copy entry point of the
    /// pack reader ([`crate::pack`]).  Callers must have run
    /// [`validate_csr`] over the column contents first.
    pub(crate) fn from_columns(
        offsets: CsrColumn<usize>,
        neighbors: CsrColumn<VertexId>,
        weights: CsrColumn<Weight>,
        positive_entries: usize,
        negative_entries: usize,
    ) -> Self {
        debug_assert_eq!(neighbors.len(), weights.len());
        debug_assert_eq!(positive_entries + negative_entries, neighbors.len());
        SignedGraph {
            offsets,
            neighbors,
            weights,
            num_edges: (positive_entries + negative_entries) / 2,
            num_positive_edges: positive_entries / 2,
            num_negative_edges: negative_entries / 2,
        }
    }

    /// Whether any CSR column aliases memory-mapped pack storage rather than
    /// an owned heap allocation (see [`crate::pack`]).  Reported in serving
    /// stats; mutation transparently copies mapped columns out first.
    pub fn is_pack_backed(&self) -> bool {
        self.offsets.is_mapped() || self.neighbors.is_mapped() || self.weights.is_mapped()
    }

    /// Builds a graph from **untrusted** CSR arrays, validating every
    /// representation invariant.
    ///
    /// The arrays must describe a consistent undirected graph: `n + 1`
    /// monotone offsets starting at zero and ending at the adjacency length,
    /// parallel neighbor/weight arrays of even length, in-range neighbor ids,
    /// no self-loops, rows strictly ascending by neighbor, weights finite and
    /// non-zero.  Violations return [`CorruptGraph`] instead of risking
    /// out-of-bounds panics deep inside a solver — this is the required entry
    /// point for bytes read from disk or the network (memory-mapped packs go
    /// through the same validation in [`crate::pack`]).
    ///
    /// Adjacency symmetry (each undirected edge stored in both endpoint
    /// rows) is **not** verified — an asymmetric input yields a graph whose
    /// edge counts are halved entry counts, never unsoundness.  Trusted
    /// callers that maintain the invariants by construction should use
    /// [`Self::from_raw_csr_unchecked`], which skips the O(n + m) scan.
    pub fn from_raw_csr(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Result<Self, CorruptGraph> {
        let (positive, negative) = validate_csr(&offsets, &neighbors, &weights)?;
        Ok(SignedGraph {
            offsets: offsets.into(),
            neighbors: neighbors.into(),
            weights: weights.into(),
            num_edges: (positive + negative) / 2,
            num_positive_edges: positive / 2,
            num_negative_edges: negative / 2,
        })
    }

    /// Builds a graph directly from CSR arrays, recounting the edge
    /// statistics but skipping invariant validation (debug assertions only).
    ///
    /// This is the zero-cost constructor of callers that maintain recycled
    /// CSR buffers whose invariants hold by construction (the α-sweep's
    /// in-place reweighting); untrusted input must go through
    /// [`Self::from_raw_csr`] instead, and everything else through
    /// [`crate::GraphBuilder`].
    pub fn from_raw_csr_unchecked(
        offsets: Vec<usize>,
        neighbors: Vec<VertexId>,
        weights: Vec<Weight>,
    ) -> Self {
        debug_assert!(!offsets.is_empty(), "offsets must have n + 1 entries");
        debug_assert_eq!(offsets[0], 0);
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(
            weights.iter().all(|&w| w != 0.0),
            "zero weights are dropped"
        );
        SignedGraph::from_csr(offsets, neighbors, weights)
    }

    /// Decomposes the graph into its CSR arrays `(offsets, neighbors, weights)`, the
    /// inverse of [`Self::from_raw_csr`].  Used to recycle buffers across rebuilds.
    /// Pack-backed columns are copied into owned `Vec`s here.
    pub fn into_raw_csr(self) -> (Vec<usize>, Vec<VertexId>, Vec<Weight>) {
        (
            self.offsets.into_vec(),
            self.neighbors.into_vec(),
            self.weights.into_vec(),
        )
    }

    /// Creates an empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        SignedGraph {
            offsets: vec![0; n + 1].into(),
            neighbors: Vec::new().into(),
            weights: Vec::new().into(),
            num_edges: 0,
            num_positive_edges: 0,
            num_negative_edges: 0,
        }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|` (each edge counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of undirected edges with strictly positive weight (`m+` in the paper).
    #[inline]
    pub fn num_positive_edges(&self) -> usize {
        self.num_positive_edges
    }

    /// Number of undirected edges with strictly negative weight (`m−` in the paper).
    #[inline]
    pub fn num_negative_edges(&self) -> usize {
        self.num_negative_edges
    }

    /// Returns `true` if the graph has no edges.
    #[inline]
    pub fn is_edgeless(&self) -> bool {
        self.num_edges == 0
    }

    /// Degree (number of incident edges) of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Weighted degree of `v` in the full graph: `W(v; G) = Σ_{(v,u) ∈ E} A(v,u)`.
    #[inline]
    pub fn weighted_degree(&self, v: VertexId) -> Weight {
        self.neighbor_slices(v).1.iter().sum()
    }

    /// Iterates over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Iterates over the neighbors of `v` together with edge weights.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> NeighborIter<'_> {
        let (nbrs, ws) = self.neighbor_slices(v);
        NeighborIter {
            neighbors: nbrs.iter(),
            weights: ws.iter(),
        }
    }

    /// Raw neighbor / weight slices of vertex `v` (parallel arrays).
    #[inline]
    pub fn neighbor_slices(&self, v: VertexId) -> (&[VertexId], &[Weight]) {
        let v = v as usize;
        let range = self.offsets[v]..self.offsets[v + 1];
        (&self.neighbors[range.clone()], &self.weights[range])
    }

    /// Iterates every undirected edge `(u, v, w)` exactly once, with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |e| u < e.neighbor)
                .map(move |e| (u, e.neighbor, e.weight))
        })
    }

    /// Looks up the weight of the edge `(u, v)`, or `None` if the edge does not exist.
    ///
    /// Linear scan of the smaller adjacency list; adjacency lists are sorted by the
    /// builder so a binary search is used when the list is long.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        if u == v {
            return None;
        }
        let (from, to) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let (nbrs, ws) = self.neighbor_slices(from);
        if nbrs.len() >= 16 {
            match nbrs.binary_search(&to) {
                Ok(i) => Some(ws[i]),
                Err(_) => None,
            }
        } else {
            nbrs.iter().position(|&x| x == to).map(|i| ws[i])
        }
    }

    /// Returns `true` if vertices `u` and `v` are adjacent.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Total weight of all edges of the graph, `W(V) = Σ_{(u,v) ∈ E} A(u,v)`.
    pub fn total_weight(&self) -> Weight {
        self.weights.iter().sum::<Weight>() / 2.0
    }

    /// Maximum edge weight, or `None` for an edgeless graph.
    pub fn max_edge_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().fold(None, |acc, w| match acc {
            None => Some(w),
            Some(a) => Some(a.max(w)),
        })
    }

    /// Minimum edge weight, or `None` for an edgeless graph.
    pub fn min_edge_weight(&self) -> Option<Weight> {
        self.weights.iter().copied().fold(None, |acc, w| match acc {
            None => Some(w),
            Some(a) => Some(a.min(w)),
        })
    }

    /// The edge with the maximum weight, `(u, v, w)`, or `None` for an edgeless graph.
    pub fn max_weight_edge(&self) -> Option<(VertexId, VertexId, Weight)> {
        let mut best: Option<(VertexId, VertexId, Weight)> = None;
        for (u, v, w) in self.edges() {
            match best {
                None => best = Some((u, v, w)),
                Some((_, _, bw)) if w > bw => best = Some((u, v, w)),
                _ => {}
            }
        }
        best
    }

    /// Average edge weight over all edges, 0.0 for an edgeless graph.
    pub fn average_edge_weight(&self) -> Weight {
        if self.num_edges == 0 {
            0.0
        } else {
            self.total_weight() / self.num_edges as Weight
        }
    }

    // ------------------------------------------------------------------
    // Induced-subgraph metrics
    //
    // The paper's notation (Table I) defines the total degree of a subset as
    //   W(S) = Σ_{(u,v) ∈ E(S)} A(u,v) = Σ_{u ∈ S} W(u; G(S)),
    // where E(S) contains *both orientations* of every undirected edge, i.e. every edge
    // inside S contributes twice.  We follow that convention so the reported numbers
    // (average degree ρ(S) = W(S)/|S|, edge density W(S)/|S|²) match the paper's tables.
    // ------------------------------------------------------------------

    /// Total degree of the induced subgraph `G(S)`:
    /// `W(S) = Σ_{u ∈ S} W(u; G(S))` — every edge inside `S` counted **twice**, exactly
    /// as in the paper.
    pub fn total_degree(&self, subset: &[VertexId]) -> Weight {
        let marks = VertexSubset::from_slice(self.num_vertices(), subset);
        self.total_degree_marked(&marks)
    }

    /// [`Self::total_degree`] with a pre-built membership set (avoids re-allocation in
    /// hot loops).
    pub fn total_degree_marked(&self, subset: &VertexSubset) -> Weight {
        let mut sum = 0.0;
        for &u in subset.iter() {
            let (nbrs, ws) = self.neighbor_slices(u);
            for (&v, &w) in nbrs.iter().zip(ws) {
                if subset.contains(v) {
                    sum += w;
                }
            }
        }
        sum
    }

    /// Sum of edge weights inside `G(S)` with every edge counted **once**
    /// (i.e. `W(S)/2`).  Provided for callers that want the "number of collaborations"
    /// style total rather than the degree-sum.
    pub fn total_edge_weight(&self, subset: &[VertexId]) -> Weight {
        self.total_degree(subset) / 2.0
    }

    /// Average degree of the induced subgraph `ρ(S) = W(S)/|S|`.
    ///
    /// Returns 0.0 for an empty subset (consistent with the paper's convention that a
    /// single vertex has density 0).
    pub fn average_degree(&self, subset: &[VertexId]) -> Weight {
        if subset.is_empty() {
            return 0.0;
        }
        self.total_degree(subset) / subset.len() as Weight
    }

    /// Edge density of the induced subgraph `W(S)/|S|²`, the discrete analogue of graph
    /// affinity used in the paper's result tables.
    pub fn edge_density(&self, subset: &[VertexId]) -> Weight {
        if subset.is_empty() {
            return 0.0;
        }
        self.total_degree(subset) / (subset.len() as Weight * subset.len() as Weight)
    }

    /// Weighted degree of `v` restricted to the induced subgraph `G(S)`:
    /// `W(v; G(S)) = Σ_{(v,u) ∈ E(S)} A(v,u)`.
    pub fn weighted_degree_in(&self, v: VertexId, subset: &VertexSubset) -> Weight {
        let (nbrs, ws) = self.neighbor_slices(v);
        nbrs.iter()
            .zip(ws)
            .filter(|(n, _)| subset.contains(**n))
            .map(|(_, w)| *w)
            .sum()
    }

    /// Number of edges inside the induced subgraph `G(S)`.
    pub fn induced_edge_count(&self, subset: &[VertexId]) -> usize {
        let marks = VertexSubset::from_slice(self.num_vertices(), subset);
        let mut cnt = 0usize;
        for &u in subset {
            let (nbrs, _) = self.neighbor_slices(u);
            cnt += nbrs.iter().filter(|&&v| marks.contains(v)).count();
        }
        cnt / 2
    }

    /// Returns `true` if the induced subgraph `G(S)` is a clique whose edges all have
    /// strictly positive weight ("positive clique" in the paper's terminology).
    ///
    /// A subset of size 0 or 1 is considered a positive clique (it trivially has no
    /// negative edge and no missing edge).
    pub fn is_positive_clique(&self, subset: &[VertexId]) -> bool {
        let marks = VertexSubset::from_slice(self.num_vertices(), subset);
        self.is_positive_clique_marked(&marks)
    }

    /// [`Self::is_positive_clique`] with a pre-built membership set (avoids
    /// re-allocation in hot reporting loops).
    pub fn is_positive_clique_marked(&self, subset: &VertexSubset) -> bool {
        let k = subset.len();
        if k <= 1 {
            return true;
        }
        for &u in subset.iter() {
            let (nbrs, ws) = self.neighbor_slices(u);
            let mut pos_inside = 0usize;
            for (&v, &w) in nbrs.iter().zip(ws) {
                if subset.contains(v) {
                    if w <= 0.0 {
                        return false;
                    }
                    pos_inside += 1;
                }
            }
            if pos_inside != k - 1 {
                return false;
            }
        }
        true
    }

    /// Returns `true` if the induced subgraph `G(S)` is a clique (ignoring weights).
    pub fn is_clique(&self, subset: &[VertexId]) -> bool {
        if subset.len() <= 1 {
            return true;
        }
        let marks = VertexSubset::from_slice(self.num_vertices(), subset);
        let k = subset.len();
        subset.iter().all(|&u| {
            let (nbrs, _) = self.neighbor_slices(u);
            nbrs.iter().filter(|&&v| marks.contains(v)).count() == k - 1
        })
    }

    /// Extracts the induced subgraph on `subset` as a standalone [`SignedGraph`].
    ///
    /// Returns the new graph together with the mapping `new id -> original id`
    /// (the i-th entry is the original id of new vertex `i`).
    pub fn induced_subgraph(&self, subset: &[VertexId]) -> (SignedGraph, Vec<VertexId>) {
        let mut order: Vec<VertexId> = subset.to_vec();
        order.sort_unstable();
        order.dedup();
        let mut remap = vec![VertexId::MAX; self.num_vertices()];
        for (new, &old) in order.iter().enumerate() {
            remap[old as usize] = new as VertexId;
        }
        let mut builder = crate::GraphBuilder::new(order.len());
        for &old_u in &order {
            let (nbrs, ws) = self.neighbor_slices(old_u);
            for (&old_v, &w) in nbrs.iter().zip(ws) {
                if old_u < old_v && remap[old_v as usize] != VertexId::MAX {
                    builder.add_edge(remap[old_u as usize], remap[old_v as usize], w);
                }
            }
        }
        (builder.build(), order)
    }

    /// Builds `G_{D+}`: the subgraph of this graph containing only the edges with
    /// strictly positive weight (all vertices are kept).
    pub fn positive_part(&self) -> SignedGraph {
        self.filter_edges(|w| w > 0.0)
    }

    /// Builds the graph containing only edges with strictly negative weight, with the
    /// weights negated (so the result has positive weights).  Useful for mining the
    /// "opposite direction" contrast.
    pub fn negated_negative_part(&self) -> SignedGraph {
        let mut builder = crate::GraphBuilder::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            if w < 0.0 {
                builder.add_edge(u, v, -w);
            }
        }
        builder.build()
    }

    /// Returns a copy of the graph with every edge weight negated (turns the Emerging
    /// difference graph into the Disappearing one and vice versa).
    pub fn negated(&self) -> SignedGraph {
        let mut g = self.clone();
        for w in g.weights.make_mut() {
            *w = -*w;
        }
        std::mem::swap(&mut g.num_positive_edges, &mut g.num_negative_edges);
        g
    }

    /// Returns a copy of the graph with all edges incident to `vertices` removed (the
    /// vertex set itself is unchanged, so vertex ids stay stable).  Used by the top-k
    /// contrast-subgraph miner to exclude already-reported subgraphs.
    pub fn without_vertices(&self, vertices: &[VertexId]) -> SignedGraph {
        let exclude = VertexSubset::from_slice(self.num_vertices(), vertices);
        let mut builder = crate::GraphBuilder::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            if !exclude.contains(u) && !exclude.contains(v) {
                builder.add_edge(u, v, w);
            }
        }
        builder.build()
    }

    /// Removes all edges incident to `vertices` **in place**, compacting the
    /// CSR arrays without allocating a new graph (the vertex set itself is
    /// unchanged, so vertex ids stay stable — same contract as
    /// [`Self::without_vertices`]).
    ///
    /// This is the peeling primitive of the top-k miners: peeling `k`
    /// subgraphs out of one difference graph touches each remaining adjacency
    /// entry once per round instead of rebuilding (re-bucketing, re-sorting)
    /// a fresh graph per round.
    pub fn remove_vertices_in_place(&mut self, vertices: &[VertexId]) {
        if vertices.is_empty() {
            return;
        }
        let n = self.num_vertices();
        let exclude = VertexSubset::from_slice(n, vertices);
        // Pack-backed columns are copied out once here (copy-on-write); the
        // compaction below then runs in place as before.
        let offsets = self.offsets.make_mut();
        let neighbors = self.neighbors.make_mut();
        let weights = self.weights.make_mut();
        let mut old_start = offsets[0];
        let mut write = 0usize;
        for v in 0..n {
            let old_end = offsets[v + 1];
            if !exclude.contains(v as VertexId) {
                // `write` never overtakes the read cursor, so rows can be
                // compacted front-to-back within the same buffers.
                for read in old_start..old_end {
                    let neighbor = neighbors[read];
                    if !exclude.contains(neighbor) {
                        neighbors[write] = neighbor;
                        weights[write] = weights[read];
                        write += 1;
                    }
                }
            }
            offsets[v + 1] = write;
            old_start = old_end;
        }
        neighbors.truncate(write);
        weights.truncate(write);
        let num_pos = weights.iter().filter(|w| **w > 0.0).count();
        let num_neg = weights.len() - num_pos;
        self.num_positive_edges = num_pos / 2;
        self.num_negative_edges = num_neg / 2;
        self.num_edges = self.num_positive_edges + self.num_negative_edges;
    }

    /// Returns the subgraph keeping only edges whose weight satisfies `keep`.
    pub fn filter_edges<F: Fn(Weight) -> bool>(&self, keep: F) -> SignedGraph {
        let mut builder = crate::GraphBuilder::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            if keep(w) {
                builder.add_edge(u, v, w);
            }
        }
        builder.build()
    }

    /// Returns a copy of the graph with every edge weight transformed by `f`; edges whose
    /// transformed weight is zero are dropped.
    pub fn map_weights<F: Fn(Weight) -> Weight>(&self, f: F) -> SignedGraph {
        let mut builder = crate::GraphBuilder::new(self.num_vertices());
        for (u, v, w) in self.edges() {
            let new_w = f(w);
            if new_w != 0.0 {
                builder.add_edge(u, v, new_w);
            }
        }
        builder.build()
    }

    /// The set `T_u` of the paper: `u` together with all of its neighbors ("ego net").
    pub fn ego_net(&self, u: VertexId) -> Vec<VertexId> {
        let mut t: Vec<VertexId> = Vec::with_capacity(self.degree(u) + 1);
        t.push(u);
        t.extend(self.neighbors(u).map(|e| e.neighbor));
        t.sort_unstable();
        t.dedup();
        t
    }
}

/// Iterator over `(neighbor, weight)` pairs of a vertex, yielding [`EdgeRef`]s.
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    neighbors: std::slice::Iter<'a, VertexId>,
    weights: std::slice::Iter<'a, Weight>,
}

impl<'a> Iterator for NeighborIter<'a> {
    type Item = EdgeRef;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match (self.neighbors.next(), self.weights.next()) {
            (Some(&n), Some(&w)) => Some(EdgeRef {
                neighbor: n,
                weight: w,
            }),
            _ => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.neighbors.size_hint()
    }
}

impl<'a> ExactSizeIterator for NeighborIter<'a> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// The example difference graph of Fig. 1 in the paper:
    /// G1 edges: (1,2)=?, ... we use the GD from the figure directly:
    /// GD: (v1,v2)=1, (v1,v4)=-2, (v3,v4)=3, (v3,v5)=-1, (v4,v5)=2  (0-indexed below)
    fn fig1_gd() -> SignedGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 3, -2.0);
        b.add_edge(2, 3, 3.0);
        b.add_edge(2, 4, -1.0);
        b.add_edge(3, 4, 2.0);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = fig1_gd();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.num_positive_edges(), 3);
        assert_eq!(g.num_negative_edges(), 2);
        assert_eq!(g.degree(3), 3);
        assert!((g.weighted_degree(3) - 3.0).abs() < 1e-12); // -2 + 3 + 2
        assert!((g.weighted_degree(0) - (-1.0)).abs() < 1e-12); // 1 - 2
    }

    #[test]
    fn remove_vertices_in_place_matches_without_vertices() {
        // Deterministic pseudo-random signed graph.
        let mut state = 0x5eed_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (u32::MAX as f64 / 2.0) - 1.0
        };
        let n = 30;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                let r = next();
                if r.abs() > 0.6 {
                    b.add_edge(u, v, r * 4.0);
                }
            }
        }
        let g = b.build();
        for removal in [
            vec![],
            vec![0],
            vec![3, 7, 11, 29],
            (0..15).collect::<Vec<_>>(),
        ] {
            let copied = g.without_vertices(&removal);
            let mut in_place = g.clone();
            in_place.remove_vertices_in_place(&removal);
            assert_eq!(in_place.num_edges(), copied.num_edges());
            assert_eq!(in_place.num_positive_edges(), copied.num_positive_edges());
            assert_eq!(in_place.num_negative_edges(), copied.num_negative_edges());
            assert_eq!(in_place.num_vertices(), g.num_vertices());
            for (u, v, w) in copied.edges() {
                assert_eq!(in_place.edge_weight(u, v), Some(w));
            }
            for (u, v, _) in in_place.edges() {
                assert!(copied.edge_weight(u, v).is_some(), "extra edge ({u},{v})");
            }
            for &v in &removal {
                assert_eq!(in_place.degree(v), 0);
            }
        }
    }

    #[test]
    fn remove_vertices_in_place_is_idempotent() {
        let mut g = fig1_gd();
        g.remove_vertices_in_place(&[3]);
        assert_eq!(g.num_edges(), 2); // (0,1) and (2,4) survive
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(2, 4), Some(-1.0));
        let before = g.clone();
        g.remove_vertices_in_place(&[3]);
        assert_eq!(g, before);
        g.remove_vertices_in_place(&[0, 1, 2, 4]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn edge_lookup() {
        let g = fig1_gd();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 0), Some(1.0));
        assert_eq!(g.edge_weight(0, 3), Some(-2.0));
        assert_eq!(g.edge_weight(1, 2), None);
        assert_eq!(g.edge_weight(2, 2), None);
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(1, 4));
    }

    #[test]
    fn totals() {
        let g = fig1_gd();
        assert!((g.total_weight() - 3.0).abs() < 1e-12);
        assert_eq!(g.max_edge_weight(), Some(3.0));
        assert_eq!(g.min_edge_weight(), Some(-2.0));
        let (u, v, w) = g.max_weight_edge().unwrap();
        assert_eq!((u, v), (2, 3));
        assert!((w - 3.0).abs() < 1e-12);
        assert!((g.average_edge_weight() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn induced_metrics() {
        let g = fig1_gd();
        // S = {v3, v4, v5} = {2, 3, 4}: edges (2,3)=3, (2,4)=-1, (3,4)=2
        // W(S) (degree-sum convention) = 2 * (3 - 1 + 2) = 8
        let s = vec![2, 3, 4];
        assert!((g.total_degree(&s) - 8.0).abs() < 1e-12);
        assert!((g.total_edge_weight(&s) - 4.0).abs() < 1e-12);
        assert!((g.average_degree(&s) - 8.0 / 3.0).abs() < 1e-12);
        assert!((g.edge_density(&s) - 8.0 / 9.0).abs() < 1e-12);
        assert_eq!(g.induced_edge_count(&s), 3);
        // S = {2, 3}: single positive edge → positive clique
        assert!(g.is_positive_clique(&[2, 3]));
        assert!(!g.is_positive_clique(&s)); // contains a negative edge
        assert!(g.is_clique(&s));
        assert!(!g.is_clique(&[0, 1, 2]));
        // empty / singleton conventions
        assert_eq!(g.average_degree(&[]), 0.0);
        assert_eq!(g.average_degree(&[1]), 0.0);
        assert!(g.is_positive_clique(&[1]));
    }

    #[test]
    fn positive_part_and_negation() {
        let g = fig1_gd();
        let gp = g.positive_part();
        assert_eq!(gp.num_vertices(), 5);
        assert_eq!(gp.num_edges(), 3);
        assert_eq!(gp.num_negative_edges(), 0);
        assert_eq!(gp.edge_weight(0, 3), None);

        let gn = g.negated();
        assert_eq!(gn.num_positive_edges(), 2);
        assert_eq!(gn.num_negative_edges(), 3);
        assert_eq!(gn.edge_weight(2, 3), Some(-3.0));

        let gneg = g.negated_negative_part();
        assert_eq!(gneg.num_edges(), 2);
        assert_eq!(gneg.edge_weight(0, 3), Some(2.0));
    }

    #[test]
    fn induced_subgraph_extraction() {
        let g = fig1_gd();
        let (sub, map) = g.induced_subgraph(&[2, 3, 4]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![2, 3, 4]);
        // old (2,3)=3 → new (0,1)=3
        assert_eq!(sub.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn ego_net() {
        let g = fig1_gd();
        assert_eq!(g.ego_net(3), vec![0, 2, 3, 4]);
        assert_eq!(g.ego_net(1), vec![0, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = SignedGraph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_edgeless());
        assert_eq!(g.max_edge_weight(), None);
        assert_eq!(g.average_edge_weight(), 0.0);
        assert_eq!(g.max_weight_edge(), None);
    }

    #[test]
    fn without_vertices_drops_incident_edges() {
        let g = fig1_gd();
        let pruned = g.without_vertices(&[3]);
        assert_eq!(pruned.num_vertices(), 5);
        assert_eq!(pruned.num_edges(), 2); // only (0,1) and (2,4) survive
        assert_eq!(pruned.edge_weight(2, 3), None);
        assert_eq!(pruned.edge_weight(0, 1), Some(1.0));
        // Removing nothing is the identity on the edge set.
        let same = g.without_vertices(&[]);
        assert_eq!(same.num_edges(), g.num_edges());
    }

    #[test]
    fn map_and_filter() {
        let g = fig1_gd();
        let doubled = g.map_weights(|w| 2.0 * w);
        assert_eq!(doubled.edge_weight(2, 3), Some(6.0));
        let clamped = g.map_weights(|w| if w > 2.0 { 2.0 } else { w });
        assert_eq!(clamped.edge_weight(2, 3), Some(2.0));
        let only_big = g.filter_edges(|w| w.abs() >= 2.0);
        assert_eq!(only_big.num_edges(), 3);
    }
}

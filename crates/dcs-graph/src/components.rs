//! Connected components, both of the whole graph and of induced subgraphs.
//!
//! The DCS algorithms need connectivity information in two places:
//!
//! * Property 1 / Property 2 of the paper show that an optimal density-contrast subgraph
//!   can always be taken connected in `G_D`; `DCSGreedy` (Algorithm 2, line 9) therefore
//!   refines a disconnected candidate to its best connected component, and
//! * effectiveness experiments verify that returned subgraphs are connected.

use crate::{SignedGraph, VertexId, VertexSubset};

/// Result of a connected-components computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentLabels {
    /// `labels[v]` is the component id of vertex `v` (ids are dense, `0..num_components`),
    /// or `u32::MAX` when the computation was restricted to a subset and `v` is outside it.
    pub labels: Vec<u32>,
    /// Number of components found.
    pub num_components: usize,
}

impl ComponentLabels {
    /// Groups the vertices of each component into a `Vec` of vertex lists.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut out = vec![Vec::new(); self.num_components];
        for (v, &c) in self.labels.iter().enumerate() {
            if c != u32::MAX {
                out[c as usize].push(v as VertexId);
            }
        }
        out
    }

    /// Returns the vertices of the largest component.
    pub fn largest(&self) -> Vec<VertexId> {
        self.groups()
            .into_iter()
            .max_by_key(|g| g.len())
            .unwrap_or_default()
    }
}

/// Connected components of the whole graph (isolated vertices form singleton components).
pub fn connected_components(g: &SignedGraph) -> ComponentLabels {
    let n = g.num_vertices();
    let all: Vec<VertexId> = (0..n as VertexId).collect();
    connected_components_of(g, &all)
}

/// Connected components of the subgraph induced by `subset`.
///
/// Vertices outside the subset get label `u32::MAX`.
pub fn connected_components_of(g: &SignedGraph, subset: &[VertexId]) -> ComponentLabels {
    let n = g.num_vertices();
    let members = VertexSubset::from_slice(n, subset);
    let mut labels = vec![u32::MAX; n];
    let mut num_components = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for &start in members.iter() {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = num_components;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for e in g.neighbors(u) {
                let v = e.neighbor;
                if members.contains(v) && labels[v as usize] == u32::MAX {
                    labels[v as usize] = num_components;
                    stack.push(v);
                }
            }
        }
        num_components += 1;
    }
    ComponentLabels {
        labels,
        num_components: num_components as usize,
    }
}

/// Returns `true` if the subgraph induced by `subset` is connected (the empty subset and
/// singletons are considered connected).
pub fn is_connected(g: &SignedGraph, subset: &[VertexId]) -> bool {
    if subset.len() <= 1 {
        return true;
    }
    connected_components_of(g, subset).num_components == 1
}

/// [`is_connected`] with caller-provided membership and scratch buffers: `members`
/// is the (pre-built) subset, `visited` and `stack` are reusable scratch.  Performs
/// no allocation once the scratch has grown to the universe size — the connectivity
/// check of the solver hot path.
pub fn is_connected_scratch(
    g: &SignedGraph,
    members: &VertexSubset,
    visited: &mut VertexSubset,
    stack: &mut Vec<VertexId>,
) -> bool {
    if members.len() <= 1 {
        return true;
    }
    visited.reset_universe(g.num_vertices());
    stack.clear();
    let start = *members.iter().next().expect("non-empty subset");
    visited.insert(start);
    stack.push(start);
    let mut seen = 1usize;
    while let Some(u) = stack.pop() {
        for e in g.neighbors(u) {
            let v = e.neighbor;
            if members.contains(v) && visited.insert(v) {
                seen += 1;
                stack.push(v);
            }
        }
    }
    seen == members.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles() -> SignedGraph {
        // {0,1,2} triangle and {3,4,5} triangle, vertex 6 isolated
        GraphBuilder::from_edges(
            7,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (3, 4, -1.0),
                (4, 5, 2.0),
                (3, 5, 1.0),
            ],
        )
    }

    #[test]
    fn whole_graph_components() {
        let g = two_triangles();
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 3);
        let groups = cc.groups();
        let mut sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 3, 3]);
        assert_eq!(cc.largest().len(), 3);
    }

    #[test]
    fn induced_components() {
        let g = two_triangles();
        // Induce on {0, 2, 3, 4}: {0,2} connected via edge, {3,4} connected via edge
        let cc = connected_components_of(&g, &[0, 2, 3, 4]);
        assert_eq!(cc.num_components, 2);
        assert_eq!(cc.labels[1], u32::MAX);
        assert_eq!(cc.labels[0], cc.labels[2]);
        assert_eq!(cc.labels[3], cc.labels[4]);
        assert_ne!(cc.labels[0], cc.labels[3]);
    }

    #[test]
    fn scratch_connectivity_matches_plain() {
        let g = two_triangles();
        let mut visited = VertexSubset::new(0);
        let mut stack = Vec::new();
        for subset in [
            vec![0, 1, 2],
            vec![0, 1, 3],
            vec![6],
            vec![],
            vec![3, 4, 5, 6],
            (0..7).collect::<Vec<_>>(),
        ] {
            let members = VertexSubset::from_slice(g.num_vertices(), &subset);
            assert_eq!(
                is_connected_scratch(&g, &members, &mut visited, &mut stack),
                is_connected(&g, &subset),
                "subset {subset:?}"
            );
        }
    }

    #[test]
    fn connectivity_predicate() {
        let g = two_triangles();
        assert!(is_connected(&g, &[0, 1, 2]));
        assert!(!is_connected(&g, &[0, 1, 3]));
        assert!(is_connected(&g, &[6]));
        assert!(is_connected(&g, &[]));
    }

    #[test]
    fn empty_graph() {
        let g = SignedGraph::empty(4);
        let cc = connected_components(&g);
        assert_eq!(cc.num_components, 4);
        assert!(is_connected(&g, &[2]));
        assert!(!is_connected(&g, &[1, 2]));
    }
}

//! Incrementally maintained signed graphs with cheap CSR snapshots.
//!
//! [`SignedGraph`] is immutable by design: the mining algorithms want packed,
//! cache-friendly CSR adjacency.  Streaming workloads, however, apply millions
//! of single-edge weight updates between mines, and rebuilding a CSR graph
//! from scratch for every snapshot is `O(m)` hashing and sorting regardless of
//! how few edges actually changed.
//!
//! [`DeltaGraph`] bridges the two worlds:
//!
//! * mutation is **O(1) amortized** per update — per-vertex adjacency hash
//!   maps ([`DeltaGraph::set_weight`], [`DeltaGraph::add_weight`]),
//! * every mutation that changes the edge set bumps a monotone
//!   [`DeltaGraph::version`] and marks both endpoints **dirty**,
//! * [`DeltaGraph::snapshot`] packs the current state into an
//!   `Arc<SignedGraph>`.  When the version is unchanged since the last
//!   snapshot the cached `Arc` is returned as-is (pointer-equal, zero work);
//!   otherwise only the dirty adjacency rows are re-collected and re-sorted —
//!   clean rows are copied verbatim from the previous snapshot's CSR arrays.
//!
//! Consumers hold the returned `Arc<SignedGraph>` for as long as they need it
//! (e.g. a mining worker solving outside a session lock) without blocking
//! further mutation.

use std::sync::Arc;

use rustc_hash::FxHashMap;

use crate::{SignedGraph, VertexId, Weight};

/// A mutable, undirected, signed-weight graph optimised for incremental
/// updates and repeated CSR snapshots.
///
/// The vertex set is fixed at construction; self-loops are rejected and
/// weights of exactly `0.0` mean "no edge" (matching [`crate::GraphBuilder`]'s
/// convention that the difference graph only contains edges with `D(u,v) ≠ 0`).
#[derive(Debug, Clone, Default)]
pub struct DeltaGraph {
    /// Per-vertex adjacency: `rows[u][v]` is the weight of edge `(u, v)`.
    /// Symmetric (every edge is stored in both endpoint rows); zero weights
    /// are never stored.
    rows: Vec<FxHashMap<VertexId, Weight>>,
    /// Number of undirected edges (each counted once).
    num_edges: usize,
    /// Monotone counter, bumped on every mutation that changed a weight.
    version: u64,
    /// Vertices whose adjacency row changed since the last snapshot.
    dirty: Vec<bool>,
    dirty_list: Vec<VertexId>,
    /// The last snapshot and the version it was taken at.
    cached: Option<(u64, Arc<SignedGraph>)>,
}

impl DeltaGraph {
    /// Creates an edgeless delta graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        DeltaGraph {
            rows: vec![FxHashMap::default(); n],
            num_edges: 0,
            version: 0,
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            cached: None,
        }
    }

    /// Creates a delta graph holding the same edges as `g`.
    pub fn from_graph(g: &SignedGraph) -> Self {
        let n = g.num_vertices();
        let mut rows: Vec<FxHashMap<VertexId, Weight>> = vec![FxHashMap::default(); n];
        for v in 0..n as VertexId {
            let (nbrs, ws) = g.neighbor_slices(v);
            let row = &mut rows[v as usize];
            row.reserve(nbrs.len());
            for (&nb, &w) in nbrs.iter().zip(ws) {
                row.insert(nb, w);
            }
        }
        DeltaGraph {
            rows,
            num_edges: g.num_edges(),
            version: 0,
            dirty: vec![false; n],
            dirty_list: Vec::new(),
            cached: None,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.rows.len()
    }

    /// Number of undirected edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Monotone version counter: bumped once per mutation that actually
    /// changed an edge weight.  Two equal versions imply an identical edge
    /// set, which is what makes [`Self::snapshot`] cacheable.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Degree (number of incident edges) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.rows[v as usize].len()
    }

    /// Current weight of edge `(u, v)`, or `None` if absent.
    pub fn weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        if u == v {
            return None;
        }
        self.rows.get(u as usize)?.get(&v).copied()
    }

    /// Sets the weight of edge `(u, v)` to exactly `w` (`0.0` removes the
    /// edge).  Returns `true` if the graph changed — setting an edge to the
    /// weight it already has (or removing an absent edge) is a no-op that
    /// does **not** bump the version.
    ///
    /// # Panics
    ///
    /// Panics on self-loops and out-of-range endpoints; callers validate
    /// their input (the streaming layer drops such updates before they reach
    /// the graph).
    pub fn set_weight(&mut self, u: VertexId, v: VertexId, w: Weight) -> bool {
        assert!(u != v, "self-loops are not allowed");
        let n = self.num_vertices();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range for {n} vertices"
        );
        let old = self.rows[u as usize].get(&v).copied();
        if w == 0.0 {
            if old.is_none() {
                return false;
            }
            self.rows[u as usize].remove(&v);
            self.rows[v as usize].remove(&u);
            self.num_edges -= 1;
        } else {
            if old == Some(w) {
                return false;
            }
            self.rows[u as usize].insert(v, w);
            self.rows[v as usize].insert(u, w);
            if old.is_none() {
                self.num_edges += 1;
            }
        }
        self.mark_dirty(u);
        self.mark_dirty(v);
        self.version += 1;
        true
    }

    /// Adds `delta` to the weight of edge `(u, v)`; a resulting weight of
    /// exactly `0.0` removes the edge.  Returns the new weight.  Same panics
    /// and no-op semantics as [`Self::set_weight`].
    pub fn add_weight(&mut self, u: VertexId, v: VertexId, delta: Weight) -> Weight {
        let new = self.weight(u, v).unwrap_or(0.0) + delta;
        self.set_weight(u, v, new);
        new
    }

    /// Iterates every undirected edge `(u, v, w)` exactly once, with `u < v`.
    ///
    /// Iteration order within a row is arbitrary (hash order); use
    /// [`Self::snapshot`] when a deterministic, sorted view is needed.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        self.rows.iter().enumerate().flat_map(|(u, row)| {
            let u = u as VertexId;
            row.iter()
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, &w)| (u, v, w))
        })
    }

    /// Packs the current state into an immutable CSR [`SignedGraph`].
    ///
    /// * If nothing changed since the last snapshot, the cached `Arc` is
    ///   returned — **pointer-equal** to the previous one, no allocation.
    /// * Otherwise a new CSR graph is assembled: adjacency rows of vertices
    ///   untouched since the last snapshot are copied verbatim from its
    ///   arrays, and only dirty rows are re-collected from the hash maps and
    ///   re-sorted.  For a batch touching `k` of `n` vertices this costs
    ///   `O(n + m)` in memcpy but only `O(Σ_{dirty v} deg(v) · log deg(v))`
    ///   in hashing/sorting — the dominant cost of a from-scratch rebuild.
    pub fn snapshot(&mut self) -> Arc<SignedGraph> {
        if let Some((version, snap)) = &self.cached {
            if *version == self.version {
                return Arc::clone(snap);
            }
        }
        let mut rebuild_span = dcs_obs::trace::span(dcs_obs::trace::Phase::SnapshotRebuild);
        rebuild_span.set_units(self.dirty_list.len() as u64);
        let n = self.num_vertices();
        let prev = self.cached.take().map(|(_, snap)| snap);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for row in &self.rows {
            total += row.len();
            offsets.push(total);
        }
        let mut neighbors: Vec<VertexId> = Vec::with_capacity(total);
        let mut weights: Vec<Weight> = Vec::with_capacity(total);
        let mut scratch: Vec<(VertexId, Weight)> = Vec::new();
        for v in 0..n {
            match prev.as_deref().filter(|_| !self.dirty[v]) {
                Some(prev) => {
                    // Clean row: bytewise identical to the previous snapshot.
                    let (nbrs, ws) = prev.neighbor_slices(v as VertexId);
                    neighbors.extend_from_slice(nbrs);
                    weights.extend_from_slice(ws);
                }
                None => {
                    scratch.clear();
                    scratch.extend(self.rows[v].iter().map(|(&nb, &w)| (nb, w)));
                    scratch.sort_unstable_by_key(|pair| pair.0);
                    for &(nb, w) in &scratch {
                        neighbors.push(nb);
                        weights.push(w);
                    }
                }
            }
        }
        for v in self.dirty_list.drain(..) {
            self.dirty[v as usize] = false;
        }
        let snap = Arc::new(SignedGraph::from_csr(offsets, neighbors, weights));
        self.cached = Some((self.version, Arc::clone(&snap)));
        snap
    }

    /// Number of vertices currently marked dirty (changed since the last
    /// snapshot).  Exposed for diagnostics and benchmarks.
    pub fn dirty_vertices(&self) -> usize {
        self.dirty_list.len()
    }

    fn mark_dirty(&mut self, v: VertexId) {
        let flag = &mut self.dirty[v as usize];
        if !*flag {
            *flag = true;
            self.dirty_list.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn set_add_and_remove() {
        let mut d = DeltaGraph::new(4);
        assert!(d.set_weight(0, 1, 2.0));
        assert!(d.set_weight(1, 2, -1.5));
        assert_eq!(d.num_edges(), 2);
        assert_eq!(d.weight(1, 0), Some(2.0));
        // No-op updates do not move the version.
        let version = d.version();
        assert!(!d.set_weight(0, 1, 2.0));
        assert!(!d.set_weight(2, 3, 0.0));
        assert_eq!(d.version(), version);
        // Removing and re-adding.
        assert!(d.set_weight(0, 1, 0.0));
        assert_eq!(d.num_edges(), 1);
        assert_eq!(d.weight(0, 1), None);
        assert_eq!(d.add_weight(0, 1, 3.0), 3.0);
        assert_eq!(d.add_weight(0, 1, -3.0), 0.0);
        assert_eq!(d.weight(0, 1), None);
        assert_eq!(d.num_edges(), 1);
    }

    #[test]
    fn snapshot_matches_builder_and_is_cached() {
        let mut d = DeltaGraph::new(5);
        d.set_weight(0, 1, 1.0);
        d.set_weight(0, 3, -2.0);
        d.set_weight(2, 3, 3.0);
        let expected = GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (0, 3, -2.0), (2, 3, 3.0)]);
        let snap = d.snapshot();
        assert_eq!(*snap, expected);
        // Unchanged version: the exact same Arc comes back.
        let again = d.snapshot();
        assert!(Arc::ptr_eq(&snap, &again));
        // A mutation invalidates the cache; the incremental rebuild only
        // touches the dirty rows but the result is a complete graph.
        d.set_weight(2, 4, -1.0);
        d.set_weight(3, 4, 2.0);
        let expected = GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 1.0),
                (0, 3, -2.0),
                (2, 3, 3.0),
                (2, 4, -1.0),
                (3, 4, 2.0),
            ],
        );
        let next = d.snapshot();
        assert!(!Arc::ptr_eq(&snap, &next));
        assert_eq!(*next, expected);
        // No-op mutations keep the cache valid.
        d.set_weight(3, 4, 2.0);
        assert!(Arc::ptr_eq(&next, &d.snapshot()));
    }

    #[test]
    fn from_graph_round_trips() {
        let g = GraphBuilder::from_edges(6, vec![(0, 1, 1.0), (1, 2, -4.0), (4, 5, 0.5)]);
        let mut d = DeltaGraph::from_graph(&g);
        assert_eq!(d.num_edges(), g.num_edges());
        assert_eq!(*d.snapshot(), g);
        let mut edges: Vec<_> = d.edges().collect();
        edges.sort_by_key(|&(u, v, _)| (u, v));
        assert_eq!(edges, vec![(0, 1, 1.0), (1, 2, -4.0), (4, 5, 0.5)]);
    }

    #[test]
    fn dirty_tracking_resets_after_snapshot() {
        let mut d = DeltaGraph::new(4);
        d.set_weight(0, 1, 1.0);
        assert_eq!(d.dirty_vertices(), 2);
        let _ = d.snapshot();
        assert_eq!(d.dirty_vertices(), 0);
        d.set_weight(0, 1, 2.0);
        d.set_weight(0, 2, 1.0);
        assert_eq!(d.dirty_vertices(), 3);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        DeltaGraph::new(3).set_weight(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        DeltaGraph::new(3).set_weight(0, 7, 1.0);
    }
}

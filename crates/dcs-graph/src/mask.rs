//! Compact alive-vertex bitsets for masked graph views.
//!
//! The top-k miner peels subgraph after subgraph out of one difference graph.  Before
//! the masked-view engine this meant compacting the CSR arrays once per round
//! ([`crate::SignedGraph::remove_vertices_in_place`]) — an `O(n + m)` rewrite whose
//! only purpose was to make a handful of vertices disappear.  A [`VertexMask`] records
//! the same information in one bit per vertex, so "removing" a mined subgraph is a few
//! word stores and the CSR arrays are never touched; [`crate::GraphView`] then
//! overlays the mask on the immutable graph.

use crate::VertexId;

/// A fixed-universe set of *alive* vertices, stored as a `u64`-word bitset.
///
/// Unlike [`crate::VertexSubset`] (which also keeps an insertion-ordered member list
/// for O(|S|) iteration), a `VertexMask` is pure bits: O(1) membership flips with no
/// side allocation, an exact popcount-maintained [`Self::len`], and word-at-a-time
/// iteration.  It is the "which vertices still exist" half of a [`crate::GraphView`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VertexMask {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl VertexMask {
    /// A mask over `0..n` with **every** vertex alive.
    pub fn full(n: usize) -> Self {
        let mut mask = VertexMask {
            words: Vec::new(),
            universe: 0,
            len: 0,
        };
        mask.reset_full(n);
        mask
    }

    /// A mask over `0..n` with **no** vertex alive.
    pub fn empty(n: usize) -> Self {
        VertexMask {
            words: vec![0; n.div_ceil(64)],
            universe: n,
            len: 0,
        }
    }

    /// Re-initialises the mask to a full universe of size `n`, reusing the word
    /// storage (the reset primitive of per-job driver loops).
    pub fn reset_full(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), u64::MAX);
        // Clear the padding bits of the last word so popcounts stay exact.
        let tail = n % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        self.universe = n;
        self.len = n;
    }

    /// Re-initialises the mask to an empty universe of size `n`, reusing the word
    /// storage — the reset primitive of per-solve scratch sets (expansion candidate
    /// dedup marks, working-support membership).
    pub fn reset_empty(&mut self, n: usize) {
        self.words.clear();
        self.words.resize(n.div_ceil(64), 0);
        self.universe = n;
        self.len = 0;
    }

    /// Size of the vertex universe.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// Number of alive vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no vertex is alive.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `v` is alive.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let v = v as usize;
        debug_assert!(v < self.universe);
        self.words[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Marks `v` alive; returns `true` if it was dead.
    pub fn insert(&mut self, v: VertexId) -> bool {
        let v = v as usize;
        debug_assert!(v < self.universe);
        let bit = 1u64 << (v % 64);
        let word = &mut self.words[v / 64];
        if *word & bit != 0 {
            false
        } else {
            *word |= bit;
            self.len += 1;
            true
        }
    }

    /// Marks `v` dead; returns `true` if it was alive.
    pub fn remove(&mut self, v: VertexId) -> bool {
        let v = v as usize;
        debug_assert!(v < self.universe);
        let bit = 1u64 << (v % 64);
        let word = &mut self.words[v / 64];
        if *word & bit == 0 {
            false
        } else {
            *word &= !bit;
            self.len -= 1;
            true
        }
    }

    /// Marks every vertex of `vertices` dead (duplicates and already-dead entries are
    /// fine) — the per-round "peel this subgraph out" primitive of the top-k miner.
    pub fn remove_all(&mut self, vertices: &[VertexId]) {
        for &v in vertices {
            self.remove(v);
        }
    }

    /// The smallest alive vertex, or `None` when the mask is empty.
    pub fn first(&self) -> Option<VertexId> {
        for (i, &word) in self.words.iter().enumerate() {
            if word != 0 {
                return Some((i * 64 + word.trailing_zeros() as usize) as VertexId);
            }
        }
        None
    }

    /// Iterates the alive vertices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &word)| {
            let base = i * 64;
            std::iter::successors(if word == 0 { None } else { Some(word) }, |w| {
                let next = w & (w - 1);
                if next == 0 {
                    None
                } else {
                    Some(next)
                }
            })
            .map(move |w| (base + w.trailing_zeros() as usize) as VertexId)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_empty_and_flips() {
        let mut m = VertexMask::full(70);
        assert_eq!(m.universe_size(), 70);
        assert_eq!(m.len(), 70);
        assert!(m.contains(0) && m.contains(69));
        assert!(m.remove(69));
        assert!(!m.remove(69));
        assert_eq!(m.len(), 69);
        assert!(m.insert(69));
        assert!(!m.insert(69));
        assert_eq!(m.len(), 70);

        let e = VertexMask::empty(5);
        assert!(e.is_empty());
        assert!(!e.contains(3));
        assert_eq!(e.first(), None);
    }

    #[test]
    fn remove_all_and_iter_are_sorted() {
        let mut m = VertexMask::full(130);
        m.remove_all(&[0, 64, 65, 129, 64]);
        assert_eq!(m.len(), 126);
        let alive: Vec<VertexId> = m.iter().collect();
        assert_eq!(alive.len(), 126);
        assert!(alive.windows(2).all(|w| w[0] < w[1]));
        assert!(!alive.contains(&64));
        assert_eq!(m.first(), Some(1));
    }

    #[test]
    fn reset_full_reuses_storage_and_clears_padding() {
        let mut m = VertexMask::empty(10);
        m.reset_full(65);
        assert_eq!(m.len(), 65);
        assert_eq!(m.iter().count(), 65);
        m.reset_full(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn exact_word_boundary() {
        let m = VertexMask::full(64);
        assert_eq!(m.len(), 64);
        assert_eq!(m.iter().count(), 64);
        let m = VertexMask::full(0);
        assert!(m.is_empty());
        assert_eq!(m.first(), None);
    }
}

//! Zero-copy reader for binary CSR **graph packs**.
//!
//! A pack is the on-disk form of one [`SignedGraph`]: the three CSR arrays
//! laid out as fixed-width little-endian sections behind a checksummed
//! header, so a server can open a 10⁷-edge graph by memory-mapping the file
//! and pointing the graph's columns straight at the mapping — no text
//! parsing, no duplicate copy in RAM.  The writer lives in `dcs-datasets`
//! (`PackWriter`), which also documents the full format specification; the
//! layout constants below are the single source of truth shared by both
//! sides.
//!
//! ## File layout (format version 1)
//!
//! ```text
//! bytes 0..8    magic "DCSPACK1"
//! bytes 8..72   header: 8 × u64 little-endian
//!               [version, n, m, m⁺, m⁻, flags, section count, header checksum]
//!               (checksum: FNV-1a/64 over bytes 0..64)
//! bytes 72..    section table: per section 4 × u64 LE
//!               {kind, byte offset, byte length, FNV-1a/64 checksum},
//!               followed by one u64 table checksum over the entries
//! then          sections, each starting at an 8-byte-aligned file offset,
//!               zero padding in between:
//!               kind 1  offsets  (n+1) × u64        kind 2  targets  2m × u32
//!               kind 3  weights  2m × f64 (IEEE bits)  kind 4  names  (optional)
//!               kind 5  session metadata (optional, opaque bytes — see
//!                       `dcs-server`'s checkpoint encoding)
//! ```
//!
//! [`GraphPack::open`] reads and verifies **O(header)** bytes eagerly (magic,
//! header + table checksums, section bounds/alignment); the CSR payload is
//! faulted in lazily by the kernel.  [`GraphPack::to_graph`] runs the same
//! allocation-free structural validation as [`SignedGraph::from_raw_csr`]
//! over the mapped sections before handing them to solvers, so corrupt packs
//! surface as typed [`CorruptGraph`] errors, never as out-of-bounds panics.
//! Full payload checksums and adjacency-symmetry auditing are opt-in via
//! [`GraphPack::verify`] (used by `dcs pack-info --verify` and the corruption
//! property tests) to keep the open path O(header).

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

use mmap::Mmap;

use crate::csr::{validate_csr, CorruptGraph};
use crate::{SignedGraph, VertexId, Weight};

/// The 8-byte magic prefix identifying a graph pack (and its major layout).
pub const MAGIC: [u8; 8] = *b"DCSPACK1";

/// Current pack format version.  Readers reject packs with any other value:
/// the policy is that incompatible layout changes bump this number (and
/// compatible additions use new section kinds, which old readers reject as
/// unknown).
pub const FORMAT_VERSION: u64 = 1;

/// Byte length of the fixed header (magic + 8 `u64` fields).
pub const HEADER_LEN: usize = 72;

/// Byte length of one section-table entry (`kind`, `offset`, `len`,
/// `checksum`).
pub const SECTION_ENTRY_LEN: usize = 32;

/// Section kind: CSR row offsets, `(n + 1) × u64`.
pub const KIND_OFFSETS: u64 = 1;
/// Section kind: CSR neighbor ids, `2m × u32`.
pub const KIND_TARGETS: u64 = 2;
/// Section kind: CSR edge weights, `2m × f64` (IEEE-754 bit patterns).
pub const KIND_WEIGHTS: u64 = 3;
/// Section kind: optional vertex names, `n × (u32 length + UTF-8 bytes)`.
pub const KIND_NAMES: u64 = 4;
/// Section kind: optional opaque session metadata (streaming-session
/// checkpoints: version counters, measure, warm-start support — encoded by
/// `dcs-server`, carried here so a checkpoint is one self-contained pack).
pub const KIND_SESSION: u64 = 5;

/// Header flag bit: a names section is present.
pub const FLAG_HAS_NAMES: u64 = 1;
/// Header flag bit: a session-metadata section is present.
pub const FLAG_HAS_SESSION: u64 = 2;

/// FNV-1a/64 over `bytes` — the checksum used throughout the pack format.
///
/// Chosen for being trivially streamable and dependency-free; a single
/// flipped byte always changes the digest (each update step is a bijection
/// of the running state), which is exactly the corruption-detection property
/// the format needs.  It is *not* cryptographic.
pub fn pack_checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The three decoded CSR columns (row offsets, targets, weights) of the
/// owned copying fallback path.
type OwnedColumns = (Vec<usize>, Vec<VertexId>, Vec<Weight>);

/// Why a pack could not be opened or decoded.
#[derive(Debug)]
#[non_exhaustive]
pub enum PackError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// The file does not start with the pack magic.
    BadMagic,
    /// The pack declares a format version this reader does not understand.
    UnsupportedVersion(u64),
    /// The file is shorter than a declared structure.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The header checksum does not match the header bytes.
    HeaderChecksum,
    /// The section-table checksum does not match the table bytes.
    TableChecksum,
    /// A section's payload checksum does not match (reported by
    /// [`GraphPack::verify`]).
    SectionChecksum(&'static str),
    /// The header or section table is internally inconsistent (bad kinds,
    /// misaligned or overlapping sections, impossible sizes…).
    Layout(String),
    /// The CSR payload violates a graph representation invariant.
    Corrupt(CorruptGraph),
}

impl std::fmt::Display for PackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackError::Io(e) => write!(f, "pack io error: {e}"),
            PackError::BadMagic => write!(f, "not a graph pack (bad magic)"),
            PackError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported pack format version {v} (reader supports {FORMAT_VERSION})"
                )
            }
            PackError::Truncated { needed, actual } => {
                write!(f, "truncated pack: need {needed} bytes, file has {actual}")
            }
            PackError::HeaderChecksum => write!(f, "pack header checksum mismatch"),
            PackError::TableChecksum => write!(f, "pack section-table checksum mismatch"),
            PackError::SectionChecksum(name) => {
                write!(f, "pack {name} section checksum mismatch")
            }
            PackError::Layout(msg) => write!(f, "bad pack layout: {msg}"),
            PackError::Corrupt(e) => write!(f, "pack payload rejected: {e}"),
        }
    }
}

impl std::error::Error for PackError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PackError::Io(e) => Some(e),
            PackError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PackError {
    fn from(e: std::io::Error) -> Self {
        PackError::Io(e)
    }
}

impl From<CorruptGraph> for PackError {
    fn from(e: CorruptGraph) -> Self {
        PackError::Corrupt(e)
    }
}

/// One entry of the parsed section table.
#[derive(Debug, Clone, Copy)]
pub struct SectionInfo {
    /// Section kind code (`KIND_*`).
    pub kind: u64,
    /// Human-readable kind name.
    pub name: &'static str,
    /// Byte offset of the payload from the start of the file.
    pub offset: usize,
    /// Exact payload length in bytes (padding excluded).
    pub len: usize,
    /// FNV-1a/64 checksum of the payload as recorded at write time.
    pub checksum: u64,
}

fn kind_name(kind: u64) -> &'static str {
    match kind {
        KIND_OFFSETS => "offsets",
        KIND_TARGETS => "targets",
        KIND_WEIGHTS => "weights",
        KIND_NAMES => "names",
        KIND_SESSION => "session",
        _ => "unknown",
    }
}

/// An opened graph pack: the mapped (or buffered) file plus its parsed and
/// eagerly verified header and section table.
///
/// Opening is O(header); decoding the graph ([`Self::to_graph`]) points the
/// graph's CSR columns straight at the mapping on 64-bit little-endian
/// targets and copies the sections out elsewhere.
pub struct GraphPack {
    data: Arc<Mmap>,
    format_version: u64,
    vertices: usize,
    edges: usize,
    positive_edges: usize,
    negative_edges: usize,
    flags: u64,
    sections: Vec<SectionInfo>,
}

fn read_u64(bytes: &[u8], pos: usize) -> u64 {
    u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap())
}

fn to_usize(v: u64, what: &str) -> Result<usize, PackError> {
    usize::try_from(v).map_err(|_| PackError::Layout(format!("{what} {v} exceeds address space")))
}

impl GraphPack {
    /// Opens a pack by memory-mapping it (with a transparent read-into-RAM
    /// fallback when mapping is unavailable).  Eagerly reads and verifies
    /// only the magic, header and section table — O(header) bytes; the CSR
    /// payload stays on disk until faulted in.
    pub fn open(path: impl AsRef<Path>) -> Result<GraphPack, PackError> {
        let file = File::open(path)?;
        Self::from_mmap(Mmap::map(&file)?)
    }

    /// Opens a pack by reading the whole file into an owned buffer — the
    /// portability path, immune to concurrent file modification.
    pub fn open_buffered(path: impl AsRef<Path>) -> Result<GraphPack, PackError> {
        let file = File::open(path)?;
        Self::from_mmap(Mmap::read(&file)?)
    }

    /// Parses and verifies the header and section table of an already-loaded
    /// pack image.
    pub fn from_mmap(data: Mmap) -> Result<GraphPack, PackError> {
        let bytes = data.as_bytes();
        if bytes.len() < HEADER_LEN {
            return Err(PackError::Truncated {
                needed: HEADER_LEN,
                actual: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(PackError::BadMagic);
        }
        let stored_header_checksum = read_u64(bytes, HEADER_LEN - 8);
        if pack_checksum(&bytes[..HEADER_LEN - 8]) != stored_header_checksum {
            return Err(PackError::HeaderChecksum);
        }
        let format_version = read_u64(bytes, 8);
        if format_version != FORMAT_VERSION {
            return Err(PackError::UnsupportedVersion(format_version));
        }
        let vertices = to_usize(read_u64(bytes, 16), "vertex count")?;
        let edges = to_usize(read_u64(bytes, 24), "edge count")?;
        let positive_edges = to_usize(read_u64(bytes, 32), "positive edge count")?;
        let negative_edges = to_usize(read_u64(bytes, 40), "negative edge count")?;
        let flags = read_u64(bytes, 48);
        let section_count = read_u64(bytes, 56);

        if positive_edges.checked_add(negative_edges) != Some(edges) {
            return Err(PackError::Layout(format!(
                "edge counts disagree: {edges} != {positive_edges} + {negative_edges}"
            )));
        }
        if vertices > (VertexId::MAX as usize) + 1 {
            return Err(PackError::Layout(format!(
                "vertex count {vertices} exceeds the 32-bit id space"
            )));
        }
        let expected_sections: u64 =
            3 + u64::from(flags & FLAG_HAS_NAMES != 0) + u64::from(flags & FLAG_HAS_SESSION != 0);
        if section_count != expected_sections {
            return Err(PackError::Layout(format!(
                "section count {section_count}, expected {expected_sections}"
            )));
        }
        let section_count = section_count as usize;
        let table_len = section_count * SECTION_ENTRY_LEN + 8;
        let table_end = HEADER_LEN + table_len;
        if bytes.len() < table_end {
            return Err(PackError::Truncated {
                needed: table_end,
                actual: bytes.len(),
            });
        }
        let table_bytes = &bytes[HEADER_LEN..table_end - 8];
        if pack_checksum(table_bytes) != read_u64(bytes, table_end - 8) {
            return Err(PackError::TableChecksum);
        }

        let mut sections = Vec::with_capacity(section_count);
        let mut prev_kind = 0u64;
        let mut prev_end = table_end;
        for i in 0..section_count {
            let base = HEADER_LEN + i * SECTION_ENTRY_LEN;
            let kind = read_u64(bytes, base);
            let offset = to_usize(read_u64(bytes, base + 8), "section offset")?;
            let len = to_usize(read_u64(bytes, base + 16), "section length")?;
            let checksum = read_u64(bytes, base + 24);
            if !(KIND_OFFSETS..=KIND_SESSION).contains(&kind) || kind <= prev_kind {
                return Err(PackError::Layout(format!(
                    "unexpected section kind {kind} at table index {i}"
                )));
            }
            prev_kind = kind;
            if offset % 8 != 0 {
                return Err(PackError::Layout(format!(
                    "{} section offset {offset} is not 8-byte aligned",
                    kind_name(kind)
                )));
            }
            if offset < prev_end {
                return Err(PackError::Layout(format!(
                    "{} section at {offset} overlaps the previous structure",
                    kind_name(kind)
                )));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| PackError::Layout("section range overflows".to_string()))?;
            if end > bytes.len() {
                return Err(PackError::Truncated {
                    needed: end,
                    actual: bytes.len(),
                });
            }
            prev_end = end;
            sections.push(SectionInfo {
                kind,
                name: kind_name(kind),
                offset,
                len,
                checksum,
            });
        }

        let pack = GraphPack {
            data: Arc::new(data),
            format_version,
            vertices,
            edges,
            positive_edges,
            negative_edges,
            flags,
            sections,
        };
        // Cross-check the fixed-width section lengths against the header
        // counts — still O(header): arithmetic over the table only.
        let entries = pack
            .edges
            .checked_mul(2)
            .ok_or_else(|| PackError::Layout("edge count overflows".to_string()))?;
        let offsets_len = pack
            .vertices
            .checked_add(1)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| PackError::Layout("vertex count overflows".to_string()))?;
        for (kind, expected) in [
            (KIND_OFFSETS, Some(offsets_len)),
            (KIND_TARGETS, entries.checked_mul(4)),
            (KIND_WEIGHTS, entries.checked_mul(8)),
        ] {
            let expected =
                expected.ok_or_else(|| PackError::Layout("edge count overflows".to_string()))?;
            let section = pack.section(kind).expect("kind presence checked above");
            if section.len != expected {
                return Err(PackError::Layout(format!(
                    "{} section is {} bytes, expected {expected}",
                    kind_name(kind),
                    section.len
                )));
            }
        }
        Ok(pack)
    }

    fn section(&self, kind: u64) -> Option<&SectionInfo> {
        self.sections.iter().find(|s| s.kind == kind)
    }

    fn section_bytes(&self, section: &SectionInfo) -> &[u8] {
        &self.data.as_bytes()[section.offset..section.offset + section.len]
    }

    /// Number of vertices recorded in the header.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Number of undirected edges recorded in the header.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Number of positive-weight undirected edges recorded in the header.
    pub fn positive_edges(&self) -> usize {
        self.positive_edges
    }

    /// Number of negative-weight undirected edges recorded in the header.
    pub fn negative_edges(&self) -> usize {
        self.negative_edges
    }

    /// The pack's format version (always [`FORMAT_VERSION`] once opened).
    pub fn format_version(&self) -> u64 {
        self.format_version
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> usize {
        self.data.len()
    }

    /// Whether the file is backed by an actual kernel mapping (zero-copy) as
    /// opposed to an in-RAM buffer.
    pub fn is_mapped(&self) -> bool {
        self.data.is_mapped()
    }

    /// Whether the pack carries a vertex-name section.
    pub fn has_names(&self) -> bool {
        self.flags & FLAG_HAS_NAMES != 0
    }

    /// Whether the pack carries a session-metadata section (streaming-session
    /// checkpoints written by `dcs-server`).
    pub fn has_session(&self) -> bool {
        self.flags & FLAG_HAS_SESSION != 0
    }

    /// The raw bytes of the optional session-metadata section, `None` when
    /// the pack carries none.  The encoding of the payload belongs to the
    /// writer (`dcs-server`'s checkpointer); the pack layer treats it as
    /// opaque, checksummed bytes.
    pub fn session_bytes(&self) -> Option<&[u8]> {
        self.section(KIND_SESSION).map(|s| self.section_bytes(s))
    }

    /// The parsed section table, in file order.
    pub fn sections(&self) -> &[SectionInfo] {
        &self.sections
    }

    /// Decodes the pack into a [`SignedGraph`], validating every CSR
    /// invariant (allocation-free scan) and cross-checking the header's edge
    /// counts against the payload.
    ///
    /// On 64-bit little-endian targets the returned graph's columns alias
    /// the mapped file directly (`SignedGraph::is_pack_backed` reports
    /// `true`); elsewhere the sections are copied and byte-swapped out of
    /// the file, behind the same API.
    pub fn to_graph(&self) -> Result<SignedGraph, PackError> {
        #[cfg(all(target_pointer_width = "64", target_endian = "little"))]
        {
            if let Some((offsets, targets, weights)) = self.typed_views() {
                let (pos, neg) = validate_csr(&offsets, &targets, &weights)?;
                self.cross_check_counts(pos, neg)?;
                return Ok(SignedGraph::from_columns(
                    offsets.into(),
                    targets.into(),
                    weights.into(),
                    pos,
                    neg,
                ));
            }
        }
        let (offsets, targets, weights) = self.copy_columns()?;
        let (pos, neg) = validate_csr(&offsets, &targets, &weights)?;
        self.cross_check_counts(pos, neg)?;
        Ok(SignedGraph::from_columns(
            offsets.into(),
            targets.into(),
            weights.into(),
            pos,
            neg,
        ))
    }

    /// Zero-copy typed views of the three CSR sections.  `None` when any
    /// section is not suitably aligned within the mapping (cannot happen for
    /// writer-produced files, whose sections are 8-byte aligned over a
    /// page-aligned base, but a defensive fallback beats an abort).
    #[cfg(all(target_pointer_width = "64", target_endian = "little"))]
    fn typed_views(
        &self,
    ) -> Option<(
        mmap::ArcSlice<usize>,
        mmap::ArcSlice<VertexId>,
        mmap::ArcSlice<Weight>,
    )> {
        let offsets = self.section(KIND_OFFSETS)?;
        let targets = self.section(KIND_TARGETS)?;
        let weights = self.section(KIND_WEIGHTS)?;
        let offsets =
            mmap::ArcSlice::<usize>::new(Arc::clone(&self.data), offsets.offset, offsets.len / 8)?;
        let targets = mmap::ArcSlice::<VertexId>::new(
            Arc::clone(&self.data),
            targets.offset,
            targets.len / 4,
        )?;
        let weights =
            mmap::ArcSlice::<Weight>::new(Arc::clone(&self.data), weights.offset, weights.len / 8)?;
        Some((offsets, targets, weights))
    }

    /// Endianness-independent fallback: copies the sections into owned
    /// vectors, decoding little-endian fixed-width values.
    fn copy_columns(&self) -> Result<OwnedColumns, PackError> {
        let offsets_bytes = self.section_bytes(self.section(KIND_OFFSETS).unwrap());
        let targets_bytes = self.section_bytes(self.section(KIND_TARGETS).unwrap());
        let weights_bytes = self.section_bytes(self.section(KIND_WEIGHTS).unwrap());
        let mut offsets = Vec::with_capacity(offsets_bytes.len() / 8);
        for chunk in offsets_bytes.chunks_exact(8) {
            let v = u64::from_le_bytes(chunk.try_into().unwrap());
            offsets.push(to_usize(v, "row offset")?);
        }
        let targets: Vec<VertexId> = targets_bytes
            .chunks_exact(4)
            .map(|c| VertexId::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let weights: Vec<Weight> = weights_bytes
            .chunks_exact(8)
            .map(|c| Weight::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Ok((offsets, targets, weights))
    }

    fn cross_check_counts(
        &self,
        positive_entries: usize,
        negative_entries: usize,
    ) -> Result<(), PackError> {
        if positive_entries / 2 != self.positive_edges
            || negative_entries / 2 != self.negative_edges
        {
            return Err(PackError::Layout(format!(
                "header counts ({}+, {}-) do not match payload ({}+, {}-)",
                self.positive_edges,
                self.negative_edges,
                positive_entries / 2,
                negative_entries / 2
            )));
        }
        Ok(())
    }

    /// Full integrity audit: recomputes every section checksum, re-validates
    /// the CSR payload and checks adjacency **symmetry** (each undirected
    /// edge present in both endpoint rows with bit-identical weight).
    ///
    /// Deliberately not part of [`Self::open`]/[`Self::to_graph`] — it reads
    /// the whole file — but cheap enough for `dcs pack-info --verify`,
    /// post-write self-checks and corruption tests.
    pub fn verify(&self) -> Result<(), PackError> {
        for section in &self.sections {
            if pack_checksum(self.section_bytes(section)) != section.checksum {
                return Err(PackError::SectionChecksum(section.name));
            }
        }
        let graph = self.to_graph()?;
        for u in graph.vertices() {
            let (nbrs, ws) = graph.neighbor_slices(u);
            for (&v, &w) in nbrs.iter().zip(ws) {
                let (back_nbrs, back_ws) = graph.neighbor_slices(v);
                let mirrored = back_nbrs
                    .binary_search(&u)
                    .is_ok_and(|i| back_ws[i].to_bits() == w.to_bits());
                if !mirrored {
                    return Err(PackError::Layout(format!(
                        "edge ({u}, {v}) is not stored symmetrically"
                    )));
                }
            }
        }
        if self.has_names() {
            self.read_names()?;
        }
        Ok(())
    }

    /// Decodes the optional vertex-name section: `n` length-prefixed UTF-8
    /// strings.  Returns `None` when the pack has no names.  Allocates — not
    /// part of the zero-copy path.
    pub fn read_names(&self) -> Result<Option<Vec<String>>, PackError> {
        let Some(section) = self.section(KIND_NAMES) else {
            return Ok(None);
        };
        let bytes = self.section_bytes(section);
        let mut names = Vec::with_capacity(self.vertices);
        let mut pos = 0usize;
        for v in 0..self.vertices {
            if pos + 4 > bytes.len() {
                return Err(PackError::Layout(format!(
                    "names section ends inside the length prefix of vertex {v}"
                )));
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            pos += 4;
            if pos + len > bytes.len() {
                return Err(PackError::Layout(format!(
                    "names section ends inside the name of vertex {v}"
                )));
            }
            let name = std::str::from_utf8(&bytes[pos..pos + len])
                .map_err(|_| PackError::Layout(format!("vertex {v} name is not UTF-8")))?;
            names.push(name.to_string());
            pos += len;
        }
        if pos != bytes.len() {
            return Err(PackError::Layout(format!(
                "names section has {} trailing bytes",
                bytes.len() - pos
            )));
        }
        Ok(Some(names))
    }
}

impl std::fmt::Debug for GraphPack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphPack")
            .field("vertices", &self.vertices)
            .field("edges", &self.edges)
            .field("mapped", &self.is_mapped())
            .field("file_len", &self.file_len())
            .finish()
    }
}

/// Sniffs whether `path` starts with the pack magic — the auto-detection
/// hook used by CLI input loading to accept packs and text edge lists
/// through one code path.  Short or unreadable-as-pack files simply report
/// `false`.
pub fn file_is_pack(path: impl AsRef<Path>) -> std::io::Result<bool> {
    let mut file = File::open(path)?;
    let mut magic = [0u8; 8];
    let mut filled = 0usize;
    while filled < magic.len() {
        match file.read(&mut magic[filled..])? {
            0 => return Ok(false),
            n => filled += n,
        }
    }
    Ok(magic == MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-rolled miniature pack writer, independent of the real
    /// `PackWriter` in `dcs-datasets`, so the reader is tested against the
    /// documented byte layout rather than against another implementation.
    pub(crate) fn build_pack_bytes(
        offsets: &[u64],
        targets: &[u32],
        weights: &[f64],
        names: Option<&[&str]>,
    ) -> Vec<u8> {
        build_pack_bytes_with_session(offsets, targets, weights, names, None)
    }

    pub(crate) fn build_pack_bytes_with_session(
        offsets: &[u64],
        targets: &[u32],
        weights: &[f64],
        names: Option<&[&str]>,
        session: Option<&[u8]>,
    ) -> Vec<u8> {
        let n = offsets.len() - 1;
        let entries = targets.len();
        let pos = weights.iter().filter(|w| **w > 0.0).count();
        let neg = weights.iter().filter(|w| **w < 0.0).count();

        let mut offsets_bytes = Vec::new();
        for &o in offsets {
            offsets_bytes.extend_from_slice(&o.to_le_bytes());
        }
        let mut targets_bytes = Vec::new();
        for &t in targets {
            targets_bytes.extend_from_slice(&t.to_le_bytes());
        }
        let mut weights_bytes = Vec::new();
        for &w in weights {
            weights_bytes.extend_from_slice(&w.to_le_bytes());
        }
        let names_bytes = names.map(|names| {
            let mut b = Vec::new();
            for name in names {
                b.extend_from_slice(&(name.len() as u32).to_le_bytes());
                b.extend_from_slice(name.as_bytes());
            }
            b
        });

        let mut payloads: Vec<(u64, Vec<u8>)> = vec![
            (KIND_OFFSETS, offsets_bytes),
            (KIND_TARGETS, targets_bytes),
            (KIND_WEIGHTS, weights_bytes),
        ];
        let mut flags = 0u64;
        if let Some(b) = names_bytes {
            flags |= FLAG_HAS_NAMES;
            payloads.push((KIND_NAMES, b));
        }
        if let Some(b) = session {
            flags |= FLAG_HAS_SESSION;
            payloads.push((KIND_SESSION, b.to_vec()));
        }

        let section_count = payloads.len();
        let table_end = HEADER_LEN + section_count * SECTION_ENTRY_LEN + 8;
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        for field in [
            FORMAT_VERSION,
            n as u64,
            (entries / 2) as u64,
            (pos / 2) as u64,
            (neg / 2) as u64,
            flags,
            section_count as u64,
        ] {
            file.extend_from_slice(&field.to_le_bytes());
        }
        let header_checksum = pack_checksum(&file);
        file.extend_from_slice(&header_checksum.to_le_bytes());
        assert_eq!(file.len(), HEADER_LEN);

        // Lay out the sections after the table, 8-byte aligned.
        let mut cursor = table_end;
        let mut table = Vec::new();
        let mut section_blobs = Vec::new();
        for (kind, payload) in payloads {
            cursor = cursor.div_ceil(8) * 8;
            table.extend_from_slice(&kind.to_le_bytes());
            table.extend_from_slice(&(cursor as u64).to_le_bytes());
            table.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            table.extend_from_slice(&pack_checksum(&payload).to_le_bytes());
            cursor += payload.len();
            section_blobs.push(payload);
        }
        let table_checksum = pack_checksum(&table);
        file.extend_from_slice(&table);
        file.extend_from_slice(&table_checksum.to_le_bytes());
        for payload in section_blobs {
            while file.len() % 8 != 0 {
                file.push(0);
            }
            file.extend_from_slice(&payload);
        }
        file
    }

    fn fig1_pack_bytes() -> Vec<u8> {
        // The Fig. 1 difference graph used across the csr tests:
        // (0,1)=1, (0,3)=-2, (2,3)=3, (2,4)=-1, (3,4)=2.
        build_pack_bytes(
            &[0, 2, 3, 5, 8, 10],
            &[1, 3, 0, 3, 4, 0, 2, 4, 2, 3],
            &[1.0, -2.0, 1.0, 3.0, -1.0, -2.0, 3.0, 2.0, -1.0, 2.0],
            None,
        )
    }

    fn open_bytes(bytes: Vec<u8>) -> Result<GraphPack, PackError> {
        GraphPack::from_mmap(Mmap::from_vec(bytes))
    }

    #[test]
    fn reads_a_hand_rolled_pack() {
        let pack = open_bytes(fig1_pack_bytes()).unwrap();
        assert_eq!(pack.vertices(), 5);
        assert_eq!(pack.edges(), 5);
        assert_eq!(pack.positive_edges(), 3);
        assert_eq!(pack.negative_edges(), 2);
        assert!(!pack.has_names());
        pack.verify().unwrap();
        let g = pack.to_graph().unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.edge_weight(0, 3), Some(-2.0));
        assert_eq!(g.edge_weight(2, 3), Some(3.0));
        assert_eq!(g.edge_weight(1, 2), None);
    }

    #[cfg(all(target_pointer_width = "64", target_endian = "little"))]
    #[test]
    fn decoded_graph_is_pack_backed_on_64bit_le() {
        let pack = open_bytes(fig1_pack_bytes()).unwrap();
        let g = pack.to_graph().unwrap();
        assert!(g.is_pack_backed());
        // Copy-on-write: mutation detaches from the pack.
        let negated = g.negated();
        assert_eq!(negated.edge_weight(2, 3), Some(-3.0));
    }

    #[test]
    fn names_roundtrip() {
        let bytes = build_pack_bytes(&[0, 1, 2], &[1, 0], &[2.5, 2.5], Some(&["alice", "bob"]));
        let pack = open_bytes(bytes).unwrap();
        assert!(pack.has_names());
        pack.verify().unwrap();
        assert_eq!(
            pack.read_names().unwrap().unwrap(),
            vec!["alice".to_string(), "bob".to_string()]
        );
    }

    #[test]
    fn session_section_roundtrip() {
        let meta = b"{\"version\":42,\"measure\":\"affinity\"}";
        let bytes = build_pack_bytes_with_session(
            &[0, 1, 2],
            &[1, 0],
            &[2.5, 2.5],
            Some(&["alice", "bob"]),
            Some(meta),
        );
        let pack = open_bytes(bytes).unwrap();
        assert!(pack.has_names());
        assert!(pack.has_session());
        pack.verify().unwrap();
        assert_eq!(pack.session_bytes().unwrap(), meta);
        assert_eq!(pack.to_graph().unwrap().num_edges(), 1);
        // Without the flag, no session bytes are reported.
        let plain = open_bytes(fig1_pack_bytes()).unwrap();
        assert!(!plain.has_session());
        assert!(plain.session_bytes().is_none());
    }

    #[test]
    fn session_flag_without_section_is_rejected() {
        // Set FLAG_HAS_SESSION on a 3-section pack and re-stamp the header
        // checksum: the section-count cross-check must reject it.
        let mut bytes = fig1_pack_bytes();
        let flags = u64::from_le_bytes(bytes[48..56].try_into().unwrap()) | FLAG_HAS_SESSION;
        bytes[48..56].copy_from_slice(&flags.to_le_bytes());
        let fixed = pack_checksum(&bytes[..HEADER_LEN - 8]);
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            open_bytes(bytes).err(),
            Some(PackError::Layout(_))
        ));
    }

    #[test]
    fn rejects_bad_magic_and_short_files() {
        let mut bytes = fig1_pack_bytes();
        bytes[0] = b'X';
        assert!(matches!(open_bytes(bytes).err(), Some(PackError::BadMagic)));
        assert!(matches!(
            open_bytes(vec![1, 2, 3]).err(),
            Some(PackError::Truncated { .. })
        ));
    }

    #[test]
    fn rejects_header_tampering() {
        // Flip the vertex count without fixing the checksum.
        let mut bytes = fig1_pack_bytes();
        bytes[16] ^= 0xff;
        assert!(matches!(
            open_bytes(bytes).err(),
            Some(PackError::HeaderChecksum)
        ));
    }

    #[test]
    fn rejects_unsupported_version() {
        // Bump the version *and* re-stamp the header checksum: the version
        // check must fire on an otherwise-valid header.
        let mut bytes = fig1_pack_bytes();
        bytes[8..16].copy_from_slice(&2u64.to_le_bytes());
        let fixed = pack_checksum(&bytes[..HEADER_LEN - 8]);
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            open_bytes(bytes).err(),
            Some(PackError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn rejects_truncated_payload() {
        let bytes = fig1_pack_bytes();
        let cut = bytes[..bytes.len() - 9].to_vec();
        assert!(matches!(
            open_bytes(cut).err(),
            Some(PackError::Truncated { .. })
        ));
    }

    #[test]
    fn verify_catches_payload_bit_flips() {
        let good = fig1_pack_bytes();
        let pack = open_bytes(good.clone()).unwrap();
        let weights_offset = pack.section(KIND_WEIGHTS).unwrap().offset;
        let mut bytes = good;
        bytes[weights_offset + 3] ^= 0x01;
        let tampered = open_bytes(bytes).unwrap();
        assert!(matches!(
            tampered.verify().err(),
            Some(PackError::SectionChecksum("weights"))
        ));
    }

    #[test]
    fn corrupt_csr_is_rejected_with_typed_errors() {
        // Out-of-range target.
        let bytes = build_pack_bytes(&[0, 1, 2], &[9, 0], &[1.0, 1.0], None);
        match open_bytes(bytes).unwrap().to_graph() {
            Err(PackError::Corrupt(CorruptGraph::TargetOutOfRange { .. })) => {}
            other => panic!("expected TargetOutOfRange, got {other:?}"),
        }
        // Zero weight.  The helper derives header sign counts from the
        // weights, which would trip the open-time m = m⁺ + m⁻ cross-check
        // first — stamp a consistent-looking header so the payload scan is
        // what rejects the pack.
        let mut bytes = build_pack_bytes(&[0, 1, 2], &[1, 0], &[0.0, 0.0], None);
        bytes[32..40].copy_from_slice(&1u64.to_le_bytes());
        let fixed = pack_checksum(&bytes[..HEADER_LEN - 8]);
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&fixed.to_le_bytes());
        match open_bytes(bytes).unwrap().to_graph() {
            Err(PackError::Corrupt(CorruptGraph::ZeroWeight { .. })) => {}
            other => panic!("expected ZeroWeight, got {other:?}"),
        }
        // Non-monotone offsets.
        let bytes = build_pack_bytes(&[0, 2, 1, 2], &[1, 0], &[1.0, 1.0], None);
        assert!(open_bytes(bytes).unwrap().to_graph().is_err());
    }

    #[test]
    fn header_payload_count_mismatch_is_rejected() {
        // Valid CSR but a header that claims the wrong sign split: craft by
        // flipping m+/m- and re-stamping the header checksum.
        let mut bytes = fig1_pack_bytes();
        bytes[32..40].copy_from_slice(&2u64.to_le_bytes());
        bytes[40..48].copy_from_slice(&3u64.to_le_bytes());
        let fixed = pack_checksum(&bytes[..HEADER_LEN - 8]);
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&fixed.to_le_bytes());
        let pack = open_bytes(bytes).unwrap();
        assert!(matches!(pack.to_graph().err(), Some(PackError::Layout(_))));
    }

    #[test]
    fn sniffs_pack_files() {
        let dir = std::env::temp_dir();
        let pack_path = dir.join(format!("dcs_pack_sniff_{}.pack", std::process::id()));
        let text_path = dir.join(format!("dcs_pack_sniff_{}.edges", std::process::id()));
        std::fs::write(&pack_path, fig1_pack_bytes()).unwrap();
        std::fs::write(&text_path, "0 1 2.5\n").unwrap();
        assert!(file_is_pack(&pack_path).unwrap());
        assert!(!file_is_pack(&text_path).unwrap());
        let opened = GraphPack::open(&pack_path).unwrap();
        opened.verify().unwrap();
        assert_eq!(opened.to_graph().unwrap().num_edges(), 5);
        std::fs::remove_file(&pack_path).ok();
        std::fs::remove_file(&text_path).ok();
    }
}

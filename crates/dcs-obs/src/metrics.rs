//! Lock-free metrics: counters, gauges, log-scale histograms, and a registry
//! of named instances with mergeable snapshots.
//!
//! The hot path is handle-based: a component asks the [`MetricsRegistry`] for
//! a named metric **once** (that takes a short registration lock) and then
//! updates the returned `Arc` handle with single atomic operations.  Reads
//! ([`MetricsRegistry::snapshot`]) tolerate concurrent writers: each value is
//! loaded with relaxed ordering, so a snapshot is a consistent-enough view for
//! monitoring, never a barrier for the writers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, in-flight jobs).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two of a `u64` value, plus a
/// dedicated zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket base-2 log-scale histogram of `u64` samples.
///
/// Bucket `0` holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)` (the last bucket absorbs everything above `2^62`).
/// Recording is a single relaxed `fetch_add` on the bucket plus bookkeeping
/// for count/sum/max — no locks, no allocation, wait-free on x86/ARM.
///
/// The natural unit for latencies is **microseconds** (via
/// [`Histogram::record_duration`]): 64 log-2 buckets then span sub-µs to
/// ~146000 years with ≤2× relative quantile error, plenty for p50/p95/p99
/// monitoring.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value falls into.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (HISTOGRAM_BUCKETS as u32 - value.leading_zeros()).min(HISTOGRAM_BUCKETS as u32 - 1)
            as usize
    }
}

/// Inclusive upper bound of a bucket — the value quantiles report.
fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in **microseconds** (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX));
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts and summary statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable across shards/processes and
/// summarisable to quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram`] for the bucket layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (exact, unlike the bucketed distribution).
    pub sum: u64,
    /// Largest sample seen (exact).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds another snapshot into this one.  Bucket-wise (saturating)
    /// addition, so merging is commutative and associative: any merge order
    /// over any sharding of the same samples yields the same snapshot, and the
    /// total count is the sum of the parts.  Saturating keeps those laws even
    /// when a long-lived server's `sum` approaches `u64::MAX` — clamped
    /// addition of non-negatives is still order-independent.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The smallest bucket upper bound below which at least `q` (in `[0, 1]`)
    /// of the samples fall.  Reported values have ≤2× relative error (the
    /// bucket width); `0` when the histogram is empty.  The exact [`Self::max`]
    /// caps the estimate so an all-in-one-bucket distribution never reports a
    /// quantile above its largest sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return bucket_upper_bound(index).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact mean of the recorded samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A registry of named metrics.
///
/// Names are free-form strings; counters, gauges and histograms live in
/// separate namespaces.  Asking for an existing name returns the **same**
/// underlying metric (`Arc`-shared), so independent components naming the same
/// metric aggregate into one series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            lock(&self.counters)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            lock(&self.gauges)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            lock(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(name, counter)| (name.clone(), counter.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(name, gauge)| (name.clone(), gauge.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(name, histogram)| (name.clone(), histogram.snapshot()))
                .collect(),
        }
    }
}

/// Plain-data copy of a [`MetricsRegistry`], mergeable across registries
/// (shards, worker pools, processes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Folds another snapshot into this one: counters and gauges add (a summed
    /// gauge is the total level across shards), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += value;
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let counter = Counter::new();
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);

        let gauge = Gauge::new();
        gauge.inc();
        gauge.add(3);
        gauge.dec();
        assert_eq!(gauge.get(), 3);
        gauge.set(-2);
        assert_eq!(gauge.get(), -2);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let histogram = Histogram::new();
        assert_eq!(histogram.snapshot().quantile(0.5), 0);
        for value in [1u64, 2, 3, 100, 1000, 10_000] {
            histogram.record(value);
        }
        let snap = histogram.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 11_106);
        assert_eq!(snap.max, 10_000);
        // Quantiles report bucket upper bounds: ≤2× the true value.
        let p50 = snap.p50();
        assert!((3..=7).contains(&p50), "p50 was {p50}");
        assert!(snap.p99() >= 10_000 && snap.p99() <= 16_383);
        // The exact max caps the top bucket's estimate.
        assert_eq!(snap.quantile(1.0), 10_000);
        assert!((snap.mean() - 1851.0).abs() < 1.0);
    }

    #[test]
    fn histogram_durations_record_microseconds() {
        let histogram = Histogram::new();
        histogram.record_duration(Duration::from_millis(3));
        let snap = histogram.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 3000);
    }

    #[test]
    fn snapshot_merge_adds() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 100);
        assert_eq!(merged.sum, (0..100u64).sum::<u64>());
        assert_eq!(merged.max, 99);
    }

    #[test]
    fn registry_shares_handles_and_snapshots() {
        let registry = MetricsRegistry::new();
        let first = registry.counter("jobs");
        let second = registry.counter("jobs");
        assert!(Arc::ptr_eq(&first, &second));
        first.add(2);
        registry.gauge("depth").set(7);
        registry.histogram("wall_us").record(10);

        let snap = registry.snapshot();
        assert_eq!(snap.counters["jobs"], 2);
        assert_eq!(snap.gauges["depth"], 7);
        assert_eq!(snap.histograms["wall_us"].count, 1);

        // Merging two registry snapshots aggregates every series.
        let other = MetricsRegistry::new();
        other.counter("jobs").add(3);
        other.counter("errors").inc();
        other.histogram("wall_us").record(20);
        let mut merged = snap.clone();
        merged.merge(&other.snapshot());
        assert_eq!(merged.counters["jobs"], 5);
        assert_eq!(merged.counters["errors"], 1);
        assert_eq!(merged.histograms["wall_us"].count, 2);
    }
}

//! The solver phase tracer: span-style begin/end events in bounded
//! per-thread ring buffers, exportable as a JSON timeline.
//!
//! ## Design
//!
//! * **Off by default, one branch when off.**  Every instrumentation site
//!   calls [`span`], which loads one relaxed [`AtomicBool`] and returns an
//!   inert guard when tracing is disabled.  Phases are coarse (a whole peel,
//!   a whole µ_u sweep, one snapshot rebuild) so the disabled cost is a
//!   branch per *phase*, invisible next to the phase's own work.
//! * **Bounded per-thread rings.**  Each recording thread owns a ring of
//!   [`RING_CAPACITY`] events behind its own (uncontended) mutex; when full,
//!   the oldest events are overwritten and counted as dropped.  Tracing can
//!   therefore stay on indefinitely without growing memory.
//! * **Global drain.**  [`take_timeline`] collects and removes the events of
//!   every thread that ever recorded (including threads that have already
//!   exited — their rings are kept alive by the collector registry), sorted
//!   by start time.
//!
//! Timestamps are microseconds since the first use of the tracer in this
//! process, so events from different threads share one clock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Events per thread-local ring buffer.
pub const RING_CAPACITY: usize = 4096;

/// A solver (or serving) phase a span can cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Phase {
    /// Greedy peeling of one solve (units: vertices removed).
    Peel,
    /// Goldberg max-flow binary search of one solve (units: flow rounds).
    Flow,
    /// One SEACD 2-coordinate-descent shrink stage (units: CD iterations).
    CdShrink,
    /// One SEA expansion step (units: candidate vertices absorbed).
    CdExpand,
    /// The NewSEA µ_u-ordered initialisation sweep (units: initialisations run).
    MuSweep,
    /// Algorithm-4 refinement of a DCSGA iterate.
    Refine,
    /// Rebuilding a versioned CSR snapshot from the delta engine (units: dirty rows).
    SnapshotRebuild,
    /// A mining job waiting in the server's bounded queue.
    QueueWait,
}

impl Phase {
    /// Stable lowercase token used in the JSON timeline.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Peel => "peel",
            Phase::Flow => "flow",
            Phase::CdShrink => "cd_shrink",
            Phase::CdExpand => "cd_expand",
            Phase::MuSweep => "mu_sweep",
            Phase::Refine => "refine",
            Phase::SnapshotRebuild => "snapshot_rebuild",
            Phase::QueueWait => "queue_wait",
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The phase the span covered.
    pub phase: Phase,
    /// Microseconds since the tracer's process-wide epoch at span begin.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Phase-specific work units (vertices removed, flow rounds, …).
    pub units: u64,
    /// Dense id of the recording thread (assigned on first record).
    pub thread: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns tracing on or off globally.  Spans opened while disabled record
/// nothing even if tracing is enabled before they close.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether tracing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn micros_since_epoch(at: Instant) -> u64 {
    u64::try_from(at.saturating_duration_since(epoch()).as_micros()).unwrap_or(u64::MAX)
}

/// A bounded event ring: overwrites the oldest events when full.
#[derive(Debug)]
struct Ring {
    events: Vec<TraceEvent>,
    /// Index the next event will be written to once `events` has reached
    /// capacity (classic circular buffer head).
    head: usize,
    dropped: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> (Vec<TraceEvent>, u64) {
        // Restore chronological order: the slice [head..] is older than [..head].
        let mut events = Vec::with_capacity(self.events.len());
        events.extend_from_slice(&self.events[self.head..]);
        events.extend_from_slice(&self.events[..self.head]);
        self.events.clear();
        self.head = 0;
        let dropped = std::mem::take(&mut self.dropped);
        (events, dropped)
    }
}

type SharedRing = Arc<Mutex<Ring>>;

/// Every ring ever created, so the timeline survives thread exit (short-lived
/// parallel sweep workers record spans too).
fn collectors() -> &'static Mutex<Vec<SharedRing>> {
    static COLLECTORS: OnceLock<Mutex<Vec<SharedRing>>> = OnceLock::new();
    COLLECTORS.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    static LOCAL_RING: (SharedRing, u64) = {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
        let ring: SharedRing = Arc::new(Mutex::new(Ring::new()));
        lock(collectors()).push(Arc::clone(&ring));
        (ring, NEXT_THREAD.fetch_add(1, Ordering::Relaxed))
    };
}

fn push_event(phase: Phase, start_us: u64, duration_us: u64, units: u64) {
    LOCAL_RING.with(|(ring, thread)| {
        lock(ring).push(TraceEvent {
            phase,
            start_us,
            duration_us,
            units,
            thread: *thread,
        });
    });
}

/// An open span; records a [`TraceEvent`] when dropped.  Inert (zero work on
/// drop, no timestamps taken) when tracing was disabled at [`span`] time.
#[derive(Debug)]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    phase: Phase,
    started: Instant,
    units: u64,
}

impl Span {
    /// Overwrites the span's work-unit annotation.
    pub fn set_units(&mut self, units: u64) {
        if let Some(active) = &mut self.active {
            active.units = units;
        }
    }

    /// Adds to the span's work-unit annotation.
    pub fn add_units(&mut self, units: u64) {
        if let Some(active) = &mut self.active {
            active.units += units;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let duration = active.started.elapsed();
            push_event(
                active.phase,
                micros_since_epoch(active.started),
                u64::try_from(duration.as_micros()).unwrap_or(u64::MAX),
                active.units,
            );
        }
    }
}

/// Opens a span for `phase`.  When tracing is disabled this is one relaxed
/// atomic load and returns an inert guard.
pub fn span(phase: Phase) -> Span {
    Span {
        active: enabled().then(|| ActiveSpan {
            phase,
            started: Instant::now(),
            units: 0,
        }),
    }
}

/// Records a span whose begin and end were observed explicitly — for phases
/// that cross threads, like a job's queue wait (enqueued on the connection
/// thread, dequeued on a worker).  The event lands in the **calling** thread's
/// ring.  No-op while tracing is disabled.
pub fn record(phase: Phase, started: Instant, duration: Duration, units: u64) {
    if !enabled() {
        return;
    }
    push_event(
        phase,
        micros_since_epoch(started),
        u64::try_from(duration.as_micros()).unwrap_or(u64::MAX),
        units,
    );
}

/// Drains every thread's ring into one timeline sorted by start time, and the
/// total number of events lost to ring overflow since the last drain.
pub fn take_timeline_with_drops() -> (Vec<TraceEvent>, u64) {
    let rings: Vec<SharedRing> = lock(collectors()).iter().map(Arc::clone).collect();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for ring in rings {
        let (mut drained, lost) = lock(&ring).drain();
        events.append(&mut drained);
        dropped += lost;
    }
    events.sort_by_key(|event| event.start_us);
    (events, dropped)
}

/// [`take_timeline_with_drops`] without the drop count.
pub fn take_timeline() -> Vec<TraceEvent> {
    take_timeline_with_drops().0
}

/// Discards all recorded events (a `take_timeline` whose result is dropped).
pub fn clear() {
    let _ = take_timeline_with_drops();
}

/// Renders a timeline as a JSON document:
/// `{"events": [{"phase", "thread", "start_us", "duration_us", "units"}, …],
///   "dropped": n}`.
///
/// Hand-rolled (phase tokens are static and numbers need no escaping) so the
/// tracer stays dependency-free.
pub fn timeline_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"events\":[");
    for (index, event) in events.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"phase\":\"{}\",\"thread\":{},\"start_us\":{},\"duration_us\":{},\"units\":{}}}",
            event.phase.as_str(),
            event.thread,
            event.start_us,
            event.duration_us,
            event.units
        ));
    }
    out.push_str(&format!("],\"dropped\":{dropped}}}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing is process-global state; the tests below run under one lock so
    // parallel test threads never observe each other's enable/drain cycles.
    fn tracing_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = tracing_test_lock();
        set_enabled(false);
        clear();
        {
            let mut span = span(Phase::Peel);
            span.set_units(10);
        }
        record(
            Phase::QueueWait,
            Instant::now(),
            Duration::from_millis(1),
            0,
        );
        assert!(take_timeline().is_empty());
    }

    #[test]
    fn spans_record_phases_units_and_order() {
        let _guard = tracing_test_lock();
        set_enabled(true);
        clear();
        {
            let mut outer = span(Phase::MuSweep);
            outer.add_units(2);
            outer.add_units(3);
            let _inner = span(Phase::CdShrink);
        }
        record(
            Phase::QueueWait,
            Instant::now(),
            Duration::from_micros(250),
            1,
        );
        set_enabled(false);
        let events = take_timeline();
        assert_eq!(events.len(), 3);
        let sweep = events.iter().find(|e| e.phase == Phase::MuSweep).unwrap();
        assert_eq!(sweep.units, 5);
        let shrink = events.iter().find(|e| e.phase == Phase::CdShrink).unwrap();
        let wait = events.iter().find(|e| e.phase == Phase::QueueWait).unwrap();
        assert_eq!(wait.duration_us, 250);
        // The inner span opened after and closed before the outer: it nests.
        assert!(shrink.start_us >= sweep.start_us);
        assert!(sweep.duration_us >= shrink.duration_us);
        // Drained means drained.
        assert!(take_timeline().is_empty());
    }

    #[test]
    fn cross_thread_events_share_the_timeline() {
        let _guard = tracing_test_lock();
        set_enabled(true);
        clear();
        let worker = std::thread::spawn(|| {
            let _span = span(Phase::SnapshotRebuild);
        });
        worker.join().unwrap();
        let _local = span(Phase::Peel);
        drop(_local);
        set_enabled(false);
        let events = take_timeline();
        let phases: Vec<Phase> = events.iter().map(|e| e.phase).collect();
        assert!(phases.contains(&Phase::SnapshotRebuild), "{phases:?}");
        assert!(phases.contains(&Phase::Peel));
        // Two distinct thread ids.
        let rebuild = events
            .iter()
            .find(|e| e.phase == Phase::SnapshotRebuild)
            .unwrap();
        let peel = events.iter().find(|e| e.phase == Phase::Peel).unwrap();
        assert_ne!(rebuild.thread, peel.thread);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut ring = Ring::new();
        for i in 0..(RING_CAPACITY + 10) {
            ring.push(TraceEvent {
                phase: Phase::Peel,
                start_us: i as u64,
                duration_us: 0,
                units: 0,
                thread: 0,
            });
        }
        let (events, dropped) = ring.drain();
        assert_eq!(events.len(), RING_CAPACITY);
        assert_eq!(dropped, 10);
        // Oldest were overwritten: the survivors start at 10 and stay ordered.
        assert_eq!(events[0].start_us, 10);
        assert!(events.windows(2).all(|w| w[0].start_us < w[1].start_us));
    }

    #[test]
    fn timeline_json_is_valid_and_complete() {
        let events = vec![
            TraceEvent {
                phase: Phase::Peel,
                start_us: 5,
                duration_us: 17,
                units: 3,
                thread: 0,
            },
            TraceEvent {
                phase: Phase::QueueWait,
                start_us: 30,
                duration_us: 2,
                units: 0,
                thread: 1,
            },
        ];
        let json = timeline_json(&events, 7);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"phase\":\"peel\""));
        assert!(json.contains("\"phase\":\"queue_wait\""));
        assert!(json.contains("\"duration_us\":17"));
        assert!(json.contains("\"dropped\":7"));
        assert_eq!(timeline_json(&[], 0), "{\"events\":[],\"dropped\":0}");
    }
}

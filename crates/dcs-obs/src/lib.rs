//! # dcs-obs — first-party observability for the DCS mining stack
//!
//! Everything above the solvers (the streaming server, the CLI, the benches)
//! needs to *see* the system run: how deep the job queue is, how long mines
//! take at p99, which solver phase a slow job spends its time in.  This crate
//! is the shared substrate for that, deliberately **dependency-free** (std
//! only) so even `dcs-graph` at the bottom of the stack can link it without
//! widening the offline `compat/` surface.
//!
//! Two pillars:
//!
//! * [`metrics`] — a registry of named **atomic counters, gauges and
//!   fixed-bucket log-scale histograms**.  Updates through the returned
//!   handles are lock-free (single atomic RMW ops); only registration takes a
//!   lock.  Snapshots are plain data, mergeable across registries/shards, and
//!   histograms summarise to p50/p95/p99.
//! * [`trace`] — a **phase tracer**: span-style begin/end events for solver
//!   phases (peel, flow rounds, CD shrink/expand, the µ_u sweep, snapshot
//!   rebuilds, queue wait) recorded into bounded per-thread ring buffers.
//!   Tracing is off by default and gated behind one relaxed atomic load —
//!   an instrumented-but-disabled build pays a branch per *phase* (not per
//!   iteration), which is unmeasurable next to the phases themselves.  The
//!   collected timeline exports as a JSON string with no serializer
//!   dependency.
//!
//! ```
//! use dcs_obs::metrics::MetricsRegistry;
//! use dcs_obs::trace::{self, Phase};
//!
//! let registry = MetricsRegistry::new();
//! let jobs = registry.counter("jobs_completed");
//! let wall = registry.histogram("job_wall_us");
//! jobs.inc();
//! wall.record(1500); // µs
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["jobs_completed"], 1);
//!
//! trace::set_enabled(true);
//! {
//!     let mut span = trace::span(Phase::Peel);
//!     span.set_units(42); // e.g. vertices removed
//! }
//! trace::set_enabled(false);
//! let events = trace::take_timeline();
//! assert_eq!(events.last().unwrap().phase, Phase::Peel);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
pub use trace::{span, Phase, Span, TraceEvent};

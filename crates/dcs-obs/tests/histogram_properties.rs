//! Property-based tests of histogram snapshots: merging is order-independent
//! (commutative and associative) and never loses a recorded sample.

use dcs_obs::metrics::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let histogram = Histogram::new();
    for &value in values {
        histogram.record(value);
    }
    histogram.snapshot()
}

fn merged(parts: &[HistogramSnapshot]) -> HistogramSnapshot {
    let mut total = HistogramSnapshot::default();
    for part in parts {
        total.merge(part);
    }
    total
}

proptest! {
    /// Merging per-shard snapshots in any order yields the same totals as
    /// recording every sample into one histogram.
    #[test]
    fn merge_is_order_independent_and_preserves_count(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000_000, 0..40),
            0..6,
        ),
        seed in 0u64..1000,
    ) {
        let snapshots: Vec<HistogramSnapshot> =
            shards.iter().map(|shard| snapshot_of(shard)).collect();

        // A deterministic shuffle of the merge order derived from `seed`.
        let mut shuffled = snapshots.clone();
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state as usize) % (i + 1));
        }

        let forward = merged(&snapshots);
        let reordered = merged(&shuffled);
        prop_assert_eq!(&forward, &reordered);

        // And identical to recording everything into a single histogram.
        let all: Vec<u64> = shards.iter().flatten().copied().collect();
        let single = snapshot_of(&all);
        prop_assert_eq!(&forward, &single);

        // Total count and sum are preserved exactly.
        prop_assert_eq!(forward.count, all.len() as u64);
        prop_assert_eq!(forward.sum, all.iter().sum::<u64>());
        prop_assert_eq!(forward.max, all.iter().copied().max().unwrap_or(0));

        // Quantiles of a merged snapshot stay within the recorded range's
        // bucket resolution: never below the true p0, never above the max.
        if !all.is_empty() {
            prop_assert!(forward.p50() <= forward.max);
            prop_assert!(forward.p99() <= forward.max);
            prop_assert!(forward.p50() <= forward.p95());
            prop_assert!(forward.p95() <= forward.p99());
        }
    }

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..u64::MAX / 2, 0..30),
        b in proptest::collection::vec(0u64..u64::MAX / 2, 0..30),
        c in proptest::collection::vec(0u64..u64::MAX / 2, 0..30),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);

        prop_assert_eq!(left, right);
    }
}

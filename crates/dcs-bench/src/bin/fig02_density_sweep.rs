//! Fig. 2 — (a) speed-up of SEACD+Refine over SEA+Refine and (b) the rate of expansion
//! errors committed by the original SEA, both as a function of the density `m+/n` of the
//! positive part of the difference graph.
//!
//! The sweep generates a family of collaboration-style difference graphs with a fixed
//! vertex count and an increasing number of positive edges.
//!
//! ```text
//! cargo run -p dcs-bench --release --bin fig02_density_sweep -- --scale default
//! ```

use dcs_bench::{time, ExpOptions, Table};
use dcs_core::dcsga::{refine, DcsgaConfig, SeaCd};
use dcs_datasets::{CollabConfig, Scale};
use dcs_densest::{OriginalSea, SeaConfig};

fn main() {
    let options = ExpOptions::from_args();
    let (n, densities, limit): (usize, Vec<usize>, Option<usize>) = match options.scale {
        Scale::Tiny => (300, vec![2, 4, 8], Some(150)),
        Scale::Default => (1_500, vec![2, 5, 10, 20, 30, 40], Some(400)),
        Scale::Full => (5_000, vec![2, 5, 10, 20, 30, 40], Some(1_000)),
    };

    let mut table = Table::new(
        "Fig. 2 — SEACD+Refine speed-up over SEA+Refine and SEA expansion-error rate vs m+/n",
        &[
            "m+/n",
            "n",
            "m+",
            "SEACD+Refine (s)",
            "SEA+Refine (s)",
            "SpeedUp",
            "#Errors in SEA",
            "Error rate (#Errors/n)",
        ],
    );
    let mut json_rows = Vec::new();
    let config = DcsgaConfig::default();

    for &density in &densities {
        let collab = CollabConfig {
            num_vertices: n,
            num_edges: n * density,
            gamma: 2.1,
            mean_weight: 2.0,
            planted_groups: vec![(6, 12.0), (10, 6.0)],
            seed: options.seed ^ (density as u64),
        };
        let (gd, _) = collab.generate_single();
        let gd_plus = gd.positive_part();
        let m_plus = gd_plus.num_edges();

        let (seacd, seacd_t) =
            time(|| SeaCd::new(config).sweep(&gd_plus, limit, false, |g, x| refine(g, x, &config)));
        let (sea, sea_t) = time(|| {
            OriginalSea::new(SeaConfig::default()).run_all_vertices(&gd_plus, limit, false)
        });

        let speedup = sea_t.as_secs_f64() / seacd_t.as_secs_f64().max(1e-9);
        let error_rate = sea.expansion_errors as f64 / sea.initializations.max(1) as f64;
        table.add_row(vec![
            format!("{:.1}", m_plus as f64 / n as f64),
            n.to_string(),
            m_plus.to_string(),
            format!("{:.3}", seacd_t.as_secs_f64()),
            format!("{:.3}", sea_t.as_secs_f64()),
            format!("{speedup:.1}x"),
            sea.expansion_errors.to_string(),
            format!("{error_rate:.4}"),
        ]);
        json_rows.push(serde_json::json!({
            "m_plus_over_n": m_plus as f64 / n as f64,
            "n": n, "m_plus": m_plus,
            "seacd_refine_seconds": seacd_t.as_secs_f64(),
            "sea_refine_seconds": sea_t.as_secs_f64(),
            "speedup": speedup,
            "sea_expansion_errors": sea.expansion_errors,
            "sea_error_rate": error_rate,
            "objective_gap": sea.best_objective - seacd.best_objective,
        }));
    }

    table.print();
    println!(
        "(Fig. 2a plots the SpeedUp column, Fig. 2b the error-rate column, both against m+/n.)"
    );
    if options.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}

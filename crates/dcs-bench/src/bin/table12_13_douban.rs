//! Tables XII & XIII — DCS on the Douban-style social/interest data, both directions
//! (Interest−Social and Social−Interest) and both density measures, for the Movie and
//! Book interest profiles.
//!
//! ```text
//! cargo run -p dcs-bench --release --bin table12_13_douban -- --scale default
//! ```

use dcs_bench::{f2, f3, yes_no, ExpOptions, Table};
use dcs_core::dcsad::DcsGreedy;
use dcs_core::dcsga::NewSea;
use dcs_core::{difference_graph, ContrastReport};
use dcs_datasets::SocialInterestConfig;

fn main() {
    let options = ExpOptions::from_args();

    let mut table12 = Table::new(
        "Table XII — DCS w.r.t. average degree on the Douban-style data",
        &[
            "Interest",
            "GD Type",
            "Variant",
            "#Users",
            "AvgDeg diff",
            "Approx ratio",
            "PosClique?",
        ],
    );
    let mut table13 = Table::new(
        "Table XIII — DCS w.r.t. graph affinity on the Douban-style data",
        &[
            "Interest",
            "GD Type",
            "#Users",
            "Affinity diff",
            "EdgeDensity diff",
        ],
    );
    let mut json_rows = Vec::new();

    for (interest, pair) in [
        (
            "Movie",
            SocialInterestConfig::movie(options.scale).generate(),
        ),
        ("Book", SocialInterestConfig::book(options.scale).generate()),
    ] {
        for (gd_type, gd) in [
            (
                "Interest-Social",
                difference_graph(&pair.g2, &pair.g1).unwrap(),
            ),
            (
                "Social-Interest",
                difference_graph(&pair.g1, &pair.g2).unwrap(),
            ),
        ] {
            let solver = DcsGreedy::default();
            let full = solver.solve(&gd);
            let gd_only = solver.solve_gd_only(&gd);
            let plus_only = solver.solve_gd_plus_only(&gd);
            for (variant, sol, ratio) in [
                ("DCSGreedy", &full, Some(full.data_dependent_ratio)),
                ("GD only", &gd_only, None),
                ("GD+ only", &plus_only, None),
            ] {
                let report = ContrastReport::for_subset(&gd, &sol.subset);
                table12.add_row(vec![
                    interest.to_string(),
                    gd_type.to_string(),
                    variant.to_string(),
                    report.size.to_string(),
                    f3(report.average_degree_difference),
                    ratio.map(f2).unwrap_or_else(|| "—".into()),
                    yes_no(report.is_positive_clique),
                ]);
                json_rows.push(serde_json::json!({
                    "table": "XII", "interest": interest, "gd_type": gd_type,
                    "variant": variant, "size": report.size,
                    "avg_degree_diff": report.average_degree_difference,
                    "approx_ratio": ratio,
                }));
            }

            let ga = NewSea::default().solve(&gd);
            let report = ContrastReport::for_embedding(&gd, &ga.embedding);
            table13.add_row(vec![
                interest.to_string(),
                gd_type.to_string(),
                report.size.to_string(),
                f3(report.affinity_difference),
                f3(report.edge_density_difference),
            ]);
            json_rows.push(serde_json::json!({
                "table": "XIII", "interest": interest, "gd_type": gd_type,
                "size": report.size,
                "affinity_diff": report.affinity_difference,
                "edge_density_diff": report.edge_density_difference,
            }));
        }
    }

    table12.print();
    table13.print();
    if options.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}

//! Table II — statistics of the difference graphs of every dataset/setting combination.
//!
//! ```text
//! cargo run -p dcs-bench --release --bin table02_stats -- --scale default
//! ```

use dcs_bench::{ExpOptions, Table};
use dcs_core::{clamp_weights, difference_graph_with, DiscreteRule, WeightScheme};
use dcs_datasets::{
    CoauthorConfig, CollabConfig, ConflictConfig, DiffStats, KeywordConfig, SocialInterestConfig,
};
use dcs_graph::SignedGraph;

fn row(table: &mut Table, data: &str, setting: &str, gd_type: &str, gd: &SignedGraph) -> DiffStats {
    let stats = DiffStats::compute(gd);
    table.add_row(vec![
        data.to_string(),
        setting.to_string(),
        gd_type.to_string(),
        stats.n.to_string(),
        stats.m_plus.to_string(),
        stats.m_minus.to_string(),
        format!("{:.3}", stats.max_weight),
        format!("{:.3}", stats.min_weight),
        format!("{:.4}", stats.average_weight),
    ]);
    stats
}

fn main() {
    let options = ExpOptions::from_args();
    let scale = options.scale;
    let mut table = Table::new(
        "Table II — statistics of difference graphs (synthetic stand-ins)",
        &[
            "Data",
            "Setting",
            "GD Type",
            "n",
            "m+",
            "m-",
            "Max w",
            "Min w",
            "Average w",
        ],
    );
    let mut json_rows = Vec::new();

    // DBLP co-author graphs: Weighted/Discrete x Emerging/Disappearing.
    let dblp = CoauthorConfig::for_scale(scale).generate();
    for (setting, scheme) in [
        ("Weighted", WeightScheme::Weighted),
        ("Discrete", WeightScheme::Discrete(DiscreteRule::default())),
    ] {
        let emerging = difference_graph_with(&dblp.g2, &dblp.g1, scheme).unwrap();
        json_rows.push((
            "DBLP",
            setting,
            "Emerging",
            row(&mut table, "DBLP", setting, "Emerging", &emerging),
        ));
        let disappearing = difference_graph_with(&dblp.g1, &dblp.g2, scheme).unwrap();
        json_rows.push((
            "DBLP",
            setting,
            "Disappearing",
            row(&mut table, "DBLP", setting, "Disappearing", &disappearing),
        ));
    }

    // DM keyword association graphs.
    let dm = KeywordConfig::for_scale(scale).generate();
    let dm_emerging = difference_graph_with(&dm.g2, &dm.g1, WeightScheme::Weighted).unwrap();
    json_rows.push((
        "DM",
        "—",
        "Emerging",
        row(&mut table, "DM", "—", "Emerging", &dm_emerging),
    ));
    let dm_disappearing = difference_graph_with(&dm.g1, &dm.g2, WeightScheme::Weighted).unwrap();
    json_rows.push((
        "DM",
        "—",
        "Disappearing",
        row(&mut table, "DM", "—", "Disappearing", &dm_disappearing),
    ));

    // Wiki editor interactions.
    let wiki = ConflictConfig::for_scale(scale).generate();
    let consistent = difference_graph_with(&wiki.g1, &wiki.g2, WeightScheme::Weighted).unwrap();
    json_rows.push((
        "Wiki",
        "—",
        "Consistent",
        row(&mut table, "Wiki", "—", "Consistent", &consistent),
    ));
    let conflicting = difference_graph_with(&wiki.g2, &wiki.g1, WeightScheme::Weighted).unwrap();
    json_rows.push((
        "Wiki",
        "—",
        "Conflicting",
        row(&mut table, "Wiki", "—", "Conflicting", &conflicting),
    ));

    // Douban movie/book interest vs social graphs.
    for (name, pair) in [
        ("Movie", SocialInterestConfig::movie(scale).generate()),
        ("Book", SocialInterestConfig::book(scale).generate()),
    ] {
        let interest_social =
            difference_graph_with(&pair.g2, &pair.g1, WeightScheme::Weighted).unwrap();
        json_rows.push((
            if name == "Movie" { "Movie" } else { "Book" },
            "—",
            "Interest-Social",
            row(&mut table, name, "—", "Interest-Social", &interest_social),
        ));
        let social_interest =
            difference_graph_with(&pair.g1, &pair.g2, WeightScheme::Weighted).unwrap();
        json_rows.push((
            if name == "Movie" { "Movie" } else { "Book" },
            "—",
            "Social-Interest",
            row(&mut table, name, "—", "Social-Interest", &social_interest),
        ));
    }

    // DBLP-C timestamp-split pair.
    let dblp_c = CollabConfig::dblp_c(scale).generate_pair();
    for (setting, scheme) in [
        ("Weighted", WeightScheme::Weighted),
        ("Discrete", WeightScheme::Discrete(DiscreteRule::default())),
    ] {
        let gd = difference_graph_with(&dblp_c.g2, &dblp_c.g1, scheme).unwrap();
        json_rows.push((
            "DBLP-C",
            setting,
            "—",
            row(&mut table, "DBLP-C", setting, "—", &gd),
        ));
    }

    // Actor collaboration network used directly as a difference graph.
    let (actor, _) = CollabConfig::actor(scale).generate_single();
    json_rows.push((
        "Actor",
        "Weighted",
        "—",
        row(&mut table, "Actor", "Weighted", "—", &actor),
    ));
    let actor_clamped = clamp_weights(&actor, 10.0);
    json_rows.push((
        "Actor",
        "Discrete",
        "—",
        row(&mut table, "Actor", "Discrete", "—", &actor_clamped),
    ));

    table.print();

    if options.json {
        let json: Vec<_> = json_rows
            .iter()
            .map(|(data, setting, gd_type, stats)| {
                serde_json::json!({
                    "data": data, "setting": setting, "gd_type": gd_type, "stats": stats,
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&json).unwrap());
    }
}

//! Fig. 3 — positive-clique census of the Douban-style difference graphs: the number of
//! k-cliques (after dedup and subset removal) returned by the all-initialisations
//! SEACD+Refinement sweep, per direction and interest profile.
//!
//! ```text
//! cargo run -p dcs-bench --release --bin fig03_clique_counts -- --scale default
//! ```

use dcs_bench::{ExpOptions, Table};
use dcs_core::dcsga::{clique_census, refine, DcsgaConfig, SeaCd};
use dcs_core::difference_graph;
use dcs_datasets::{Scale, SocialInterestConfig};
use dcs_graph::SignedGraph;
use std::collections::BTreeMap;

/// Returns the histogram: clique size → number of cliques of that size.
fn clique_histogram(gd: &SignedGraph, limit: Option<usize>) -> BTreeMap<usize, usize> {
    let config = DcsgaConfig::default();
    let gd_plus = gd.positive_part();
    let sweep = SeaCd::new(config).sweep(&gd_plus, limit, true, |g, x| refine(g, x, &config));
    let census = clique_census(&gd_plus, &sweep.all_solutions);
    let mut histogram = BTreeMap::new();
    for clique in census {
        *histogram.entry(clique.support.len()).or_insert(0) += 1;
    }
    histogram
}

fn main() {
    let options = ExpOptions::from_args();
    let limit = match options.scale {
        Scale::Tiny => None,
        Scale::Default => Some(1_200),
        Scale::Full => Some(3_000),
    };
    let mut json = serde_json::Map::new();

    for (interest, pair, min_size) in [
        (
            "Movie",
            SocialInterestConfig::movie(options.scale).generate(),
            4usize,
        ),
        (
            "Book",
            SocialInterestConfig::book(options.scale).generate(),
            3usize,
        ),
    ] {
        let directions = [
            (
                "Interest-Social",
                difference_graph(&pair.g2, &pair.g1).unwrap(),
            ),
            (
                "Social-Interest",
                difference_graph(&pair.g1, &pair.g2).unwrap(),
            ),
        ];
        let histograms: Vec<(String, BTreeMap<usize, usize>)> = directions
            .iter()
            .map(|(name, gd)| (name.to_string(), clique_histogram(gd, limit)))
            .collect();

        let max_size = histograms
            .iter()
            .flat_map(|(_, h)| h.keys().copied())
            .max()
            .unwrap_or(0);
        let mut table = Table::new(
            &format!("Fig. 3 ({interest}) — #positive cliques by size (sizes ≥ {min_size})"),
            &["Clique size", "Interest-Social", "Social-Interest"],
        );
        for size in min_size..=max_size {
            let a = histograms[0].1.get(&size).copied().unwrap_or(0);
            let b = histograms[1].1.get(&size).copied().unwrap_or(0);
            if a == 0 && b == 0 {
                continue;
            }
            table.add_row(vec![size.to_string(), a.to_string(), b.to_string()]);
        }
        table.print();

        let totals: Vec<usize> = histograms
            .iter()
            .map(|(_, h)| {
                h.iter()
                    .filter(|(s, _)| **s >= min_size)
                    .map(|(_, c)| c)
                    .sum()
            })
            .collect();
        println!(
            "{interest}: total cliques ≥ {min_size}: Interest-Social = {}, Social-Interest = {}\n",
            totals[0], totals[1]
        );
        json.insert(
            interest.to_string(),
            serde_json::json!({
                "interest_minus_social": histograms[0].1,
                "social_minus_interest": histograms[1].1,
            }),
        );
    }

    if options.json {
        println!("{}", serde_json::to_string_pretty(&json).unwrap());
    }
}

//! Hot-path allocation benchmark of the solver workspaces and masked views.
//!
//! Measures, with a **counting global allocator** (every `alloc`/`realloc` call and
//! its bytes are tallied — bench-binary only, the library crates never carry the
//! instrumentation), how much heap churn one solve costs, for **both density
//! measures**:
//!
//! * **mine** — a from-scratch `mine_difference_in` with no workspace: every solve
//!   allocates its peel heaps, degree arrays and transient scratch.  This is the
//!   baseline the ≥2× reduction gate is measured against.
//! * **re-mine** — the steady-state streaming path: `StreamingDcs::mine_now` with
//!   the monitor's persistent `SolverWorkspace` warm.
//! * **top-k** — per-round allocations of the masked-view `top_k_in` driver with a
//!   warm shared workspace, against a from-scratch reference loop that clones the
//!   working graph and compacts it with `remove_vertices_in_place` per round (the
//!   pre-workspace driver shape).
//! * **sweep** — per-grid-point allocations of `alpha_sweep_in` (template-based
//!   in-place reweighting + shared workspace) against a cold loop building each α
//!   through `scaled_difference_graph` and solving without a workspace.
//!
//! The first two paths and the sweep are measured twice: under the **average
//! degree** measure (DCSGreedy peel) and, in the `dcsga` section, under the **graph
//! affinity** measure (NewSEA over the positive-filtered view, with the dense
//! workspace-backed embedding arena warm in the steady state).
//!
//! Output is a single JSON object written to `BENCH_hotpath.json` (and stdout).  In
//! `--smoke` mode the binary **fails** (exit 1) unless the steady-state re-mine
//! (both measures) and top-k round paths allocate at most half of what the
//! from-scratch solve does, and — when `--baseline <path>` points at a checked-in
//! previous report — unless every gated allocation metric is within 10% of that
//! baseline.  Timings (`ns_per_solve`) are reported for trend-watching but never
//! gated: CI machines are too noisy.
//!
//! Two opt-in sections extend the core allocation suite: `--large` (wall-clock
//! parallel-speedup + bit-identity at million-edge scale) and `--load`
//! (cold-load wall clock and allocations of the text edge-list parser against
//! the zero-copy graph-pack reader, gating a ≥10× pack speedup and the
//! O(header) open-allocation contract of the mmap path).
//!
//! ```text
//! cargo run --release -p dcs-bench --bin solver_hotpath -- [--smoke] [--large] \
//!     [--load] [--pack-dir DIR] [--baseline BENCH_hotpath.json] [--out BENCH_hotpath.json]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use dcs_core::dcsga::DcsgaConfig;
use dcs_core::{
    mine_difference_in, scaled_difference_graph, top_k_in, ContrastSolver, DensityMeasure,
    MeasureSolver, SharedWorkspace, SolveContext, StreamingConfig, StreamingDcs,
};
use dcs_graph::{GraphBuilder, SignedGraph, VertexId};
use serde_json::{json, Value};

/// Counts every allocation the process makes.  `realloc` counts as one allocation
/// of the new size (growth of a reused buffer is real allocator traffic too).
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Allocation + wall-clock tally of one measured closure.
struct Measured {
    allocs: u64,
    bytes: u64,
    nanos: u64,
}

fn measure<T>(f: impl FnOnce() -> T) -> (T, Measured) {
    let allocs0 = ALLOCATIONS.load(Ordering::Relaxed);
    let bytes0 = BYTES.load(Ordering::Relaxed);
    let start = Instant::now();
    let value = f();
    let nanos = start.elapsed().as_nanos() as u64;
    (
        value,
        Measured {
            allocs: ALLOCATIONS.load(Ordering::Relaxed) - allocs0,
            bytes: BYTES.load(Ordering::Relaxed) - bytes0,
            nanos,
        },
    )
}

/// Deterministic splitmix64 — keeps the workload identical across runs, which is
/// what makes allocation counts comparable against a checked-in baseline.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn weight(&mut self) -> f64 {
        1.0 + (self.next() % 1000) as f64 / 250.0
    }
}

struct BenchConfig {
    vertices: usize,
    baseline_edges: usize,
    repetitions: usize,
    topk: usize,
}

fn build_baseline(config: &BenchConfig, rng: &mut Rng) -> SignedGraph {
    let n = config.vertices;
    let mut builder = GraphBuilder::new(n);
    for v in 0..n {
        builder.add_edge(v as VertexId, ((v + 1) % n) as VertexId, rng.weight());
    }
    while builder.num_edges() < config.baseline_edges {
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v {
            builder.add_edge(u as VertexId, v as VertexId, rng.weight());
        }
    }
    builder.build()
}

fn per(m: &Measured, count: usize) -> (f64, f64, f64) {
    let count = count.max(1) as f64;
    (
        m.allocs as f64 / count,
        m.bytes as f64 / count,
        m.nanos as f64 / count,
    )
}

fn path_json(label: &str, m: &Measured, count: usize) -> Value {
    let (allocs, bytes, nanos) = per(m, count);
    json!({
        "path": label,
        "allocs_per_solve": allocs,
        "bytes_per_solve": bytes,
        "ns_per_solve": nanos,
    })
}

/// The `--large` section: million-edge-scale wall-clock comparison of the
/// sequential (`--threads 1`) and parallel (`--threads 4`) solve paths, with
/// **bit-identity** asserted on every objective and support set.  The ≥2×
/// speedup gate and the >10% wall-clock regression gate (vs a checked-in
/// baseline carrying a `large` section) are enforced only on machines with at
/// least 4 cores — on smaller machines the section still runs (so the
/// bit-identity checks always execute) and the gates are recorded as skipped.
fn run_large_section(smoke: bool, baseline: Option<&Value>) -> (Value, bool) {
    use dcs_datasets::large::{generate, LargeConfig};

    let config = if smoke {
        LargeConfig {
            vertices: 20_000,
            edges: 200_000,
            group_sizes: vec![24, 16],
            ..LargeConfig::benchmark()
        }
    } else {
        LargeConfig::benchmark()
    };
    let repetitions = if smoke { 2 } else { 3 };
    eprintln!(
        "large: generating {} vertices / {} target background edges ...",
        config.vertices, config.edges
    );
    let pair = generate(&config);
    let gd = dcs_core::difference_graph(&pair.g2, &pair.g1).unwrap();

    let streaming_config = StreamingConfig {
        remine_every: 0,
        alert_threshold: 0.0,
        measure: DensityMeasure::AverageDegree,
    };
    let ws1 = SharedWorkspace::new();
    let ws4 = SharedWorkspace::new();
    let cx1 = SolveContext::unbounded()
        .with_workspace(&ws1)
        .with_threads(1);
    let cx4 = SolveContext::unbounded()
        .with_workspace(&ws4)
        .with_threads(4);
    let mine =
        |cx: &SolveContext| mine_difference_in(&gd, &streaming_config, repetitions, None, cx);

    // Warm both workspaces outside the measured window.
    let warm1 = mine(&cx1);
    let warm4 = mine(&cx4);
    assert_eq!(
        warm1.report.subset, warm4.report.subset,
        "parallel mine must find the identical support"
    );

    let (alert1, remine1) = measure(|| {
        let mut last = None;
        for _ in 0..repetitions {
            last = Some(mine(&cx1));
        }
        last.expect("at least one repetition")
    });
    let (alert4, remine4) = measure(|| {
        let mut last = None;
        for _ in 0..repetitions {
            last = Some(mine(&cx4));
        }
        last.expect("at least one repetition")
    });
    assert_eq!(alert1.report.subset, alert4.report.subset);
    assert_eq!(
        alert1.report.average_degree_difference.to_bits(),
        alert4.report.average_degree_difference.to_bits(),
        "parallel mine must be bit-identical"
    );
    assert!(!alert1.report.subset.is_empty(), "large mine found nothing");

    let k = pair.planted.len() + 2;
    let topk = |cx: &SolveContext| {
        top_k_in(
            &gd,
            k,
            DensityMeasure::AverageDegree,
            DcsgaConfig::default(),
            cx,
        )
    };
    let _ = topk(&cx1); // warm
    let _ = topk(&cx4);
    let (outcome1, topk1) = measure(|| topk(&cx1));
    let (outcome4, topk4) = measure(|| topk(&cx4));
    assert_eq!(outcome1.solutions.len(), outcome4.solutions.len());
    for (a, b) in outcome1.solutions.iter().zip(&outcome4.solutions) {
        assert_eq!(a.subset, b.subset, "top-k supports must match per rank");
        assert_eq!(
            a.objective.to_bits(),
            b.objective.to_bits(),
            "top-k objectives must be bit-identical"
        );
    }

    let remine_speedup = remine1.nanos as f64 / remine4.nanos.max(1) as f64;
    let topk_speedup = topk1.nanos as f64 / topk4.nanos.max(1) as f64;
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // The ≥2x speedup gate is defined at full large-graph scale on a 4-core
    // machine; the smoke config's smaller graph exercises the same code paths
    // (and always enforces bit-identity) without binding the perf contract.
    let speedup_gate = cores >= 4 && !smoke;
    // Wall-clock baselines only transfer between runs of the same shape: the
    // same smoke/full workload on a machine with the same core count.  Absolute
    // nanoseconds from a differently-sized box gate nothing but noise.
    let baseline_large = baseline.and_then(|v| v.get("large"));
    let baseline_comparable = baseline_large
        .and_then(|l| l.get("cores"))
        .and_then(Value::as_u64)
        == Some(cores as u64)
        && baseline_large
            .and_then(|l| l.get("graph"))
            .and_then(|g| g.get("vertices"))
            .and_then(Value::as_u64)
            == Some(config.vertices as u64);
    let wall_gate = cores >= 4 && baseline_comparable;

    let mut failed = false;
    if speedup_gate {
        if remine_speedup < 2.0 {
            eprintln!(
                "FAIL: large re-mine speedup {remine_speedup:.2}x < 2x on {cores} cores \
                 (threads 1: {} ns, threads 4: {} ns)",
                remine1.nanos / repetitions as u64,
                remine4.nanos / repetitions as u64
            );
            failed = true;
        }
        if topk_speedup < 2.0 {
            eprintln!("FAIL: large top-k speedup {topk_speedup:.2}x < 2x on {cores} cores");
            failed = true;
        }
    } else {
        eprintln!(
            "large: speedup gate skipped ({}); bit-identity checks still enforced",
            if cores < 4 {
                format!("{cores} cores < 4")
            } else {
                "smoke mode".to_string()
            }
        );
    }
    if wall_gate {
        // Wall-clock regression gate vs the checked-in baseline's large section.
        let checks: [(&str, f64, &[&str]); 2] = [
            (
                "large.remine.threads4.ns_per_solve",
                remine4.nanos as f64 / repetitions as f64,
                &["large", "remine", "threads4", "ns_per_solve"],
            ),
            (
                "large.topk.threads4.ns_per_solve",
                topk4.nanos as f64,
                &["large", "topk", "threads4", "ns_per_solve"],
            ),
        ];
        for (label, current, keys) in checks {
            let mut node = baseline;
            for key in keys {
                node = node.and_then(|v| v.get(key));
            }
            let Some(reference) = node.and_then(Value::as_f64) else {
                eprintln!("warning: baseline lacks {label}; skipping wall regression gate");
                continue;
            };
            if reference > 0.0 && current > reference * 1.10 {
                eprintln!(
                    "FAIL: {label} regressed: {current:.0} ns vs baseline {reference:.0} ns (>10%)"
                );
                failed = true;
            }
        }
    } else {
        eprintln!(
            "large: wall-regression gate skipped ({})",
            if cores < 4 {
                format!("{cores} cores < 4")
            } else {
                "baseline from a different workload or core count".to_string()
            }
        );
    }

    let section = json!({
        "graph": {
            "vertices": config.vertices,
            "difference_edges": gd.num_edges(),
        },
        "repetitions": repetitions,
        "cores": cores,
        "gates": {
            "speedup": if speedup_gate { "enforced" } else { "skipped" },
            "wall_regression": if wall_gate { "enforced" } else { "skipped" },
        },
        "bit_identical": true,
        "remine": {
            "threads1": { "ns_per_solve": remine1.nanos as f64 / repetitions as f64 },
            "threads4": { "ns_per_solve": remine4.nanos as f64 / repetitions as f64 },
            "speedup": remine_speedup,
        },
        "topk": {
            "k": k,
            "rounds": outcome1.solutions.len(),
            "threads1": { "ns_per_solve": topk1.nanos },
            "threads4": { "ns_per_solve": topk4.nanos },
            "speedup": topk_speedup,
        },
    });
    (section, failed)
}

/// The `--load` section: cold-load comparison of the text edge-list parser
/// against the zero-copy graph-pack path at large-graph scale.  Three numbers
/// per path (allocations, bytes, wall clock), two gates:
///
/// * **speedup** — `GraphPack::open` + `to_graph` must be ≥ 10× faster than
///   parsing the equivalent text edge list (a same-machine ratio, so it is
///   enforced everywhere, smoke and full alike).
/// * **open allocations** — on the mmap path, opening a pack must allocate
///   O(header) bytes (≤ 64 KiB) regardless of pack size: the CSR payload
///   stays in the kernel mapping.  Skipped when the platform falls back to
///   read-into-memory (`is_mapped() == false`).
///
/// The packs are produced by the **streaming** writer (`generate_packs`), so
/// the section doubly serves as an end-to-end run of the dataset-to-pack
/// pipeline.  `--pack-dir DIR` keeps the generated artifacts for reuse across
/// runs (CI caches them keyed on the generator sources); without it the files
/// live in a per-process temp directory and are removed afterwards.
fn run_load_section(smoke: bool, pack_dir: Option<&str>) -> (Value, bool) {
    use dcs_datasets::large::{generate_packs, LargeConfig};
    use dcs_graph::io::{read_edge_list_file, write_edge_list_file};
    use dcs_graph::GraphPack;
    use std::path::PathBuf;

    let config = if smoke {
        LargeConfig {
            vertices: 20_000,
            edges: 200_000,
            group_sizes: vec![24, 16],
            ..LargeConfig::benchmark()
        }
    } else {
        LargeConfig::benchmark()
    };
    let repetitions = 3usize;

    let (dir, ephemeral) = match pack_dir {
        Some(dir) => (PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!("dcs_hotpath_load_{}", std::process::id())),
            true,
        ),
    };
    std::fs::create_dir_all(&dir).expect("create pack directory");
    let stem = format!("load_{}v_{}e", config.vertices, config.edges);
    let g1_pack = dir.join(format!("{stem}.g1.dcspack"));
    let g2_pack = dir.join(format!("{stem}.g2.dcspack"));
    let text = dir.join(format!("{stem}.g1.edges"));

    // Generation is pinned-seed and byte-identical, so a cached pack of the
    // right scale is interchangeable with a fresh one.  Anything that does not
    // open cleanly is regenerated.
    let cached = !ephemeral
        && text.exists()
        && g2_pack.exists()
        && GraphPack::open(&g1_pack)
            .map(|p| p.vertices() == config.vertices)
            .unwrap_or(false);
    if !cached {
        eprintln!(
            "load: streaming {} vertices / {} target background edges into packs ...",
            config.vertices, config.edges
        );
        generate_packs(&config, &g1_pack, &g2_pack).expect("stream packs to disk");
        let g1 = GraphPack::open(&g1_pack)
            .expect("open freshly written pack")
            .to_graph()
            .expect("decode freshly written pack");
        write_edge_list_file(&g1, &text).expect("write text edge list");
    }

    // Text parse: the pre-pack cold-load path.
    let (text_graph, parse) = measure(|| {
        let mut last = None;
        for _ in 0..repetitions {
            last = Some(read_edge_list_file(&text).expect("parse text edge list"));
        }
        last.expect("at least one repetition")
    });

    // Pack open alone: the O(header) eager work (magic, checksums, bounds).
    let (probe_pack, open) = measure(|| {
        let mut last = None;
        for _ in 0..repetitions {
            last = Some(GraphPack::open(&g1_pack).expect("open pack"));
        }
        last.expect("at least one repetition")
    });
    let mapped = probe_pack.is_mapped();

    // Pack open + decode to a solver-ready graph: the end-to-end comparison
    // against the text parse.
    let (pack_graph, load) = measure(|| {
        let mut last = None;
        for _ in 0..repetitions {
            let pack = GraphPack::open(&g1_pack).expect("open pack");
            last = Some(pack.to_graph().expect("decode pack"));
        }
        last.expect("at least one repetition")
    });
    // Read-into-memory fallback, reported for trend-watching, never gated (it
    // is the degraded path for platforms without a usable mmap).
    let (_, buffered) = measure(|| {
        GraphPack::open_buffered(&g1_pack)
            .expect("open pack buffered")
            .to_graph()
            .expect("decode buffered pack")
    });

    // The text round trip cannot represent trailing isolated vertices (an edge
    // list has no vertex-count record), so equality is on the edge sequences:
    // same CSR order, same endpoints, bit-identical weights.
    assert_eq!(text_graph.num_edges(), pack_graph.num_edges());
    assert!(
        text_graph.edges().eq(pack_graph.edges()),
        "pack decode and text parse must produce identical edges"
    );

    let (parse_allocs, parse_bytes, parse_ns) = per(&parse, repetitions);
    let (open_allocs, open_bytes, open_ns) = per(&open, repetitions);
    let (load_allocs, load_bytes, load_ns) = per(&load, repetitions);
    let speedup = parse_ns / load_ns.max(1.0);
    let pack_bytes = std::fs::metadata(&g1_pack).map(|m| m.len()).unwrap_or(0);
    let text_bytes = std::fs::metadata(&text).map(|m| m.len()).unwrap_or(0);

    let mut failed = false;
    if speedup < 10.0 {
        eprintln!(
            "FAIL: pack load is only {speedup:.1}x faster than text parse \
             ({load_ns:.0} ns vs {parse_ns:.0} ns; >= 10x required)"
        );
        failed = true;
    }
    const OPEN_BYTES_CEILING: f64 = 64.0 * 1024.0;
    if mapped {
        if open_bytes > OPEN_BYTES_CEILING {
            eprintln!(
                "FAIL: mmap pack open allocates {open_bytes:.0} bytes for a {pack_bytes}-byte \
                 pack (O(header) contract: <= {OPEN_BYTES_CEILING:.0} bytes)"
            );
            failed = true;
        }
    } else {
        eprintln!("load: open-allocation gate skipped (mmap unavailable, buffered fallback)");
    }

    let section = json!({
        "graph": {
            "vertices": config.vertices,
            "edges": text_graph.num_edges(),
        },
        "repetitions": repetitions,
        "cached_packs": cached,
        "pack_file_bytes": pack_bytes,
        "text_file_bytes": text_bytes,
        "mapped": mapped,
        "gates": {
            "speedup": "enforced",
            "open_allocs": if mapped { "enforced" } else { "skipped" },
        },
        "text_parse": {
            "allocs_per_load": parse_allocs,
            "bytes_per_load": parse_bytes,
            "ns_per_load": parse_ns,
        },
        "pack_open": {
            "allocs_per_open": open_allocs,
            "bytes_per_open": open_bytes,
            "ns_per_open": open_ns,
        },
        "pack_load": {
            "allocs_per_load": load_allocs,
            "bytes_per_load": load_bytes,
            "ns_per_load": load_ns,
        },
        "buffered_load": { "ns_per_load": buffered.nanos },
        "speedup_vs_text_parse": speedup,
    });
    if ephemeral {
        std::fs::remove_dir_all(&dir).ok();
    }
    (section, failed)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help") {
        println!(
            "usage: solver_hotpath [--smoke] [--large] [--load] [--pack-dir DIR] \
             [--baseline BENCH_hotpath.json] [--out PATH]"
        );
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let large = args.iter().any(|a| a == "--large");
    let load = args.iter().any(|a| a == "--load");
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let baseline_path = flag_value("--baseline");
    let pack_dir = flag_value("--pack-dir");
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let baseline_json: Option<Value> =
        baseline_path
            .as_ref()
            .and_then(|path| match std::fs::read_to_string(path) {
                Ok(text) => match serde_json::from_str::<Value>(&text) {
                    Ok(previous) => Some(previous),
                    Err(error) => {
                        eprintln!("warning: baseline {path} is not valid JSON: {error}");
                        None
                    }
                },
                Err(_) => {
                    eprintln!("warning: baseline {path} not found; skipping regression gate");
                    None
                }
            });

    let config = if smoke {
        BenchConfig {
            vertices: 2_000,
            baseline_edges: 20_000,
            repetitions: 8,
            topk: 6,
        }
    } else {
        BenchConfig {
            vertices: 10_000,
            baseline_edges: 100_000,
            repetitions: 12,
            topk: 8,
        }
    };

    // ---- Workload: a streaming monitor at production density (the average-degree
    // measure exercises the DCSGreedy peel + G_{D+} + component hot path). --------
    let mut rng = Rng(0x5eed);
    let baseline = build_baseline(&config, &mut rng);
    let streaming_config = StreamingConfig {
        remine_every: 0,
        alert_threshold: 0.0,
        measure: DensityMeasure::AverageDegree,
    };
    let mut monitor = StreamingDcs::new(baseline.clone(), streaming_config).unwrap();
    let baseline_edges: Vec<(VertexId, VertexId)> =
        baseline.edges().map(|(u, v, _)| (u, v)).collect();
    for &(u, v) in &baseline_edges {
        monitor.observe(u, v, rng.weight());
    }
    let gd = monitor.difference_snapshot();

    // ---- 1. From-scratch mine: no workspace, every buffer allocated per solve. ---
    let (scratch_alert, scratch) = measure(|| {
        let mut last = None;
        for _ in 0..config.repetitions {
            last = Some(mine_difference_in(
                &gd,
                &streaming_config,
                monitor.observations(),
                None,
                &SolveContext::unbounded(),
            ));
        }
        last.expect("at least one repetition")
    });

    // ---- 2. Steady-state re-mine: the monitor's persistent workspace, warm. ------
    let _ = monitor.mine_now(); // warm the workspace and the seed
    let churn: Vec<(VertexId, VertexId)> = (0..config.repetitions)
        .map(|_| baseline_edges[rng.below(baseline_edges.len())])
        .collect();
    let mut remine_subset = Vec::new();
    let mut remine = Measured {
        allocs: 0,
        bytes: 0,
        nanos: 0,
    };
    for &(u, v) in &churn {
        // Sparse churn between re-mines, applied outside the measured section —
        // the gate is about the solve, not the observe (streaming_throughput
        // covers the observe path).
        monitor.observe(u, v, 0.25);
        let (alert, m) = measure(|| monitor.mine_now());
        remine.allocs += m.allocs;
        remine.bytes += m.bytes;
        remine.nanos += m.nanos;
        remine_subset = alert.report.subset;
    }
    // Sanity: workspace reuse must not change the answer on the unchanged graph
    // shape (the churn batches re-observe existing edges upward, so the mined core
    // stays a valid subset).
    assert!(
        !remine_subset.is_empty() && !scratch_alert.report.subset.is_empty(),
        "both paths must mine something"
    );

    // ---- 3. Top-k: masked views + shared workspace vs from-scratch rounds. -------
    let solver = MeasureSolver::for_measure(DensityMeasure::AverageDegree);
    let (reference_rounds, topk_scratch) = measure(|| {
        // The pre-workspace driver shape: clone the working graph, solve with no
        // workspace, compact the CSR in place after every round.
        let mut remaining = (*gd).clone();
        let mut rounds = 0usize;
        while rounds < config.topk && remaining.num_positive_edges() > 0 {
            let solution = solver.solve_seeded_in(&remaining, &[], &SolveContext::unbounded());
            if solution.objective <= 0.0 || solution.subset.is_empty() {
                break;
            }
            remaining.remove_vertices_in_place(&solution.subset);
            rounds += 1;
        }
        rounds
    });
    let shared = SharedWorkspace::new();
    let warm_cx = SolveContext::unbounded().with_workspace(&shared);
    let _ = top_k_in(
        &gd,
        config.topk,
        DensityMeasure::AverageDegree,
        DcsgaConfig::default(),
        &warm_cx,
    ); // warm the shared workspace
    let (steady_outcome, topk_steady) = measure(|| {
        top_k_in(
            &gd,
            config.topk,
            DensityMeasure::AverageDegree,
            DcsgaConfig::default(),
            &warm_cx,
        )
    });
    let steady_rounds = steady_outcome.solutions.len();

    // ---- 4. α-sweep: in-place reweighting + shared workspace vs cold rebuild. ----
    let g2 = monitor.observed_graph();
    let alphas: Vec<f64> = (0..=6).map(|i| i as f64 * 0.25).collect();
    let (cold_points, sweep_cold) = measure(|| {
        let mut points = 0usize;
        for &alpha in &alphas {
            let gd_alpha = scaled_difference_graph(&g2, &baseline, alpha).unwrap();
            let solution = solver.solve_seeded_in(&gd_alpha, &[], &SolveContext::unbounded());
            if !solution.subset.is_empty() {
                points += 1;
            }
        }
        points
    });
    let sweep_shared = SharedWorkspace::new();
    let sweep_cx = SolveContext::unbounded().with_workspace(&sweep_shared);
    let _ = dcs_core::alpha_sweep_in(
        &g2,
        &baseline,
        &alphas,
        DensityMeasure::AverageDegree,
        &sweep_cx,
    )
    .unwrap(); // warm
    let (sweep_outcome, sweep_steady) = measure(|| {
        dcs_core::alpha_sweep_in(
            &g2,
            &baseline,
            &alphas,
            DensityMeasure::AverageDegree,
            &sweep_cx,
        )
        .unwrap()
    });

    // ---- 5. DCSGA (graph affinity): from-scratch vs steady state + α-sweep. -----
    // A smaller workload: NewSEA runs many local searches per solve, and the metrics
    // are self-relative ratios, so the affinity section does not need the full
    // average-degree scale to be meaningful.
    let dcsga_scale = if smoke {
        (600, 4_000, 6)
    } else {
        (1_500, 12_000, 8)
    };
    let (ga_vertices, ga_edges, ga_reps) = dcsga_scale;
    let ga_bench = BenchConfig {
        vertices: ga_vertices,
        baseline_edges: ga_edges,
        repetitions: ga_reps,
        topk: 0,
    };
    let ga_baseline = build_baseline(&ga_bench, &mut rng);
    let ga_streaming_config = StreamingConfig {
        remine_every: 0,
        alert_threshold: 0.0,
        measure: DensityMeasure::GraphAffinity,
    };
    let mut ga_monitor = StreamingDcs::new(ga_baseline.clone(), ga_streaming_config).unwrap();
    let ga_baseline_edges: Vec<(VertexId, VertexId)> =
        ga_baseline.edges().map(|(u, v, _)| (u, v)).collect();
    for &(u, v) in &ga_baseline_edges {
        ga_monitor.observe(u, v, rng.weight());
    }
    let ga_gd = ga_monitor.difference_snapshot();

    // From-scratch affinity mine: no workspace, transient dense arena per solve.
    let (ga_scratch_alert, ga_scratch) = measure(|| {
        let mut last = None;
        for _ in 0..ga_bench.repetitions {
            last = Some(mine_difference_in(
                &ga_gd,
                &ga_streaming_config,
                ga_monitor.observations(),
                None,
                &SolveContext::unbounded(),
            ));
        }
        last.expect("at least one repetition")
    });

    // Steady-state affinity re-mine: the monitor's dense embedding arena warm.
    let _ = ga_monitor.mine_now();
    let ga_churn: Vec<(VertexId, VertexId)> = (0..ga_bench.repetitions)
        .map(|_| ga_baseline_edges[rng.below(ga_baseline_edges.len())])
        .collect();
    let mut ga_remine_subset = Vec::new();
    let mut ga_remine = Measured {
        allocs: 0,
        bytes: 0,
        nanos: 0,
    };
    for &(u, v) in &ga_churn {
        ga_monitor.observe(u, v, 0.25);
        let (alert, m) = measure(|| ga_monitor.mine_now());
        ga_remine.allocs += m.allocs;
        ga_remine.bytes += m.bytes;
        ga_remine.nanos += m.nanos;
        ga_remine_subset = alert.report.subset;
    }
    assert!(
        !ga_remine_subset.is_empty() && !ga_scratch_alert.report.subset.is_empty(),
        "both affinity paths must mine something"
    );

    // Affinity α-sweep: template + warm dense workspace vs per-α rebuild, cold.
    let ga_g2 = ga_monitor.observed_graph();
    let ga_solver = MeasureSolver::for_measure(DensityMeasure::GraphAffinity);
    let (ga_cold_points, ga_sweep_cold) = measure(|| {
        let mut points = 0usize;
        for &alpha in &alphas {
            let gd_alpha = scaled_difference_graph(&ga_g2, &ga_baseline, alpha).unwrap();
            let solution = ga_solver.solve_seeded_in(&gd_alpha, &[], &SolveContext::unbounded());
            if !solution.subset.is_empty() {
                points += 1;
            }
        }
        points
    });
    let ga_sweep_shared = SharedWorkspace::new();
    let ga_sweep_cx = SolveContext::unbounded().with_workspace(&ga_sweep_shared);
    let _ = dcs_core::alpha_sweep_in(
        &ga_g2,
        &ga_baseline,
        &alphas,
        DensityMeasure::GraphAffinity,
        &ga_sweep_cx,
    )
    .unwrap(); // warm
    let (ga_sweep_outcome, ga_sweep_steady) = measure(|| {
        dcs_core::alpha_sweep_in(
            &ga_g2,
            &ga_baseline,
            &alphas,
            DensityMeasure::GraphAffinity,
            &ga_sweep_cx,
        )
        .unwrap()
    });

    // ---- 6. Large-graph parallelism (opt-in: --large). ---------------------------
    let large_section = large.then(|| run_large_section(smoke, baseline_json.as_ref()));

    // ---- 7. Cold load: text parse vs zero-copy pack (opt-in: --load). ------------
    let load_section = load.then(|| run_load_section(smoke, pack_dir.as_deref()));

    // ---- Report. -----------------------------------------------------------------
    let (scratch_allocs, _, _) = per(&scratch, config.repetitions);
    let (remine_allocs, _, _) = per(&remine, config.repetitions);
    let (topk_scratch_allocs, _, _) = per(&topk_scratch, reference_rounds);
    let (topk_steady_allocs, _, _) = per(&topk_steady, steady_rounds);
    let (sweep_cold_allocs, _, _) = per(&sweep_cold, cold_points);
    let (sweep_steady_allocs, _, _) = per(&sweep_steady, sweep_outcome.points.len());
    let (ga_scratch_allocs, _, _) = per(&ga_scratch, ga_bench.repetitions);
    let (ga_remine_allocs, _, _) = per(&ga_remine, ga_bench.repetitions);
    let (ga_sweep_cold_allocs, _, _) = per(&ga_sweep_cold, ga_cold_points);
    let (ga_sweep_steady_allocs, _, _) = per(&ga_sweep_steady, ga_sweep_outcome.points.len());
    let remine_ratio = scratch_allocs / remine_allocs.max(1.0);
    let topk_ratio = topk_scratch_allocs / topk_steady_allocs.max(1.0);
    let sweep_ratio = sweep_cold_allocs / sweep_steady_allocs.max(1.0);
    let ga_remine_ratio = ga_scratch_allocs / ga_remine_allocs.max(1.0);
    let ga_sweep_ratio = ga_sweep_cold_allocs / ga_sweep_steady_allocs.max(1.0);

    let report = json!({
        "bench": "solver_hotpath",
        "mode": if smoke { "smoke" } else { "full" },
        "graph": {
            "vertices": config.vertices,
            "baseline_edges": baseline.num_edges(),
            "difference_edges": gd.num_edges(),
        },
        "repetitions": config.repetitions,
        "mine": path_json("from_scratch", &scratch, config.repetitions),
        "remine": {
            "path": "steady_state_workspace",
            "allocs_per_solve": remine_allocs,
            "bytes_per_solve": per(&remine, config.repetitions).1,
            "ns_per_solve": per(&remine, config.repetitions).2,
            "allocs_reduction_vs_scratch": remine_ratio,
        },
        "topk": {
            "k": config.topk,
            "scratch_rounds": reference_rounds,
            "steady_rounds": steady_rounds,
            "scratch": path_json("clone_and_compact", &topk_scratch, reference_rounds),
            "steady": path_json("masked_views_workspace", &topk_steady, steady_rounds),
            "allocs_reduction_per_round": topk_ratio,
        },
        "sweep": {
            "grid_points": alphas.len(),
            "cold": path_json("rebuild_per_alpha", &sweep_cold, cold_points),
            "steady": path_json("template_reweight_workspace", &sweep_steady, sweep_outcome.points.len()),
            "allocs_reduction_per_point": sweep_ratio,
        },
        "dcsga": {
            "graph": {
                "vertices": ga_bench.vertices,
                "baseline_edges": ga_baseline.num_edges(),
                "difference_edges": ga_gd.num_edges(),
            },
            "repetitions": ga_bench.repetitions,
            "mine": path_json("from_scratch", &ga_scratch, ga_bench.repetitions),
            "remine": {
                "path": "steady_state_dense_arena",
                "allocs_per_solve": ga_remine_allocs,
                "bytes_per_solve": per(&ga_remine, ga_bench.repetitions).1,
                "ns_per_solve": per(&ga_remine, ga_bench.repetitions).2,
                "allocs_reduction_vs_scratch": ga_remine_ratio,
            },
            "sweep": {
                "grid_points": alphas.len(),
                "cold": path_json("rebuild_per_alpha", &ga_sweep_cold, ga_cold_points),
                "steady": path_json(
                    "template_reweight_dense_arena",
                    &ga_sweep_steady,
                    ga_sweep_outcome.points.len(),
                ),
                "allocs_reduction_per_point": ga_sweep_ratio,
            },
        },
    });
    let mut report = report;
    if let Some((section, _)) = &large_section {
        report["large"] = section.clone();
    }
    if let Some((section, _)) = &load_section {
        report["load"] = section.clone();
    }
    let rendered = serde_json::to_string_pretty(&report).unwrap();
    println!("{rendered}");
    if let Err(error) = std::fs::write(&out_path, format!("{rendered}\n")) {
        eprintln!("warning: could not write {out_path}: {error}");
    }

    // ---- Gates. ------------------------------------------------------------------
    let mut failed = large_section.as_ref().is_some_and(|(_, f)| *f)
        || load_section.as_ref().is_some_and(|(_, f)| *f);
    if remine_ratio < 2.0 {
        eprintln!(
            "FAIL: steady-state re-mine allocates {remine_allocs:.1}/solve vs \
             {scratch_allocs:.1} from scratch ({remine_ratio:.2}x < 2x reduction)"
        );
        failed = true;
    }
    if topk_ratio < 2.0 {
        eprintln!(
            "FAIL: top-k steady rounds allocate {topk_steady_allocs:.1}/round vs \
             {topk_scratch_allocs:.1} from scratch ({topk_ratio:.2}x < 2x reduction)"
        );
        failed = true;
    }
    if ga_remine_ratio < 2.0 {
        eprintln!(
            "FAIL: DCSGA steady-state re-mine allocates {ga_remine_allocs:.1}/solve vs \
             {ga_scratch_allocs:.1} from scratch ({ga_remine_ratio:.2}x < 2x reduction)"
        );
        failed = true;
    }

    // Regression gate against a checked-in baseline, allocation metrics only
    // (allocation counts are deterministic for the fixed workload; timings are not).
    if let Some(previous) = &baseline_json {
        let path = baseline_path.as_deref().unwrap_or("baseline");
        let checks: [(&str, f64, &[&str]); 5] = [
            (
                "remine.allocs_per_solve",
                remine_allocs,
                &["remine", "allocs_per_solve"],
            ),
            (
                "topk.steady.allocs_per_solve",
                topk_steady_allocs,
                &["topk", "steady", "allocs_per_solve"],
            ),
            (
                "sweep.steady.allocs_per_solve",
                sweep_steady_allocs,
                &["sweep", "steady", "allocs_per_solve"],
            ),
            (
                "dcsga.remine.allocs_per_solve",
                ga_remine_allocs,
                &["dcsga", "remine", "allocs_per_solve"],
            ),
            (
                "dcsga.sweep.steady.allocs_per_solve",
                ga_sweep_steady_allocs,
                &["dcsga", "sweep", "steady", "allocs_per_solve"],
            ),
        ];
        for (label, current, keys) in checks {
            let mut node = Some(previous);
            for key in keys {
                node = node.and_then(|v| v.get(key));
            }
            let Some(reference) = node.and_then(|v| v.as_f64()) else {
                eprintln!("warning: baseline {path} lacks {label}; skipping");
                continue;
            };
            if reference > 0.0 && current > reference * 1.10 {
                eprintln!(
                    "FAIL: {label} regressed: {current:.1} vs baseline \
                     {reference:.1} (>10%)"
                );
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}

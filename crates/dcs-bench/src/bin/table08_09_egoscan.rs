//! Tables VIII & IX — comparison of the DCS algorithms with the EgoScan baseline (the
//! total-edge-weight objective of Cadena et al.).
//!
//! ```text
//! cargo run -p dcs-bench --release --bin table08_09_egoscan -- --scale default
//! ```

use dcs_baselines::EgoScan;
use dcs_bench::{f2, f3, seconds, time, yes_no, ExpOptions, Table};
use dcs_core::dcsad::DcsGreedy;
use dcs_core::dcsga::NewSea;
use dcs_core::{difference_graph_with, ContrastReport, DiscreteRule, WeightScheme};
use dcs_datasets::CoauthorConfig;

fn main() {
    let options = ExpOptions::from_args();
    let pair = CoauthorConfig::for_scale(options.scale).generate();

    let mut table8 = Table::new(
        "Table VIII — subgraphs found by EgoScan (substitute) on the co-author difference graphs",
        &[
            "Setting",
            "GD Type",
            "#Authors",
            "#Edges",
            "PosClique?",
            "AvgDeg diff",
            "EdgeDensity diff",
            "Time (s)",
        ],
    );
    let mut table9 = Table::new(
        "Table IX — total edge weight difference W_D(S) of the mined subgraphs",
        &["Setting", "GD Type", "DCSGreedy", "NewSEA", "EgoScan"],
    );
    let mut json_rows = Vec::new();

    for (setting, scheme) in [
        ("Weighted", WeightScheme::Weighted),
        ("Discrete", WeightScheme::Discrete(DiscreteRule::default())),
    ] {
        for direction in ["Emerging", "Disappearing"] {
            let gd = if direction == "Emerging" {
                difference_graph_with(&pair.g2, &pair.g1, scheme).unwrap()
            } else {
                difference_graph_with(&pair.g1, &pair.g2, scheme).unwrap()
            };

            let dcs_ad = DcsGreedy::default().solve(&gd);
            let dcs_ga = NewSea::default().solve(&gd);
            let (ego, ego_t) = time(|| EgoScan::default().solve(&gd));
            let ego_report = ContrastReport::for_subset(&gd, &ego.subset);

            table8.add_row(vec![
                setting.into(),
                direction.into(),
                ego_report.size.to_string(),
                gd.induced_edge_count(&ego.subset).to_string(),
                yes_no(ego_report.is_positive_clique),
                f2(ego_report.average_degree_difference),
                f3(ego_report.edge_density_difference),
                seconds(ego_t),
            ]);
            table9.add_row(vec![
                setting.into(),
                direction.into(),
                f2(gd.total_degree(&dcs_ad.subset)),
                f2(gd.total_degree(&dcs_ga.support())),
                f2(ego.total_degree),
            ]);
            json_rows.push(serde_json::json!({
                "setting": setting, "direction": direction,
                "egoscan": {
                    "size": ego_report.size,
                    "avg_degree_diff": ego_report.average_degree_difference,
                    "edge_density_diff": ego_report.edge_density_difference,
                    "total_degree": ego.total_degree,
                    "seconds": ego_t.as_secs_f64(),
                },
                "dcsgreedy": {
                    "size": dcs_ad.subset.len(),
                    "avg_degree_diff": dcs_ad.density_difference,
                    "total_degree": gd.total_degree(&dcs_ad.subset),
                },
                "newsea": {
                    "size": dcs_ga.support().len(),
                    "affinity_diff": dcs_ga.affinity_difference,
                    "total_degree": gd.total_degree(&dcs_ga.support()),
                },
            }));
        }
    }

    table8.print();
    table9.print();
    println!("Shape check: EgoScan subgraphs are larger and heavier in total weight, but far less dense,");
    println!("than the DCSGreedy/NewSEA answers — matching the paper's Tables VIII/IX.");
    if options.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}

//! Tables X & XI — consistent/conflicting editor groups on the Wikipedia-style
//! interaction data: DCSAD comparators (DCSGreedy vs Greedy-on-G_D vs Greedy-on-G_D+) and
//! the DCSGA result.
//!
//! ```text
//! cargo run -p dcs-bench --release --bin table10_11_wiki -- --scale default
//! ```

use dcs_bench::{f2, f3, yes_no, ExpOptions, Table};
use dcs_core::dcsad::DcsGreedy;
use dcs_core::dcsga::NewSea;
use dcs_core::{difference_graph, ContrastReport};
use dcs_datasets::ConflictConfig;
use dcs_graph::SignedGraph;

fn main() {
    let options = ExpOptions::from_args();
    let pair = ConflictConfig::for_scale(options.scale).generate();

    let mut table10 = Table::new(
        "Table X — DCS w.r.t. average degree on the Wiki-style data",
        &[
            "GD Type",
            "Variant",
            "#Users",
            "AvgDeg diff",
            "Approx ratio",
            "PosClique?",
        ],
    );
    let mut table11 = Table::new(
        "Table XI — DCS w.r.t. graph affinity on the Wiki-style data",
        &[
            "GD Type",
            "#Users",
            "Affinity diff",
            "EdgeDensity diff",
            "PosClique?",
        ],
    );
    let mut json_rows = Vec::new();

    let cases: Vec<(&str, SignedGraph)> = vec![
        ("Consistent", difference_graph(&pair.g1, &pair.g2).unwrap()),
        ("Conflicting", difference_graph(&pair.g2, &pair.g1).unwrap()),
    ];
    for (gd_type, gd) in &cases {
        let solver = DcsGreedy::default();
        let full = solver.solve(gd);
        let gd_only = solver.solve_gd_only(gd);
        let plus_only = solver.solve_gd_plus_only(gd);
        for (variant, sol, ratio) in [
            ("DCSGreedy", &full, Some(full.data_dependent_ratio)),
            ("GD only", &gd_only, None),
            ("GD+ only", &plus_only, None),
        ] {
            let report = ContrastReport::for_subset(gd, &sol.subset);
            table10.add_row(vec![
                gd_type.to_string(),
                variant.to_string(),
                report.size.to_string(),
                f2(report.average_degree_difference),
                ratio.map(f2).unwrap_or_else(|| "—".into()),
                yes_no(report.is_positive_clique),
            ]);
            json_rows.push(serde_json::json!({
                "table": "X", "gd_type": gd_type, "variant": variant,
                "size": report.size,
                "avg_degree_diff": report.average_degree_difference,
                "approx_ratio": ratio,
                "positive_clique": report.is_positive_clique,
            }));
        }

        let ga = NewSea::default().solve(gd);
        let report = ContrastReport::for_embedding(gd, &ga.embedding);
        table11.add_row(vec![
            gd_type.to_string(),
            report.size.to_string(),
            f3(report.affinity_difference),
            f3(report.edge_density_difference),
            yes_no(report.is_positive_clique),
        ]);
        json_rows.push(serde_json::json!({
            "table": "XI", "gd_type": gd_type,
            "size": report.size,
            "affinity_diff": report.affinity_difference,
            "edge_density_diff": report.edge_density_difference,
            "positive_clique": report.is_positive_clique,
        }));
    }

    table10.print();
    table11.print();
    println!("Shape check: the average-degree DCS is much larger than the affinity DCS, and the");
    println!("affinity DCS is always a positive clique while the DCSAD result need not be.");
    if options.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}

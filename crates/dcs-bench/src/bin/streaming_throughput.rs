//! Streaming-throughput microbenchmark of the incremental difference-graph engine.
//!
//! Simulates the always-on serving workload: a fixed baseline `G1`, a stream of
//! sparse weight updates (each batch touches ≤1% of the edges), and a difference
//! snapshot taken after every batch — the exact shape of the mining server's
//! `observe`/`mine` cadence.  Three snapshot paths are timed against each other:
//!
//! * **scratch** — the pre-delta-engine path: rebuild `G_D` from the observed map
//!   plus every baseline edge through `GraphBuilder`
//!   ([`StreamingDcs::rebuild_difference_snapshot`]),
//! * **delta** — the incremental path: rebuild only the adjacency rows dirtied by
//!   the batch ([`StreamingDcs::difference_snapshot`]),
//! * **cached** — the same call on an unchanged version: returns the previous
//!   `Arc` pointer-equal, which is what repeated mining jobs at one version pay.
//!
//! Two overhead sections follow the snapshot timings: the unified solver
//! engine's unbounded wrapper vs a direct solver call, and the `dcs-obs` phase
//! tracer enabled vs instrumented-but-disabled (the production default); in
//! `--smoke` mode both must stay within 5% (plus sub-millisecond slack).
//!
//! A final `server_scaling` section measures the serving tier end to end:
//! an in-process `dcs-server` under 1/16/128/512 concurrent connections
//! (1/16 in `--smoke` mode), each streaming observes into its own session
//! while a separate connection mines, reporting aggregate observes/sec and
//! p99 mine latency per level.  These numbers are informational — wall-clock
//! throughput is machine-dependent, so nothing gates on them.
//!
//! `--soak` runs only a connection-churn soak: a few hundred connections
//! open, create/drop sessions, and vanish in waves against one in-process
//! server, and the process's file-descriptor count must return to its
//! starting neighborhood afterwards (the event loops leak no sockets).
//!
//! Output is a single JSON object, so CI can run it as a smoke step and archive
//! the numbers.
//!
//! ```text
//! cargo run --release -p dcs-bench --bin streaming_throughput -- [--smoke | --soak]
//! ```

use std::time::{Duration, Instant};

use dcs_core::dcsad::DcsGreedy;
use dcs_core::{ContrastSolver, DensityMeasure, SolveContext, StreamingConfig, StreamingDcs};
use dcs_graph::{GraphBuilder, SignedGraph, VertexId};
use dcs_server::{Client, Server, ServerConfig};
use serde_json::{json, Value};

struct BenchConfig {
    vertices: usize,
    baseline_edges: usize,
    batches: usize,
    batch_size: usize,
}

/// Deterministic splitmix64 — keeps the workload identical across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn weight(&mut self) -> f64 {
        1.0 + (self.next() % 1000) as f64 / 250.0
    }
}

fn build_baseline(config: &BenchConfig, rng: &mut Rng) -> SignedGraph {
    let n = config.vertices;
    let mut builder = GraphBuilder::new(n);
    // A ring keeps the graph connected; random chords bring it up to size.
    for v in 0..n {
        builder.add_edge(v as VertexId, ((v + 1) % n) as VertexId, rng.weight());
    }
    while builder.num_edges() < config.baseline_edges {
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v {
            builder.add_edge(u as VertexId, v as VertexId, rng.weight());
        }
    }
    builder.build()
}

fn mean_ms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn median_ms(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Counts this process's open file descriptors (`None` where /proc is
/// unavailable — the soak then reports without gating).
fn open_fds() -> Option<usize> {
    std::fs::read_dir("/proc/self/fd")
        .ok()
        .map(|entries| entries.count())
}

/// One scaling level: `connections` clients stream observes into private
/// sessions for `duration` while a miner connection alternates
/// observe + mine on its own session.  Returns the level's report.
fn scaling_level(addr: std::net::SocketAddr, connections: usize, duration: Duration) -> Value {
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let observers: Vec<std::thread::JoinHandle<u64>> = (0..connections)
        .map(|index| {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect observer");
                let session = format!("scale-{connections}-{index}");
                client
                    .create_session(&session, 64, json!({}))
                    .expect("create session");
                let mut batches = 0u64;
                let mut tick = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let base = (tick % 56) as u32;
                    let updates: Vec<(u32, u32, f64)> = (0..8)
                        .map(|i| (base + i, base + i + 1, 1.0 + (tick % 7) as f64))
                        .collect();
                    client.observe(&session, &updates).expect("observe");
                    batches += 1;
                    tick += 1;
                }
                batches
            })
        })
        .collect();

    // The miner shares the server with the observers but not a session:
    // its latency shows what mining costs while the observe stream runs.
    let mut miner = Client::connect(addr).expect("connect miner");
    let session = format!("scale-miner-{connections}");
    miner
        .create_session(&session, 64, json!({}))
        .expect("create miner session");
    let mut mine_ms: Vec<f64> = Vec::new();
    let started = Instant::now();
    let mut tick = 0u64;
    while started.elapsed() < duration {
        let base = (tick % 56) as u32;
        miner
            .observe(&session, &[(base, base + 1, 2.0 + (tick % 5) as f64)])
            .expect("miner observe");
        let start = Instant::now();
        miner.mine(&session).expect("mine");
        mine_ms.push(start.elapsed().as_secs_f64() * 1e3);
        tick += 1;
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total_batches: u64 = observers
        .into_iter()
        .map(|t| t.join().expect("observer thread"))
        .sum();

    let elapsed = started.elapsed().as_secs_f64();
    mine_ms.sort_by(f64::total_cmp);
    let p99 = if mine_ms.is_empty() {
        0.0
    } else {
        mine_ms[(mine_ms.len() - 1).min(mine_ms.len() * 99 / 100)]
    };
    json!({
        "connections": connections,
        "observe_batches": total_batches,
        "observes_per_sec": total_batches as f64 * 8.0 / elapsed,
        "mines": mine_ms.len(),
        "mine_ms_p50": if mine_ms.is_empty() { 0.0 } else { mine_ms[mine_ms.len() / 2] },
        "mine_ms_p99": p99,
    })
}

/// End-to-end serving-tier scaling: one in-process server, increasing
/// connection counts.
fn server_scaling(smoke: bool) -> Value {
    let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind scaling server")
        .start();
    let addr = handle.local_addr();
    let levels: &[usize] = if smoke { &[1, 16] } else { &[1, 16, 128, 512] };
    let duration = if smoke {
        Duration::from_millis(300)
    } else {
        Duration::from_secs(2)
    };
    let reports: Vec<Value> = levels
        .iter()
        .map(|&connections| scaling_level(addr, connections, duration))
        .collect();
    handle.shutdown();
    handle.join();
    json!({ "levels": reports })
}

/// Durable-vs-ephemeral observe throughput: one server with a data
/// directory hosts one ephemeral and one durable session (default
/// group-commit WAL sync), and the same observe stream is timed against
/// each.  The durable session pays a buffered WAL append per batch — the
/// fsync happens on the group-commit timer off the request path — so its
/// throughput must stay within 2× of ephemeral (gated in `--smoke` mode).
fn durability(smoke: bool) -> Value {
    let data_dir =
        std::env::temp_dir().join(format!("dcs_bench_durability_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    std::fs::create_dir_all(&data_dir).expect("create bench data dir");
    let handle = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            data_dir: Some(data_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind durability server")
    .start();
    let mut client = Client::connect(handle.local_addr()).expect("connect durability client");
    client
        .create_session("bench-ephemeral", 64, json!({}))
        .expect("create ephemeral session");
    client
        .create_session("bench-durable", 64, json!({ "durable": true }))
        .expect("create durable session");

    let batches = if smoke { 300 } else { 3_000 };
    let mut time_session = |session: &str| {
        let start = Instant::now();
        for tick in 0..batches {
            let base = (tick % 56) as u32;
            let updates: Vec<(u32, u32, f64)> = (0..8)
                .map(|i| (base + i, base + i + 1, 1.0 + (tick % 7) as f64))
                .collect();
            client.observe(session, &updates).expect("observe");
        }
        batches as f64 * 8.0 / start.elapsed().as_secs_f64()
    };
    // Warm both paths once so neither pays first-request costs in the timing.
    time_session("bench-ephemeral");
    time_session("bench-durable");
    let ephemeral_rate = time_session("bench-ephemeral");
    let durable_rate = time_session("bench-durable");

    handle.shutdown();
    handle.join();
    let _ = std::fs::remove_dir_all(&data_dir);
    json!({
        "observe_batches": batches,
        "batch_size": 8,
        "wal_sync": "group",
        "ephemeral_observes_per_sec": ephemeral_rate,
        "durable_observes_per_sec": durable_rate,
        "durable_over_ephemeral": if ephemeral_rate > 0.0 { durable_rate / ephemeral_rate } else { 0.0 },
    })
}

/// Connection-churn soak: waves of connections create sessions, stream a
/// little, drop their sessions and disconnect; afterwards the process must
/// hold roughly as many file descriptors as before (no socket leaks in the
/// event loops).  Exits nonzero on a leak.
fn run_soak() {
    let fd_before = open_fds();
    let handle = Server::bind("127.0.0.1:0", ServerConfig::default())
        .expect("bind soak server")
        .start();
    let addr = handle.local_addr();

    const WAVES: usize = 6;
    const WAVE_SIZE: usize = 50;
    for wave in 0..WAVES {
        let mut clients: Vec<Client> = (0..WAVE_SIZE)
            .map(|_| Client::connect(addr).expect("connect"))
            .collect();
        for (index, client) in clients.iter_mut().enumerate() {
            let session = format!("soak-{wave}-{index}");
            client
                .create_session(&session, 32, json!({}))
                .expect("create");
            client
                .observe(&session, &[(0, 1, 2.0), (1, 2, 1.5)])
                .expect("observe");
            client
                .request(json!({ "cmd": "drop_session", "session": session }))
                .expect("drop");
        }
        // Half the wave says goodbye cleanly, half just vanishes.
        for (index, client) in clients.iter_mut().enumerate() {
            if index % 2 == 0 {
                let _ = client.ping();
            }
        }
        drop(clients);
    }

    // The server must still be fully responsive after the churn.
    let mut survivor = Client::connect(addr).expect("connect after churn");
    survivor.ping().expect("ping after churn");
    drop(survivor);
    handle.shutdown();
    handle.join();

    // The event loops close sockets on hangup, but the kernel and the loops
    // need a beat after the last drop; poll briefly before judging.
    let allowance = 20usize;
    let mut fd_after = open_fds();
    if let (Some(before), Some(_)) = (fd_before, fd_after) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            fd_after = open_fds();
            match fd_after {
                Some(after) if after <= before + allowance => break,
                _ if Instant::now() >= deadline => break,
                _ => std::thread::sleep(Duration::from_millis(100)),
            }
        }
    }
    let report = json!({
        "bench": "server_soak",
        "waves": WAVES,
        "wave_size": WAVE_SIZE,
        "connections": WAVES * WAVE_SIZE,
        "fd_before": fd_before,
        "fd_after": fd_after,
        "fd_allowance": allowance,
    });
    println!("{}", serde_json::to_string_pretty(&report).unwrap());
    if let (Some(before), Some(after)) = (fd_before, fd_after) {
        if after > before + allowance {
            eprintln!("warning: fd count grew from {before} to {after} — socket leak");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--help") {
        println!("usage: streaming_throughput [--smoke | --soak]");
        return;
    }
    if args.iter().any(|a| a == "--soak") {
        run_soak();
        return;
    }
    let config = if smoke {
        BenchConfig {
            vertices: 2_000,
            baseline_edges: 20_000,
            batches: 5,
            batch_size: 200, // 1% of the baseline edges
        }
    } else {
        BenchConfig {
            vertices: 20_000,
            baseline_edges: 200_000,
            batches: 10,
            batch_size: 2_000, // 1% of the baseline edges
        }
    };

    let mut rng = Rng(0x5eed);
    let baseline = build_baseline(&config, &mut rng);
    let streaming_config = StreamingConfig {
        remine_every: 0,
        alert_threshold: 0.0,
        measure: DensityMeasure::AverageDegree,
    };
    let mut monitor = StreamingDcs::new(baseline.clone(), streaming_config).unwrap();

    // Warm-up: observe every baseline edge once so the observed graph is at
    // production density, then take the first (full) snapshot outside timing.
    let baseline_edges: Vec<(VertexId, VertexId)> =
        baseline.edges().map(|(u, v, _)| (u, v)).collect();
    let warmup = Instant::now();
    for &(u, v) in &baseline_edges {
        monitor.observe(u, v, rng.weight());
    }
    let warmup_secs = warmup.elapsed().as_secs_f64();
    let observes_per_sec = baseline_edges.len() as f64 / warmup_secs;
    let _ = monitor.difference_snapshot();

    // Steady state: sparse batches (≤1% of edges), one snapshot per batch.
    let mut delta_ms = Vec::with_capacity(config.batches);
    let mut scratch_ms = Vec::with_capacity(config.batches);
    let mut cached_ms = Vec::with_capacity(config.batches);
    for _ in 0..config.batches {
        for _ in 0..config.batch_size {
            let &(u, v) = &baseline_edges[rng.below(baseline_edges.len())];
            monitor.observe(u, v, rng.weight() - 2.0);
        }

        let start = Instant::now();
        let snapshot = monitor.difference_snapshot();
        delta_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let scratch = monitor.rebuild_difference_snapshot();
        scratch_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let again = monitor.difference_snapshot();
        cached_ms.push(start.elapsed().as_secs_f64() * 1e3);

        // Sanity: the delta snapshot must be exactly the scratch rebuild, and the
        // unchanged-version re-snapshot must be pointer-equal (no rebuild at all).
        assert_eq!(*snapshot, scratch, "delta snapshot diverged from rebuild");
        assert!(
            std::sync::Arc::ptr_eq(&snapshot, &again),
            "unchanged version must return the cached Arc"
        );
    }

    // --- Engine-wrapper overhead: the unified `ContrastSolver` interface must be
    // free when unbounded.  Interleave direct `solve()` calls with trait-dispatched
    // `solve_in(unbounded)` calls on the final difference snapshot and compare
    // medians; the engine path additionally reports `SolveStats`.
    let gd = monitor.difference_snapshot();
    let solver = DcsGreedy::default();
    let cx = SolveContext::unbounded();
    let rounds = 15;
    let mut direct_ms = Vec::with_capacity(rounds);
    let mut engine_ms = Vec::with_capacity(rounds);
    let mut engine_stats = None;
    for _ in 0..rounds {
        let start = Instant::now();
        let direct = solver.solve(&gd);
        direct_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let engine = ContrastSolver::solve_in(&solver, &gd, &cx);
        engine_ms.push(start.elapsed().as_secs_f64() * 1e3);

        assert_eq!(
            engine.subset, direct.subset,
            "engine wrapper changed the unbounded result"
        );
        engine_stats = Some(engine.stats);
    }
    let direct_median = median_ms(&mut direct_ms);
    let engine_median = median_ms(&mut engine_ms);
    let overhead = if direct_median > 0.0 {
        engine_median / direct_median - 1.0
    } else {
        0.0
    };
    let engine_stats = engine_stats.expect("at least one engine round");

    // --- Tracing overhead: the solver phase spans (dcs-obs) sit on every hot
    // path, so the instrumented-but-disabled state is the production default.
    // Interleave solves with the tracer off and on and compare medians: the
    // enabled tracer must stay within 5% of the disabled path.
    dcs_obs::trace::set_enabled(false);
    dcs_obs::trace::clear();
    let mut trace_off_ms = Vec::with_capacity(rounds);
    let mut trace_on_ms = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        dcs_obs::trace::set_enabled(false);
        let start = Instant::now();
        let plain = solver.solve(&gd);
        trace_off_ms.push(start.elapsed().as_secs_f64() * 1e3);

        dcs_obs::trace::set_enabled(true);
        let start = Instant::now();
        let traced = solver.solve(&gd);
        trace_on_ms.push(start.elapsed().as_secs_f64() * 1e3);
        dcs_obs::trace::set_enabled(false);

        assert_eq!(traced.subset, plain.subset, "tracing changed the result");
    }
    let (trace_events, trace_dropped) = dcs_obs::trace::take_timeline_with_drops();
    assert!(
        !trace_events.is_empty(),
        "enabled tracer recorded no solver phase spans"
    );
    let trace_off_median = median_ms(&mut trace_off_ms);
    let trace_on_median = median_ms(&mut trace_on_ms);
    let trace_overhead = if trace_off_median > 0.0 {
        trace_on_median / trace_off_median - 1.0
    } else {
        0.0
    };

    // --- Serving-tier scaling: observes/sec and mine latency against a real
    // in-process server at increasing connection counts (informational).
    let scaling = server_scaling(smoke);

    // --- Durability tax: observe throughput with a per-session WAL (default
    // group commit) vs an ephemeral session on the same server.
    let durability_report = durability(smoke);

    let delta = mean_ms(&delta_ms);
    let scratch = mean_ms(&scratch_ms);
    let cached = mean_ms(&cached_ms);
    let speedup = if delta > 0.0 { scratch / delta } else { 0.0 };
    let report = json!({
        "bench": "streaming_throughput",
        "mode": if smoke { "smoke" } else { "full" },
        "vertices": config.vertices,
        "baseline_edges": baseline.num_edges(),
        "batches": config.batches,
        "batch_size": config.batch_size,
        "batch_edge_fraction": config.batch_size as f64 / baseline.num_edges() as f64,
        "observes_per_sec": observes_per_sec,
        "snapshot_ms": { "delta": delta, "scratch": scratch, "cached": cached },
        "speedup_delta_vs_scratch": speedup,
        "engine_wrapper": {
            "solver": "dcs-greedy",
            "direct_ms_median": direct_median,
            "engine_ms_median": engine_median,
            "overhead_fraction": overhead,
            "stats": {
                "iterations": engine_stats.iterations,
                "candidates": engine_stats.candidates,
                "prunes": engine_stats.prunes,
                "wall_ms": engine_stats.wall.as_secs_f64() * 1e3,
                "termination": engine_stats.termination.as_str(),
            },
        },
        "tracing": {
            "solver": "dcs-greedy",
            "disabled_ms_median": trace_off_median,
            "enabled_ms_median": trace_on_median,
            "overhead_fraction": trace_overhead,
            "events_recorded": trace_events.len(),
            "events_dropped": trace_dropped,
        },
        "server_scaling": scaling,
        "durability": durability_report,
    });
    println!("{}", serde_json::to_string_pretty(&report).unwrap());

    // The smoke step's contract: sparse batches must snapshot measurably faster
    // through the delta engine than through a from-scratch rebuild.
    if speedup < 1.0 {
        eprintln!("warning: delta path not faster than scratch rebuild (speedup {speedup:.2}x)");
        std::process::exit(1);
    }
    // ... and in the CI smoke mode the engine wrapper must stay within 5% of the
    // direct solver call (absolute slack of 0.2 ms absorbs sub-millisecond timer
    // noise).  Interactive full runs report the overhead without gating on it.
    if smoke && overhead > 0.05 && engine_median - direct_median > 0.2 {
        eprintln!(
            "warning: engine wrapper overhead {:.1}% exceeds the 5% bound \
             (direct {direct_median:.3} ms, engine {engine_median:.3} ms)",
            overhead * 100.0
        );
        std::process::exit(1);
    }
    // ... and the enabled phase tracer must stay within 5% of the
    // instrumented-but-disabled production default (same absolute slack).
    if smoke && trace_overhead > 0.05 && trace_on_median - trace_off_median > 0.2 {
        eprintln!(
            "warning: phase-tracer overhead {:.1}% exceeds the 5% bound \
             (disabled {trace_off_median:.3} ms, enabled {trace_on_median:.3} ms)",
            trace_overhead * 100.0
        );
        std::process::exit(1);
    }
    // ... and durable observes must stay within 2× of ephemeral at the
    // default group-commit sync (the WAL append is buffered; the fsync is
    // off the request path).
    let durable_ratio = durability_report["durable_over_ephemeral"]
        .as_f64()
        .unwrap_or(0.0);
    if smoke && durable_ratio < 0.5 {
        eprintln!(
            "warning: durable observe throughput is {:.2}x ephemeral — below the 0.5x bound",
            durable_ratio
        );
        std::process::exit(1);
    }
}

//! Streaming-throughput microbenchmark of the incremental difference-graph engine.
//!
//! Simulates the always-on serving workload: a fixed baseline `G1`, a stream of
//! sparse weight updates (each batch touches ≤1% of the edges), and a difference
//! snapshot taken after every batch — the exact shape of the mining server's
//! `observe`/`mine` cadence.  Three snapshot paths are timed against each other:
//!
//! * **scratch** — the pre-delta-engine path: rebuild `G_D` from the observed map
//!   plus every baseline edge through `GraphBuilder`
//!   ([`StreamingDcs::rebuild_difference_snapshot`]),
//! * **delta** — the incremental path: rebuild only the adjacency rows dirtied by
//!   the batch ([`StreamingDcs::difference_snapshot`]),
//! * **cached** — the same call on an unchanged version: returns the previous
//!   `Arc` pointer-equal, which is what repeated mining jobs at one version pay.
//!
//! Two overhead sections follow the snapshot timings: the unified solver
//! engine's unbounded wrapper vs a direct solver call, and the `dcs-obs` phase
//! tracer enabled vs instrumented-but-disabled (the production default); in
//! `--smoke` mode both must stay within 5% (plus sub-millisecond slack).
//!
//! Output is a single JSON object, so CI can run it as a smoke step and archive
//! the numbers.
//!
//! ```text
//! cargo run --release -p dcs-bench --bin streaming_throughput -- [--smoke]
//! ```

use std::time::Instant;

use dcs_core::dcsad::DcsGreedy;
use dcs_core::{ContrastSolver, DensityMeasure, SolveContext, StreamingConfig, StreamingDcs};
use dcs_graph::{GraphBuilder, SignedGraph, VertexId};
use serde_json::json;

struct BenchConfig {
    vertices: usize,
    baseline_edges: usize,
    batches: usize,
    batch_size: usize,
}

/// Deterministic splitmix64 — keeps the workload identical across runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn weight(&mut self) -> f64 {
        1.0 + (self.next() % 1000) as f64 / 250.0
    }
}

fn build_baseline(config: &BenchConfig, rng: &mut Rng) -> SignedGraph {
    let n = config.vertices;
    let mut builder = GraphBuilder::new(n);
    // A ring keeps the graph connected; random chords bring it up to size.
    for v in 0..n {
        builder.add_edge(v as VertexId, ((v + 1) % n) as VertexId, rng.weight());
    }
    while builder.num_edges() < config.baseline_edges {
        let u = rng.below(n);
        let v = rng.below(n);
        if u != v {
            builder.add_edge(u as VertexId, v as VertexId, rng.weight());
        }
    }
    builder.build()
}

fn mean_ms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

fn median_ms(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--help") {
        println!("usage: streaming_throughput [--smoke]");
        return;
    }
    let config = if smoke {
        BenchConfig {
            vertices: 2_000,
            baseline_edges: 20_000,
            batches: 5,
            batch_size: 200, // 1% of the baseline edges
        }
    } else {
        BenchConfig {
            vertices: 20_000,
            baseline_edges: 200_000,
            batches: 10,
            batch_size: 2_000, // 1% of the baseline edges
        }
    };

    let mut rng = Rng(0x5eed);
    let baseline = build_baseline(&config, &mut rng);
    let streaming_config = StreamingConfig {
        remine_every: 0,
        alert_threshold: 0.0,
        measure: DensityMeasure::AverageDegree,
    };
    let mut monitor = StreamingDcs::new(baseline.clone(), streaming_config).unwrap();

    // Warm-up: observe every baseline edge once so the observed graph is at
    // production density, then take the first (full) snapshot outside timing.
    let baseline_edges: Vec<(VertexId, VertexId)> =
        baseline.edges().map(|(u, v, _)| (u, v)).collect();
    let warmup = Instant::now();
    for &(u, v) in &baseline_edges {
        monitor.observe(u, v, rng.weight());
    }
    let warmup_secs = warmup.elapsed().as_secs_f64();
    let observes_per_sec = baseline_edges.len() as f64 / warmup_secs;
    let _ = monitor.difference_snapshot();

    // Steady state: sparse batches (≤1% of edges), one snapshot per batch.
    let mut delta_ms = Vec::with_capacity(config.batches);
    let mut scratch_ms = Vec::with_capacity(config.batches);
    let mut cached_ms = Vec::with_capacity(config.batches);
    for _ in 0..config.batches {
        for _ in 0..config.batch_size {
            let &(u, v) = &baseline_edges[rng.below(baseline_edges.len())];
            monitor.observe(u, v, rng.weight() - 2.0);
        }

        let start = Instant::now();
        let snapshot = monitor.difference_snapshot();
        delta_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let scratch = monitor.rebuild_difference_snapshot();
        scratch_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let again = monitor.difference_snapshot();
        cached_ms.push(start.elapsed().as_secs_f64() * 1e3);

        // Sanity: the delta snapshot must be exactly the scratch rebuild, and the
        // unchanged-version re-snapshot must be pointer-equal (no rebuild at all).
        assert_eq!(*snapshot, scratch, "delta snapshot diverged from rebuild");
        assert!(
            std::sync::Arc::ptr_eq(&snapshot, &again),
            "unchanged version must return the cached Arc"
        );
    }

    // --- Engine-wrapper overhead: the unified `ContrastSolver` interface must be
    // free when unbounded.  Interleave direct `solve()` calls with trait-dispatched
    // `solve_in(unbounded)` calls on the final difference snapshot and compare
    // medians; the engine path additionally reports `SolveStats`.
    let gd = monitor.difference_snapshot();
    let solver = DcsGreedy::default();
    let cx = SolveContext::unbounded();
    let rounds = 15;
    let mut direct_ms = Vec::with_capacity(rounds);
    let mut engine_ms = Vec::with_capacity(rounds);
    let mut engine_stats = None;
    for _ in 0..rounds {
        let start = Instant::now();
        let direct = solver.solve(&gd);
        direct_ms.push(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let engine = ContrastSolver::solve_in(&solver, &gd, &cx);
        engine_ms.push(start.elapsed().as_secs_f64() * 1e3);

        assert_eq!(
            engine.subset, direct.subset,
            "engine wrapper changed the unbounded result"
        );
        engine_stats = Some(engine.stats);
    }
    let direct_median = median_ms(&mut direct_ms);
    let engine_median = median_ms(&mut engine_ms);
    let overhead = if direct_median > 0.0 {
        engine_median / direct_median - 1.0
    } else {
        0.0
    };
    let engine_stats = engine_stats.expect("at least one engine round");

    // --- Tracing overhead: the solver phase spans (dcs-obs) sit on every hot
    // path, so the instrumented-but-disabled state is the production default.
    // Interleave solves with the tracer off and on and compare medians: the
    // enabled tracer must stay within 5% of the disabled path.
    dcs_obs::trace::set_enabled(false);
    dcs_obs::trace::clear();
    let mut trace_off_ms = Vec::with_capacity(rounds);
    let mut trace_on_ms = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        dcs_obs::trace::set_enabled(false);
        let start = Instant::now();
        let plain = solver.solve(&gd);
        trace_off_ms.push(start.elapsed().as_secs_f64() * 1e3);

        dcs_obs::trace::set_enabled(true);
        let start = Instant::now();
        let traced = solver.solve(&gd);
        trace_on_ms.push(start.elapsed().as_secs_f64() * 1e3);
        dcs_obs::trace::set_enabled(false);

        assert_eq!(traced.subset, plain.subset, "tracing changed the result");
    }
    let (trace_events, trace_dropped) = dcs_obs::trace::take_timeline_with_drops();
    assert!(
        !trace_events.is_empty(),
        "enabled tracer recorded no solver phase spans"
    );
    let trace_off_median = median_ms(&mut trace_off_ms);
    let trace_on_median = median_ms(&mut trace_on_ms);
    let trace_overhead = if trace_off_median > 0.0 {
        trace_on_median / trace_off_median - 1.0
    } else {
        0.0
    };

    let delta = mean_ms(&delta_ms);
    let scratch = mean_ms(&scratch_ms);
    let cached = mean_ms(&cached_ms);
    let speedup = if delta > 0.0 { scratch / delta } else { 0.0 };
    let report = json!({
        "bench": "streaming_throughput",
        "mode": if smoke { "smoke" } else { "full" },
        "vertices": config.vertices,
        "baseline_edges": baseline.num_edges(),
        "batches": config.batches,
        "batch_size": config.batch_size,
        "batch_edge_fraction": config.batch_size as f64 / baseline.num_edges() as f64,
        "observes_per_sec": observes_per_sec,
        "snapshot_ms": { "delta": delta, "scratch": scratch, "cached": cached },
        "speedup_delta_vs_scratch": speedup,
        "engine_wrapper": {
            "solver": "dcs-greedy",
            "direct_ms_median": direct_median,
            "engine_ms_median": engine_median,
            "overhead_fraction": overhead,
            "stats": {
                "iterations": engine_stats.iterations,
                "candidates": engine_stats.candidates,
                "prunes": engine_stats.prunes,
                "wall_ms": engine_stats.wall.as_secs_f64() * 1e3,
                "termination": engine_stats.termination.as_str(),
            },
        },
        "tracing": {
            "solver": "dcs-greedy",
            "disabled_ms_median": trace_off_median,
            "enabled_ms_median": trace_on_median,
            "overhead_fraction": trace_overhead,
            "events_recorded": trace_events.len(),
            "events_dropped": trace_dropped,
        },
    });
    println!("{}", serde_json::to_string_pretty(&report).unwrap());

    // The smoke step's contract: sparse batches must snapshot measurably faster
    // through the delta engine than through a from-scratch rebuild.
    if speedup < 1.0 {
        eprintln!("warning: delta path not faster than scratch rebuild (speedup {speedup:.2}x)");
        std::process::exit(1);
    }
    // ... and in the CI smoke mode the engine wrapper must stay within 5% of the
    // direct solver call (absolute slack of 0.2 ms absorbs sub-millisecond timer
    // noise).  Interactive full runs report the overhead without gating on it.
    if smoke && overhead > 0.05 && engine_median - direct_median > 0.2 {
        eprintln!(
            "warning: engine wrapper overhead {:.1}% exceeds the 5% bound \
             (direct {direct_median:.3} ms, engine {engine_median:.3} ms)",
            overhead * 100.0
        );
        std::process::exit(1);
    }
    // ... and the enabled phase tracer must stay within 5% of the
    // instrumented-but-disabled production default (same absolute slack).
    if smoke && trace_overhead > 0.05 && trace_on_median - trace_off_median > 0.2 {
        eprintln!(
            "warning: phase-tracer overhead {:.1}% exceeds the 5% bound \
             (disabled {trace_off_median:.3} ms, enabled {trace_on_median:.3} ms)",
            trace_overhead * 100.0
        );
        std::process::exit(1);
    }
}

//! Tables III & IV — emerging/disappearing co-author groups under every combination of
//! weighting setting, difference-graph direction and density measure.
//!
//! ```text
//! cargo run -p dcs-bench --release --bin table03_04_coauthor -- --scale default
//! ```

use dcs_bench::{f2, f3, yes_no, ExpOptions, Table};
use dcs_core::dcsad::DcsGreedy;
use dcs_core::dcsga::NewSea;
use dcs_core::{difference_graph_with, ContrastReport, DiscreteRule, WeightScheme};
use dcs_datasets::{best_match, CoauthorConfig, GroupKind};

fn main() {
    let options = ExpOptions::from_args();
    let pair = CoauthorConfig::for_scale(options.scale).generate();

    let mut table = Table::new(
        "Table IV — co-author groups found per setting / direction / density measure",
        &[
            "Setting",
            "GD Type",
            "Density",
            "Group",
            "Jaccard",
            "#Authors",
            "PosClique?",
            "AvgDeg diff",
            "Approx ratio",
            "Affinity diff",
            "EdgeDensity diff",
        ],
    );
    let mut json_rows = Vec::new();

    for (setting, scheme) in [
        ("Weighted", WeightScheme::Weighted),
        ("Discrete", WeightScheme::Discrete(DiscreteRule::default())),
    ] {
        for (direction, kind) in [
            ("Emerging", GroupKind::Emerging),
            ("Disappearing", GroupKind::Disappearing),
        ] {
            let gd = match kind {
                GroupKind::Emerging => difference_graph_with(&pair.g2, &pair.g1, scheme).unwrap(),
                GroupKind::Disappearing => {
                    difference_graph_with(&pair.g1, &pair.g2, scheme).unwrap()
                }
            };
            let planted = pair.planted_of_kind(kind);

            // Average degree (DCSGreedy).
            let ad = DcsGreedy::default().solve(&gd);
            let ad_report = ContrastReport::for_subset(&gd, &ad.subset);
            let ad_match = best_match(&ad.subset, &planted);
            table.add_row(vec![
                setting.into(),
                direction.into(),
                "Average Degree".into(),
                ad_match.best_group.clone(),
                f2(ad_match.jaccard),
                ad_report.size.to_string(),
                yes_no(ad_report.is_positive_clique),
                f2(ad_report.average_degree_difference),
                f2(ad.data_dependent_ratio),
                "—".into(),
                f3(ad_report.edge_density_difference),
            ]);
            json_rows.push(serde_json::json!({
                "setting": setting, "direction": direction, "measure": "average_degree",
                "group": ad_match.best_group, "jaccard": ad_match.jaccard,
                "size": ad_report.size, "positive_clique": ad_report.is_positive_clique,
                "avg_degree_diff": ad_report.average_degree_difference,
                "approx_ratio": ad.data_dependent_ratio,
                "edge_density_diff": ad_report.edge_density_difference,
            }));

            // Graph affinity (NewSEA).
            let ga = NewSea::default().solve(&gd);
            let ga_report = ContrastReport::for_embedding(&gd, &ga.embedding);
            let ga_match = best_match(&ga.support(), &planted);
            table.add_row(vec![
                setting.into(),
                direction.into(),
                "Graph Affinity".into(),
                ga_match.best_group.clone(),
                f2(ga_match.jaccard),
                ga_report.size.to_string(),
                yes_no(ga_report.is_positive_clique),
                f2(ga_report.average_degree_difference),
                "—".into(),
                f3(ga_report.affinity_difference),
                f3(ga_report.edge_density_difference),
            ]);
            json_rows.push(serde_json::json!({
                "setting": setting, "direction": direction, "measure": "graph_affinity",
                "group": ga_match.best_group, "jaccard": ga_match.jaccard,
                "size": ga_report.size, "positive_clique": ga_report.is_positive_clique,
                "avg_degree_diff": ga_report.average_degree_difference,
                "affinity_diff": ga_report.affinity_difference,
                "edge_density_diff": ga_report.edge_density_difference,
            }));
        }
    }

    table.print();
    println!(
        "(Table III counterpart: the members of each recovered group are the planted vertex ids;"
    );
    println!(" with synthetic data the interesting quantity is the Jaccard overlap with the planted group.)");

    if options.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}

//! Table XIV — DCS w.r.t. graph affinity on the large DBLP-C and Actor collaboration
//! graphs, Weighted and Discrete settings.
//!
//! ```text
//! cargo run -p dcs-bench --release --bin table14_large -- --scale default
//! ```

use dcs_bench::{f3, seconds, time, ExpOptions, Table};
use dcs_core::dcsga::NewSea;
use dcs_core::{clamp_weights, difference_graph_with, ContrastReport, DiscreteRule, WeightScheme};
use dcs_datasets::CollabConfig;
use dcs_graph::SignedGraph;

fn main() {
    let options = ExpOptions::from_args();

    let mut table = Table::new(
        "Table XIV — DCS w.r.t. graph affinity on the large collaboration graphs",
        &[
            "Data",
            "Setting",
            "#Vertices",
            "Affinity diff",
            "EdgeDensity diff",
            "NewSEA time (s)",
        ],
    );
    let mut json_rows = Vec::new();

    let dblp_c = CollabConfig::dblp_c(options.scale).generate_pair();
    let actor = CollabConfig::actor(options.scale).generate_single().0;

    let cases: Vec<(&str, &str, SignedGraph)> = vec![
        (
            "DBLP-C",
            "Weighted",
            difference_graph_with(&dblp_c.g2, &dblp_c.g1, WeightScheme::Weighted).unwrap(),
        ),
        (
            "DBLP-C",
            "Discrete",
            difference_graph_with(
                &dblp_c.g2,
                &dblp_c.g1,
                WeightScheme::Discrete(DiscreteRule::default()),
            )
            .unwrap(),
        ),
        ("Actor", "Weighted", actor.clone()),
        ("Actor", "Discrete", clamp_weights(&actor, 10.0)),
    ];

    for (data, setting, gd) in &cases {
        let (sol, elapsed) = time(|| NewSea::default().solve(gd));
        let report = ContrastReport::for_embedding(gd, &sol.embedding);
        table.add_row(vec![
            data.to_string(),
            setting.to_string(),
            report.size.to_string(),
            f3(report.affinity_difference),
            f3(report.edge_density_difference),
            seconds(elapsed),
        ]);
        json_rows.push(serde_json::json!({
            "data": data, "setting": setting,
            "size": report.size,
            "affinity_diff": report.affinity_difference,
            "edge_density_diff": report.edge_density_difference,
            "newsea_seconds": elapsed.as_secs_f64(),
            "initializations_run": sol.stats.initializations_run,
        }));
    }

    table.print();
    println!(
        "Shape check: the Weighted setting yields a tiny, extremely heavy clique; the Discrete"
    );
    println!("setting (weight clamping/discretisation) yields a noticeably larger group.");
    if options.json {
        println!("{}", serde_json::to_string_pretty(&json_rows).unwrap());
    }
}

//! Table VII — running time of the three DCSGA solvers (NewSEA, SEACD+Refine,
//! SEA+Refine) and the number of expansion errors committed by the original SEA.
//!
//! The full-sweep comparators are capped to `--limit`-many initialisations per dataset at
//! the larger scales (the cap is applied equally to SEACD+Refine and SEA+Refine so their
//! relative cost is preserved; NewSEA always runs uncapped because its smart
//! initialisation is the point of the comparison).
//!
//! ```text
//! cargo run -p dcs-bench --release --bin table07_efficiency -- --scale default
//! ```

use dcs_bench::{seconds, time, ExpOptions, Table};
use dcs_core::dcsga::{refine, DcsgaConfig, NewSea, SeaCd};
use dcs_core::{difference_graph_with, DiscreteRule, WeightScheme};
use dcs_datasets::{
    CoauthorConfig, CollabConfig, ConflictConfig, KeywordConfig, Scale, SocialInterestConfig,
};
use dcs_densest::{OriginalSea, SeaConfig};
use dcs_graph::SignedGraph;

struct Row {
    data: String,
    gd_type: String,
    newsea_s: f64,
    newsea_objective: f64,
    seacd_s: f64,
    seacd_objective: f64,
    sea_s: f64,
    sea_objective: f64,
    sea_errors: usize,
}

fn run_dataset(name: &str, gd_type: &str, gd: &SignedGraph, limit: Option<usize>) -> Row {
    let config = DcsgaConfig::default();
    let gd_plus = gd.positive_part();

    let (newsea, newsea_t) = time(|| NewSea::new(config).solve_on_positive_part(&gd_plus));
    let (seacd, seacd_t) =
        time(|| SeaCd::new(config).sweep(&gd_plus, limit, false, |g, x| refine(g, x, &config)));
    let (sea, sea_t) = time(|| {
        let sea = OriginalSea::new(SeaConfig::default());
        let result = sea.run_all_vertices(&gd_plus, limit, false);
        let refined = refine(&gd_plus, result.best.clone(), &config);
        (result, refined)
    });
    let (sea_result, sea_refined) = sea;

    Row {
        data: name.to_string(),
        gd_type: gd_type.to_string(),
        newsea_s: newsea_t.as_secs_f64(),
        newsea_objective: newsea.affinity_difference,
        seacd_s: seacd_t.as_secs_f64(),
        seacd_objective: seacd.best_objective,
        sea_s: sea_t.as_secs_f64(),
        sea_objective: sea_refined.affinity(&gd_plus),
        sea_errors: sea_result.expansion_errors,
    }
}

fn main() {
    let options = ExpOptions::from_args();
    let scale = options.scale;
    let limit = match scale {
        Scale::Tiny => None,
        Scale::Default => Some(1_000),
        Scale::Full => Some(2_000),
    };

    let mut rows: Vec<Row> = Vec::new();
    let weighted = WeightScheme::Weighted;
    let discrete = WeightScheme::Discrete(DiscreteRule::default());

    let dblp = CoauthorConfig::for_scale(scale).generate();
    for (setting, scheme) in [("DBLP Weighted", weighted), ("DBLP Discrete", discrete)] {
        let e = difference_graph_with(&dblp.g2, &dblp.g1, scheme).unwrap();
        rows.push(run_dataset(setting, "Emerging", &e, limit));
        let d = difference_graph_with(&dblp.g1, &dblp.g2, scheme).unwrap();
        rows.push(run_dataset(setting, "Disappearing", &d, limit));
    }

    let dm = KeywordConfig::for_scale(scale).generate();
    rows.push(run_dataset(
        "DM",
        "Emerging",
        &difference_graph_with(&dm.g2, &dm.g1, weighted).unwrap(),
        limit,
    ));
    rows.push(run_dataset(
        "DM",
        "Disappearing",
        &difference_graph_with(&dm.g1, &dm.g2, weighted).unwrap(),
        limit,
    ));

    let wiki = ConflictConfig::for_scale(scale).generate();
    rows.push(run_dataset(
        "Wiki",
        "Consistent",
        &difference_graph_with(&wiki.g1, &wiki.g2, weighted).unwrap(),
        limit,
    ));
    rows.push(run_dataset(
        "Wiki",
        "Conflicting",
        &difference_graph_with(&wiki.g2, &wiki.g1, weighted).unwrap(),
        limit,
    ));

    for (name, pair) in [
        ("Movie", SocialInterestConfig::movie(scale).generate()),
        ("Book", SocialInterestConfig::book(scale).generate()),
    ] {
        rows.push(run_dataset(
            name,
            "Interest-Social",
            &difference_graph_with(&pair.g2, &pair.g1, weighted).unwrap(),
            limit,
        ));
        rows.push(run_dataset(
            name,
            "Social-Interest",
            &difference_graph_with(&pair.g1, &pair.g2, weighted).unwrap(),
            limit,
        ));
    }

    let dblp_c = CollabConfig::dblp_c(scale).generate_pair();
    rows.push(run_dataset(
        "DBLP-C Weighted",
        "—",
        &difference_graph_with(&dblp_c.g2, &dblp_c.g1, weighted).unwrap(),
        limit,
    ));
    rows.push(run_dataset(
        "DBLP-C Discrete",
        "—",
        &difference_graph_with(&dblp_c.g2, &dblp_c.g1, discrete).unwrap(),
        limit,
    ));

    let (actor, _) = CollabConfig::actor(scale).generate_single();
    rows.push(run_dataset("Actor Weighted", "—", &actor, limit));
    rows.push(run_dataset(
        "Actor Discrete",
        "—",
        &dcs_core::clamp_weights(&actor, 10.0),
        limit,
    ));

    let mut table = Table::new(
        "Table VII — running time (seconds) and SEA expansion errors",
        &[
            "Data",
            "GD Type",
            "NewSEA",
            "SEACD+Refine",
            "SEA+Refine",
            "#Errors in SEA",
            "Speedup (SEACD/NewSEA)",
            "Obj NewSEA",
            "Obj SEACD",
            "Obj SEA",
        ],
    );
    for r in &rows {
        table.add_row(vec![
            r.data.clone(),
            r.gd_type.clone(),
            seconds(std::time::Duration::from_secs_f64(r.newsea_s)),
            seconds(std::time::Duration::from_secs_f64(r.seacd_s)),
            seconds(std::time::Duration::from_secs_f64(r.sea_s)),
            r.sea_errors.to_string(),
            format!("{:.1}x", r.seacd_s / r.newsea_s.max(1e-9)),
            format!("{:.3}", r.newsea_objective),
            format!("{:.3}", r.seacd_objective),
            format!("{:.3}", r.sea_objective),
        ]);
    }
    table.print();

    if options.json {
        let json: Vec<_> = rows
            .iter()
            .map(|r| {
                serde_json::json!({
                    "data": r.data, "gd_type": r.gd_type,
                    "newsea_seconds": r.newsea_s, "seacd_refine_seconds": r.seacd_s,
                    "sea_refine_seconds": r.sea_s, "sea_expansion_errors": r.sea_errors,
                    "objectives": {
                        "newsea": r.newsea_objective,
                        "seacd_refine": r.seacd_objective,
                        "sea_refine": r.sea_objective,
                    },
                })
            })
            .collect();
        println!("{}", serde_json::to_string_pretty(&json).unwrap());
    }
}

//! Tables V & VI — top-5 emerging/disappearing topics from the keyword-association
//! difference graphs, and the top-5 topics of each single-period graph (showing why
//! single-graph mining does not detect trends).
//!
//! ```text
//! cargo run -p dcs-bench --release --bin table05_06_topics -- --scale default
//! ```

use dcs_bench::{f3, ExpOptions, Table};
use dcs_core::dcsga::{clique_census, refine, DcsgaConfig, SeaCd};
use dcs_core::difference_graph;
use dcs_datasets::{KeywordConfig, Scale};
use dcs_graph::SignedGraph;

/// Runs the all-initialisations SEACD+Refine sweep and returns the top-k cliques.
fn top_cliques(graph: &SignedGraph, k: usize, limit: Option<usize>) -> Vec<(Vec<u32>, f64)> {
    let config = DcsgaConfig::default();
    let positive = graph.positive_part();
    let sweep = SeaCd::new(config).sweep(&positive, limit, true, |g, x| refine(g, x, &config));
    clique_census(&positive, &sweep.all_solutions)
        .into_iter()
        .take(k)
        .map(|c| (c.support, c.affinity))
        .collect()
}

fn print_ranked(title: &str, cliques: &[(Vec<u32>, f64)], label: impl Fn(&[u32]) -> String) {
    let mut table = Table::new(title, &["Rank", "Keyword set", "Affinity"]);
    for (rank, (support, affinity)) in cliques.iter().enumerate() {
        table.add_row(vec![(rank + 1).to_string(), label(support), f3(*affinity)]);
    }
    table.print();
}

fn main() {
    let options = ExpOptions::from_args();
    let config = KeywordConfig::for_scale(options.scale);
    let pair = config.generate();
    // Cap the number of initialisations on large scales so the sweep stays tractable.
    let limit = match options.scale {
        Scale::Tiny => None,
        Scale::Default => Some(1_500),
        Scale::Full => Some(3_000),
    };

    // Map keyword ids back to topic names where possible (for readability).
    let label = |support: &[u32]| -> String {
        for topic in &config.topics {
            let mut sorted = topic.keywords.clone();
            sorted.sort_unstable();
            let mut s = support.to_vec();
            s.sort_unstable();
            let overlap = s.iter().filter(|v| sorted.contains(v)).count();
            if overlap * 2 > s.len().max(1) {
                return format!("{:?} ≈ topic '{}'", support, topic.name);
            }
        }
        format!("{support:?} (background keywords)")
    };

    let emerging_gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let disappearing_gd = difference_graph(&pair.g1, &pair.g2).unwrap();

    print_ranked(
        "Table V (emerging) — top-5 topics of the G2−G1 difference graph",
        &top_cliques(&emerging_gd, 5, limit),
        label,
    );
    print_ranked(
        "Table V (disappearing) — top-5 topics of the G1−G2 difference graph",
        &top_cliques(&disappearing_gd, 5, limit),
        label,
    );
    print_ranked(
        "Table VI — top-5 topics of G1 alone (early period)",
        &top_cliques(&pair.g1, 5, limit),
        label,
    );
    print_ranked(
        "Table VI — top-5 topics of G2 alone (recent period)",
        &top_cliques(&pair.g2, 5, limit),
        label,
    );

    if options.json {
        let json = serde_json::json!({
            "emerging": top_cliques(&emerging_gd, 5, limit),
            "disappearing": top_cliques(&disappearing_gd, 5, limit),
            "g1_only": top_cliques(&pair.g1, 5, limit),
            "g2_only": top_cliques(&pair.g2, 5, limit),
        });
        println!("{}", serde_json::to_string_pretty(&json).unwrap());
    }
}

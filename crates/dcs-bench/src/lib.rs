//! Shared utilities of the experiment harness: command-line options, ASCII table
//! rendering, timing helpers and JSON output.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper; see
//! `DESIGN.md` (§5) for the experiment index and `EXPERIMENTS.md` for recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use dcs_datasets::Scale;

/// Options shared by every experiment binary (`--scale tiny|default|full`,
/// `--seed <u64>`, `--json`).
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Dataset scale preset.
    pub scale: Scale,
    /// RNG seed override (generators add their own offsets).
    pub seed: u64,
    /// Emit machine-readable JSON after the human-readable tables.
    pub json: bool,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: Scale::Default,
            seed: 42,
            json: false,
        }
    }
}

impl ExpOptions {
    /// Parses the options from `std::env::args`.  Unknown arguments abort with a usage
    /// message.
    pub fn from_args() -> Self {
        let mut options = ExpOptions::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    let value = args.get(i).map(String::as_str).unwrap_or("");
                    options.scale = Scale::parse(value).unwrap_or_else(|| {
                        eprintln!("unknown scale {value:?}; use tiny, default or full");
                        std::process::exit(2);
                    });
                }
                "--seed" => {
                    i += 1;
                    options.seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed expects an integer");
                        std::process::exit(2);
                    });
                }
                "--json" => options.json = true,
                "--help" | "-h" => {
                    println!("usage: <experiment> [--scale tiny|default|full] [--seed N] [--json]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other:?}");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        options
    }
}

/// Times a closure, returning its result and the wall-clock duration.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Formats a duration in seconds with millisecond resolution (the unit of Table VII).
pub fn seconds(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A simple fixed-width ASCII table used by every experiment binary.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (cells are stringified by the caller).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<width$}  ", width = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 3 decimal places (the precision of the paper's tables).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimal places.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a boolean as Yes/No (the paper's "Positive Clique?" columns).
pub fn yes_no(b: bool) -> String {
    if b {
        "Yes".to_string()
    } else {
        "No".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.add_row(vec!["1".into(), "2".into(), "3".into()]);
        t.add_row(vec!["row".into(), "x".into(), "yz".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("long-header"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(yes_no(true), "Yes");
        assert_eq!(yes_no(false), "No");
        assert_eq!(seconds(Duration::from_millis(1500)), "1.500");
    }

    #[test]
    fn timing_returns_value() {
        let (v, d) = time(|| 2 + 2);
        assert_eq!(v, 4);
        assert!(d.as_secs_f64() < 1.0);
    }

    #[test]
    fn default_options() {
        let o = ExpOptions::default();
        assert_eq!(o.scale, Scale::Default);
        assert!(!o.json);
    }
}

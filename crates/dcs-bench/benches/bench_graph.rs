//! Micro-benchmarks of the graph substrate: difference-graph construction, positive-part
//! extraction, core decomposition and connected components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_core::difference_graph;
use dcs_datasets::{CoauthorConfig, Scale};
use dcs_graph::{connected_components, core_decomposition};

fn bench_graph_substrate(c: &mut Criterion) {
    let pair = CoauthorConfig::for_scale(Scale::Default).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();

    let mut group = c.benchmark_group("graph_substrate");
    group.sample_size(20);

    group.bench_function(BenchmarkId::new("difference_graph", gd.num_edges()), |b| {
        b.iter(|| difference_graph(&pair.g2, &pair.g1).unwrap())
    });
    group.bench_function(BenchmarkId::new("positive_part", gd.num_edges()), |b| {
        b.iter(|| gd.positive_part())
    });
    group.bench_function(
        BenchmarkId::new("core_decomposition", gd.num_edges()),
        |b| b.iter(|| core_decomposition(&gd)),
    );
    group.bench_function(
        BenchmarkId::new("connected_components", gd.num_edges()),
        |b| b.iter(|| connected_components(&gd)),
    );
    group.finish();
}

criterion_group!(benches, bench_graph_substrate);
criterion_main!(benches);

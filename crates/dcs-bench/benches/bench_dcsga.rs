//! Benchmarks of the DCSGA solvers: a single SEACD run, the refinement step, and the full
//! NewSEA pipeline (smart initialisation included).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_core::dcsga::{refine, DcsgaConfig, NewSea, SeaCd};
use dcs_core::difference_graph;
use dcs_datasets::{CoauthorConfig, Scale};

fn bench_dcsga(c: &mut Criterion) {
    let pair = CoauthorConfig::for_scale(Scale::Default).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let gd_plus = gd.positive_part();
    let config = DcsgaConfig::default();
    let order = dcs_core::dcsga::smart_initialization_order(&gd_plus);
    let best_seed = order.first().map(|&(v, _)| v).unwrap_or(0);

    let mut group = c.benchmark_group("dcsga");
    group.sample_size(15);

    group.bench_function(
        BenchmarkId::new("seacd_single_run", gd_plus.num_edges()),
        |b| b.iter(|| SeaCd::new(config).run_from_vertex(&gd_plus, best_seed)),
    );
    group.bench_function(
        BenchmarkId::new("seacd_plus_refine", gd_plus.num_edges()),
        |b| {
            b.iter(|| {
                let run = SeaCd::new(config).run_from_vertex(&gd_plus, best_seed);
                refine(&gd_plus, run.embedding, &config)
            })
        },
    );
    group.bench_function(BenchmarkId::new("newsea_full", gd_plus.num_edges()), |b| {
        b.iter(|| NewSea::new(config).solve_on_positive_part(&gd_plus))
    });
    group.bench_function(
        BenchmarkId::new("smart_initialization_order", gd_plus.num_edges()),
        |b| b.iter(|| dcs_core::dcsga::smart_initialization_order(&gd_plus)),
    );
    group.finish();
}

criterion_group!(benches, bench_dcsga);
criterion_main!(benches);

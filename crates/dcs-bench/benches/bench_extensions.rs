//! Benchmarks of the library extensions layered on top of the paper's algorithms:
//! parallel initialisation sweeps, top-k mining, quasi-clique extraction and the
//! streaming monitor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_core::dcsga::{parallel_newsea, parallel_sweep, refine, DcsgaConfig, NewSea, SeaCd};
use dcs_core::streaming::{StreamingConfig, StreamingDcs};
use dcs_core::{difference_graph, top_k_affinity, top_k_average_degree, DensityMeasure};
use dcs_datasets::{CoauthorConfig, Scale, TrafficConfig, TransactionConfig};
use dcs_densest::{greedy_peeling, greedy_quasi_clique};

fn bench_parallel_sweeps(c: &mut Criterion) {
    let mut config_small = CoauthorConfig::for_scale(Scale::Tiny);
    config_small.num_authors = 1_200;
    config_small.background_edges = 5_000;
    let pair = config_small.generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let gd_plus = gd.positive_part();
    let config = DcsgaConfig::default();

    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);

    group.bench_function("newsea_sequential", |b| {
        b.iter(|| NewSea::new(config).solve_on_positive_part(&gd_plus))
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("newsea_parallel", threads), |b| {
            b.iter(|| parallel_newsea(&gd, config, threads))
        });
    }
    group.bench_function("sweep_sequential", |b| {
        b.iter(|| SeaCd::new(config).sweep(&gd_plus, None, false, |g, x| refine(g, x, &config)))
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("sweep_parallel", threads), |b| {
            b.iter(|| parallel_sweep(&gd_plus, config, threads, false))
        });
    }
    group.finish();
}

fn bench_topk_and_quasi_clique(c: &mut Criterion) {
    let pair = TransactionConfig::for_scale(Scale::Tiny).generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let gd_plus = gd.positive_part();

    let mut group = c.benchmark_group("topk_and_quasi_clique");
    group.sample_size(10);

    group.bench_function("top_k_average_degree_k5", |b| {
        b.iter(|| top_k_average_degree(&gd, 5))
    });
    group.bench_function("top_k_affinity_k5", |b| {
        b.iter(|| top_k_affinity(&gd, 5, DcsgaConfig::default()))
    });
    group.bench_function("greedy_quasi_clique", |b| {
        b.iter(|| greedy_quasi_clique(&gd, 0.5))
    });
    group.bench_function("charikar_on_gd_plus", |b| {
        b.iter(|| greedy_peeling(&gd_plus))
    });
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let config = TrafficConfig::for_scale(Scale::Tiny);
    let pair = config.generate();
    let updates: Vec<(u32, u32, f64)> = pair.g2.edges().collect();

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("observe_only", updates.len()), |b| {
        b.iter(|| {
            let mut monitor = StreamingDcs::new(
                pair.g1.clone(),
                StreamingConfig {
                    remine_every: 0,
                    alert_threshold: 0.0,
                    measure: DensityMeasure::AverageDegree,
                },
            )
            .unwrap();
            monitor.observe_batch(updates.iter().copied());
            monitor.observations()
        })
    });
    group.bench_function(BenchmarkId::new("observe_and_mine", updates.len()), |b| {
        b.iter(|| {
            let mut monitor = StreamingDcs::new(
                pair.g1.clone(),
                StreamingConfig {
                    remine_every: 0,
                    alert_threshold: 0.0,
                    measure: DensityMeasure::AverageDegree,
                },
            )
            .unwrap();
            monitor.observe_batch(updates.iter().copied());
            monitor.mine_now()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_sweeps,
    bench_topk_and_quasi_clique,
    bench_streaming
);
criterion_main!(benches);

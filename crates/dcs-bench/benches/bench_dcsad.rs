//! Benchmarks of the DCSAD pipeline (Algorithm 2) and its peeling sub-routine, across
//! increasing graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_core::dcsad::DcsGreedy;
use dcs_core::difference_graph;
use dcs_datasets::CoauthorConfig;
use dcs_densest::greedy_peeling;

fn coauthor_gd(num_authors: usize, edges: usize) -> dcs_graph::SignedGraph {
    let mut config = CoauthorConfig::for_scale(dcs_datasets::Scale::Tiny);
    config.num_authors = num_authors;
    config.background_edges = edges;
    let pair = config.generate();
    difference_graph(&pair.g2, &pair.g1).unwrap()
}

fn bench_dcsad(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcsad");
    group.sample_size(15);
    for &(n, m) in &[(1_000usize, 4_000usize), (4_000, 16_000), (12_000, 48_000)] {
        let gd = coauthor_gd(n, m);
        group.bench_with_input(BenchmarkId::new("greedy_peeling_gd", n), &gd, |b, gd| {
            b.iter(|| greedy_peeling(gd))
        });
        group.bench_with_input(BenchmarkId::new("dcsgreedy_full", n), &gd, |b, gd| {
            b.iter(|| DcsGreedy::default().solve(gd))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dcsad);
criterion_main!(benches);

//! Ablation benchmarks for the design choices called out in DESIGN.md §6:
//!
//! 1. smart initialisation on/off (NewSEA vs a capped SEACD+Refine sweep),
//! 2. coordinate-descent shrink vs replicator-dynamics shrink,
//! 3. lazy-heap peeling vs naive re-scan peeling,
//! 4. exact (Goldberg) vs greedy (Charikar) densest subgraph on `G_D+`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_core::dcsga::{descend_to_local_kkt, refine, DcsgaConfig, NewSea, SeaCd};
use dcs_core::difference_graph;
use dcs_datasets::{CoauthorConfig, Scale};
use dcs_densest::charikar::{greedy_peeling, greedy_peeling_rescan};
use dcs_densest::replicator::{replicator_dynamics, ReplicatorStop};
use dcs_densest::{densest_subgraph_exact, Embedding};

fn bench_ablations(c: &mut Criterion) {
    let mut config_small = CoauthorConfig::for_scale(Scale::Tiny);
    config_small.num_authors = 1_500;
    config_small.background_edges = 6_000;
    let pair = config_small.generate();
    let gd = difference_graph(&pair.g2, &pair.g1).unwrap();
    let gd_plus = gd.positive_part();
    let config = DcsgaConfig::default();

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // 1. Smart initialisation on/off.
    group.bench_function("newsea_smart_init", |b| {
        b.iter(|| NewSea::new(config).solve_on_positive_part(&gd_plus))
    });
    group.bench_function("seacd_refine_sweep_capped", |b| {
        b.iter(|| SeaCd::new(config).sweep(&gd_plus, Some(50), false, |g, x| refine(g, x, &config)))
    });

    // 2. Shrink strategy: 2-coordinate descent vs replicator dynamics, from the same
    // uniform start on a planted clique's neighbourhood.
    let seed_vertices: Vec<u32> = gd_plus.ego_net(gd_plus.num_vertices() as u32 - 2);
    let x0 = Embedding::uniform(&seed_vertices);
    group.bench_function(
        BenchmarkId::new("shrink_coordinate_descent", seed_vertices.len()),
        |b| b.iter(|| descend_to_local_kkt(&gd_plus, &x0, &seed_vertices, 1e-4, 100_000)),
    );
    group.bench_function(
        BenchmarkId::new("shrink_replicator_dynamics", seed_vertices.len()),
        |b| {
            b.iter(|| {
                replicator_dynamics(&gd_plus, &x0, ReplicatorStop::KktGap { eps: 1e-4 }, 100_000)
            })
        },
    );

    // 3. Peeling structure.
    group.bench_function("peeling_lazy_heap", |b| b.iter(|| greedy_peeling(&gd)));
    group.bench_function("peeling_segment_tree", |b| {
        b.iter(|| dcs_densest::charikar::greedy_peeling_segment_tree(&gd))
    });
    group.bench_function("peeling_rescan", |b| b.iter(|| greedy_peeling_rescan(&gd)));

    // 4. Exact vs greedy densest subgraph on G_D+.
    group.bench_function("densest_goldberg_exact", |b| {
        b.iter(|| densest_subgraph_exact(&gd_plus))
    });
    group.bench_function("densest_charikar_greedy", |b| {
        b.iter(|| greedy_peeling(&gd_plus))
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);

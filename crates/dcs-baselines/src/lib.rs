//! # dcs-baselines
//!
//! Baselines and exact reference solvers used to evaluate the density-contrast-subgraph
//! algorithms:
//!
//! * [`exact`] — brute-force solvers for tiny instances (optimal DCSAD subset, maximum
//!   clique).  They are exponential and guarded by size assertions; their only purpose is
//!   to provide ground truth in tests and calibration experiments.
//! * [`egoscan`] — a substitute for the EgoScan algorithm of Cadena et al. (ICDM 2016),
//!   the closest related work the paper compares against in Tables VIII/IX.  EgoScan
//!   maximises the **total** weight `W_D(S)` of a subgraph of the signed difference
//!   graph.  The original uses a semidefinite-programming rounding inside every ego net;
//!   we substitute an ego-net seeded greedy local search with the same objective, which
//!   reproduces the qualitative behaviour the paper reports (EgoScan returns much larger
//!   subgraphs with higher total weight but far lower density than the DCS algorithms).
//!   The substitution is documented in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod egoscan;
pub mod exact;

pub use egoscan::{EgoScan, EgoScanConfig, EgoScanResult};
pub use exact::{brute_force_dcsad, brute_force_max_clique};

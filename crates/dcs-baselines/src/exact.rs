//! Exponential-time exact solvers for tiny instances (test oracles).

use dcs_graph::{SignedGraph, VertexId, Weight};

/// Maximum vertex count accepted by the subset-enumeration solvers.
const MAX_BRUTE_FORCE_VERTICES: usize = 22;

/// Brute-force optimum of the DCSAD problem `max_S W_D(S)/|S|` by enumerating every
/// non-empty vertex subset.
///
/// # Panics
///
/// Panics if the graph has more than 22 vertices (2²² subsets is the practical limit for
/// a test oracle).
pub fn brute_force_dcsad(gd: &SignedGraph) -> (Vec<VertexId>, Weight) {
    let n = gd.num_vertices();
    assert!(
        n <= MAX_BRUTE_FORCE_VERTICES,
        "brute_force_dcsad is limited to {MAX_BRUTE_FORCE_VERTICES} vertices (got {n})"
    );
    let mut best: (Vec<VertexId>, Weight) = (vec![0], 0.0);
    for mask in 1u64..(1u64 << n) {
        let subset: Vec<VertexId> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
        let density = gd.average_degree(&subset);
        if density > best.1 {
            best = (subset, density);
        }
    }
    best
}

/// Brute-force maximum clique of the *positive part* of a graph (edges with weight > 0),
/// returned as a sorted vertex list.  Uses a simple branch-and-bound over the vertex
/// ordering; fine up to a few dozen vertices.
pub fn brute_force_max_clique(g: &SignedGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let adjacent = |u: VertexId, v: VertexId| matches!(g.edge_weight(u, v), Some(w) if w > 0.0);
    let mut best: Vec<VertexId> = Vec::new();
    let mut current: Vec<VertexId> = Vec::new();

    fn extend(
        candidates: &[VertexId],
        current: &mut Vec<VertexId>,
        best: &mut Vec<VertexId>,
        adjacent: &dyn Fn(VertexId, VertexId) -> bool,
    ) {
        if current.len() + candidates.len() <= best.len() {
            return; // bound
        }
        if candidates.is_empty() {
            if current.len() > best.len() {
                *best = current.clone();
            }
            return;
        }
        for (idx, &v) in candidates.iter().enumerate() {
            if current.len() + (candidates.len() - idx) <= best.len() {
                break;
            }
            let next: Vec<VertexId> = candidates[idx + 1..]
                .iter()
                .copied()
                .filter(|&u| adjacent(u, v))
                .collect();
            current.push(v);
            extend(&next, current, best, adjacent);
            current.pop();
        }
    }

    let all: Vec<VertexId> = (0..n as VertexId).collect();
    extend(&all, &mut current, &mut best, &adjacent);
    best.sort_unstable();
    best
}

/// The Motzkin–Straus optimum of the DCSGA problem for an **unweighted** graph:
/// `1 − 1/ω(G)` where `ω(G)` is the clique number (0 for an edgeless graph).
///
/// Only meaningful when every positive edge has weight exactly 1; used as a DCSGA test
/// oracle.
pub fn motzkin_straus_optimum(g: &SignedGraph) -> Weight {
    let clique = brute_force_max_clique(g);
    if clique.len() <= 1 {
        0.0
    } else {
        1.0 - 1.0 / clique.len() as Weight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    #[test]
    fn dcsad_on_signed_triangle() {
        let gd =
            GraphBuilder::from_edges(4, vec![(0, 1, 2.0), (1, 2, 2.0), (0, 2, 2.0), (2, 3, -5.0)]);
        let (subset, density) = brute_force_dcsad(&gd);
        assert_eq!(subset, vec![0, 1, 2]);
        assert!((density - 4.0).abs() < 1e-12);
    }

    #[test]
    fn dcsad_all_negative_graph() {
        let gd = GraphBuilder::from_edges(3, vec![(0, 1, -1.0), (1, 2, -2.0)]);
        let (subset, density) = brute_force_dcsad(&gd);
        assert_eq!(subset.len(), 1);
        assert_eq!(density, 0.0);
    }

    #[test]
    fn max_clique_ignores_negative_edges() {
        let g = GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (2, 3, -1.0),
                (3, 4, -1.0),
                (0, 3, 1.0),
                (1, 3, 1.0),
            ],
        );
        // Positive clique {0,1,2} plus vertex 3 connected positively to 0,1 but
        // negatively to 2, so the max positive clique is {0,1,2} or {0,1,3} (both size 3).
        let clique = brute_force_max_clique(&g);
        assert_eq!(clique.len(), 3);
        assert!(g.is_positive_clique(&clique));
    }

    #[test]
    fn max_clique_of_k5() {
        let mut b = GraphBuilder::new(7);
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(5, 6, 1.0);
        let clique = brute_force_max_clique(&b.build());
        assert_eq!(clique, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn motzkin_straus_values() {
        let triangle = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        assert!((motzkin_straus_optimum(&triangle) - 2.0 / 3.0).abs() < 1e-12);
        let edge = GraphBuilder::from_edges(2, vec![(0, 1, 1.0)]);
        assert!((motzkin_straus_optimum(&edge) - 0.5).abs() < 1e-12);
        let empty = SignedGraph::empty(3);
        assert_eq!(motzkin_straus_optimum(&empty), 0.0);
    }

    #[test]
    #[should_panic(expected = "limited")]
    fn brute_force_rejects_large_graphs() {
        brute_force_dcsad(&SignedGraph::empty(30));
    }
}

//! EgoScan-substitute: a heavy-subgraph baseline maximising the total degree `W_D(S)`.
//!
//! Cadena et al. (ICDM 2016) mine the subgraph of a signed "excess" graph whose **total**
//! edge weight is maximal, scanning ego nets and rounding a semidefinite relaxation in
//! each.  We reproduce the objective and the ego-net scanning structure but replace the
//! SDP by a greedy local search (see `DESIGN.md` for the substitution rationale):
//!
//! 1. **Ego-net seeds** — for the highest-positive-degree seed vertices, grow a candidate
//!    inside the seed's ego net by adding vertices with positive marginal gain.
//! 2. **Global peel seed** — start from every vertex with a positive weighted degree and
//!    repeatedly discard the vertex with the most negative internal degree.
//! 3. **Local search** — from every candidate, alternately add any vertex with positive
//!    marginal gain and remove any vertex with negative internal degree until a local
//!    optimum of `W_D(S)` is reached.
//!
//! The result is a *large* subgraph with a high total-weight difference and (typically) a
//! much lower density than the DCS algorithms produce — exactly the qualitative contrast
//! of Tables VIII/IX.

use dcs_core::engine::{ContrastSolver, EngineSolution, SolveContext, SolveStats, SolverDetail};
use dcs_graph::{SignedGraph, VertexId, VertexSubset, Weight};

/// Configuration of the EgoScan substitute.
#[derive(Debug, Clone, Copy)]
pub struct EgoScanConfig {
    /// Number of ego-net seeds to expand (the highest positive-weighted-degree vertices).
    pub max_seeds: usize,
    /// Maximum number of add/remove sweeps in the local-search phase.
    pub max_sweeps: usize,
}

impl Default for EgoScanConfig {
    fn default() -> Self {
        EgoScanConfig {
            max_seeds: 64,
            max_sweeps: 50,
        }
    }
}

/// Result of the EgoScan substitute.
#[derive(Debug, Clone)]
pub struct EgoScanResult {
    /// The mined vertex set, sorted ascending.
    pub subset: Vec<VertexId>,
    /// Its total degree `W_D(S)` (degree-sum convention, like the rest of the workspace).
    pub total_degree: Weight,
}

/// The EgoScan-substitute solver.
#[derive(Debug, Clone, Default)]
pub struct EgoScan {
    config: EgoScanConfig,
}

impl EgoScan {
    /// Creates a solver with an explicit configuration.
    pub fn new(config: EgoScanConfig) -> Self {
        EgoScan { config }
    }

    /// Mines a subgraph with (locally) maximal total weight from the signed graph `gd`.
    pub fn solve(&self, gd: &SignedGraph) -> EgoScanResult {
        self.solve_bounded(gd, &SolveContext::unbounded()).0
    }

    /// [`Self::solve`] under a [`SolveContext`]: the context is checked once per
    /// local-search sweep and once per ego-net seed, so a deadline, cancellation or
    /// exhausted budget returns the best (valid, locally improved) candidate found so
    /// far together with [`SolveStats`] telemetry.
    pub fn solve_bounded(
        &self,
        gd: &SignedGraph,
        cx: &SolveContext,
    ) -> (EgoScanResult, SolveStats) {
        let mut meter = cx.meter();
        let n = gd.num_vertices();
        if n == 0 || gd.num_positive_edges() == 0 {
            return (
                EgoScanResult {
                    subset: Vec::new(),
                    total_degree: 0.0,
                },
                meter.finish(),
            );
        }

        // Seed 1: global "drop negative contributors" candidate starting from all
        // vertices incident to at least one positive edge.
        let positive_touched: Vec<VertexId> = gd
            .vertices()
            .filter(|&v| gd.neighbors(v).any(|e| e.weight > 0.0))
            .collect();
        meter.note_candidates(1);
        let mut best = self.local_search(gd, &positive_touched, &mut meter);

        // Seed 2: ego nets of the highest positive-degree vertices.
        let mut by_pos_degree: Vec<(VertexId, Weight)> = gd
            .vertices()
            .map(|v| {
                let pos: Weight = gd
                    .neighbors(v)
                    .filter(|e| e.weight > 0.0)
                    .map(|e| e.weight)
                    .sum();
                (v, pos)
            })
            .filter(|(_, w)| *w > 0.0)
            .collect();
        by_pos_degree.sort_by(|a, b| b.1.total_cmp(&a.1));
        for &(seed, _) in by_pos_degree.iter().take(self.config.max_seeds) {
            if meter.stopped() {
                break;
            }
            meter.note_candidates(1);
            let ego = gd.ego_net(seed);
            let candidate = self.local_search(gd, &ego, &mut meter);
            if candidate.total_degree > best.total_degree {
                best = candidate;
            }
        }
        (best, meter.finish())
    }

    /// Add/remove local search maximising `W_D(S)` starting from `initial`.  One
    /// meter unit per sweep; an interrupted search returns its current members (every
    /// completed pass only ever improved `W_D(S)`).
    fn local_search(
        &self,
        gd: &SignedGraph,
        initial: &[VertexId],
        meter: &mut dcs_core::engine::WorkMeter,
    ) -> EgoScanResult {
        let n = gd.num_vertices();
        let mut members = VertexSubset::from_slice(n, initial);

        for _ in 0..self.config.max_sweeps {
            if !meter.tick(1) {
                break;
            }
            let mut changed = false;

            // Removal pass: drop every vertex whose internal weighted degree is negative
            // (removing it increases W_D(S) by −2·degree > 0).  Iterate to a fixpoint
            // within the pass because removals change neighbours' degrees.
            let mut removal_progress = true;
            while removal_progress {
                removal_progress = false;
                let current: Vec<VertexId> = members.iter().copied().collect();
                for v in current {
                    let internal = gd.weighted_degree_in(v, &members);
                    if internal < 0.0 {
                        members.remove(v);
                        removal_progress = true;
                        changed = true;
                    }
                }
            }

            // Addition pass: add any outside vertex whose marginal gain is positive.
            // Candidates are restricted to neighbours of the current members.
            let mut candidates: Vec<VertexId> = Vec::new();
            {
                let mut seen = vec![false; n];
                for &u in members.iter() {
                    for e in gd.neighbors(u) {
                        let v = e.neighbor;
                        if !members.contains(v) && !seen[v as usize] {
                            seen[v as usize] = true;
                            candidates.push(v);
                        }
                    }
                }
            }
            for v in candidates {
                if members.contains(v) {
                    continue;
                }
                let gain = gd.weighted_degree_in(v, &members);
                if gain > 0.0 {
                    members.insert(v);
                    changed = true;
                }
            }

            if !changed {
                break;
            }
        }

        let subset = members.into_sorted_vec();
        let total_degree = gd.total_degree(&subset);
        EgoScanResult {
            subset,
            total_degree,
        }
    }
}

impl ContrastSolver for EgoScan {
    fn name(&self) -> &'static str {
        "egoscan"
    }

    fn solve_in(&self, gd: &SignedGraph, cx: &SolveContext) -> EngineSolution {
        let (result, stats) = self.solve_bounded(gd, cx);
        EngineSolution {
            subset: result.subset,
            objective: result.total_degree,
            detail: SolverDetail::Subset,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    #[test]
    fn collects_all_positive_weight() {
        // Two positive communities joined by a positive bridge: the total-weight optimum
        // is everything positive.
        let gd = GraphBuilder::from_edges(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (2, 3, 0.5),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
            ],
        );
        let res = EgoScan::default().solve(&gd);
        assert_eq!(res.subset, vec![0, 1, 2, 3, 4, 5]);
        assert!((res.total_degree - 13.0).abs() < 1e-9); // 2 * 6.5
    }

    #[test]
    fn drops_negative_appendage() {
        let gd = GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 2.0),
                (1, 2, 2.0),
                (0, 2, 2.0),
                (2, 3, -4.0),
                (3, 4, 1.0),
            ],
        );
        let res = EgoScan::default().solve(&gd);
        // Vertex 3 is a net negative for the triangle; {3,4} alone is worth 2 but the
        // triangle is worth 12, and joining them costs 8.  Expect the triangle plus
        // (possibly) the disconnected positive pair to NOT be merged through the negative
        // edge.  The local search keeps whichever start is better: the triangle.
        assert!(res.subset.contains(&0) && res.subset.contains(&1) && res.subset.contains(&2));
        assert!(!res.subset.contains(&3));
        assert!(res.total_degree >= 12.0 - 1e-9);
    }

    #[test]
    fn returns_bigger_subgraphs_than_dcs_density_would() {
        // A dense heavy core plus a halo of mildly positive edges: total-weight
        // maximisation includes the halo, density maximisation would not.
        let mut b = GraphBuilder::new(20);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 10.0);
            }
        }
        for v in 4..20u32 {
            b.add_edge(0, v, 0.5);
        }
        let gd = b.build();
        let res = EgoScan::default().solve(&gd);
        assert_eq!(res.subset.len(), 20);
        // Density of the EgoScan answer is far below the core's density (30).
        assert!(gd.average_degree(&res.subset) < 10.0);
    }

    #[test]
    fn empty_and_all_negative() {
        let res = EgoScan::default().solve(&SignedGraph::empty(4));
        assert!(res.subset.is_empty());
        let gd = GraphBuilder::from_edges(3, vec![(0, 1, -1.0)]);
        let res = EgoScan::default().solve(&gd);
        assert!(res.subset.is_empty());
        assert_eq!(res.total_degree, 0.0);
    }

    #[test]
    fn engine_solver_matches_direct_solve_and_respects_cancellation() {
        let gd = GraphBuilder::from_edges(
            6,
            vec![
                (0, 1, 1.0),
                (1, 2, 1.0),
                (0, 2, 1.0),
                (2, 3, 0.5),
                (3, 4, 1.0),
                (4, 5, 1.0),
                (3, 5, 1.0),
            ],
        );
        let direct = EgoScan::default().solve(&gd);
        let engine = EgoScan::default().solve_in(&gd, &SolveContext::unbounded());
        assert_eq!(engine.subset, direct.subset);
        assert_eq!(engine.objective, direct.total_degree);
        assert!(engine.stats.termination.is_converged());
        assert!(engine.stats.candidates > 0);

        let token = dcs_core::engine::CancelToken::new();
        token.cancel();
        let cancelled =
            EgoScan::default().solve_in(&gd, &SolveContext::unbounded().with_cancel(&token));
        assert_eq!(
            cancelled.stats.termination,
            dcs_core::engine::Termination::Cancelled
        );
        assert!(cancelled
            .subset
            .iter()
            .all(|&v| (v as usize) < gd.num_vertices()));
    }

    #[test]
    fn total_degree_is_locally_optimal() {
        // At the returned solution no single vertex can be added with positive gain or
        // removed with negative internal degree.
        let gd = GraphBuilder::from_edges(
            7,
            vec![
                (0, 1, 3.0),
                (1, 2, -1.0),
                (2, 3, 2.0),
                (3, 4, -0.5),
                (4, 5, 1.0),
                (5, 6, 4.0),
                (0, 6, -2.0),
                (2, 5, 1.5),
            ],
        );
        let res = EgoScan::default().solve(&gd);
        let members = VertexSubset::from_slice(gd.num_vertices(), &res.subset);
        for v in gd.vertices() {
            let internal = gd.weighted_degree_in(v, &members);
            if members.contains(v) {
                assert!(internal >= 0.0, "vertex {v} should have been removed");
            } else {
                assert!(internal <= 0.0, "vertex {v} should have been added");
            }
        }
    }
}

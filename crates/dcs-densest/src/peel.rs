//! Priority structures for greedy peeling.
//!
//! Greedy peeling repeatedly removes the vertex of minimum *current* weighted degree and
//! must update the degrees of its neighbors.  The paper suggests a segment tree; we use a
//! lazy binary heap (entries are invalidated by bumping a per-vertex version counter)
//! which has the same `O((n + m) log n)` complexity and a considerably smaller constant
//! in practice.  A naive `O(n)`-per-extraction re-scan implementation is provided for the
//! ablation benchmark `bench_peeling`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use dcs_graph::{VertexId, Weight};

/// Heap entry: (current degree, vertex, version at insertion time).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) degree: Weight,
    pub(crate) vertex: VertexId,
    pub(crate) version: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.degree == other.degree && self.vertex == other.vertex
    }
}
impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want min-degree first, so reverse the comparison.
        other
            .degree
            .partial_cmp(&self.degree)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable scratch state of a greedy peel: the lazy heap, per-vertex degree /
/// version / alive arrays, the removal order and the best-prefix marks.
///
/// A peel allocates all of this on first use and a **reused** workspace performs no
/// heap allocation at all in steady state (the `BinaryHeap` and every `Vec` keep
/// their capacity across internal resets).  One workspace serves any number of
/// sequential peels of graphs of any size; it is the peel-shaped slice of
/// `dcs_core`'s `SolverWorkspace`.
#[derive(Debug, Clone, Default)]
pub struct PeelWorkspace {
    pub(crate) heap: BinaryHeap<Entry>,
    pub(crate) degree: Vec<Weight>,
    pub(crate) version: Vec<u32>,
    pub(crate) alive: Vec<bool>,
    pub(crate) removal_order: Vec<VertexId>,
    pub(crate) in_best: Vec<bool>,
    /// Per-chunk partial sums of the initial degrees (see
    /// [`crate::charikar::DEGREE_CHUNK`]): the total degree is folded from these
    /// in ascending chunk order so the sequential and parallel peels perform the
    /// exact same float additions.
    pub(crate) chunk_sums: Vec<Weight>,
}

impl PeelWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        PeelWorkspace::default()
    }

    /// Clears every buffer and re-sizes the per-vertex arrays for a universe of `n`
    /// vertices, keeping all allocated capacity.
    pub(crate) fn reset(&mut self, n: usize) {
        self.heap.clear();
        self.degree.clear();
        self.degree.resize(n, 0.0);
        self.version.clear();
        self.version.resize(n, 0);
        self.alive.clear();
        self.alive.resize(n, false);
        self.removal_order.clear();
        self.in_best.clear();
        self.in_best.resize(n, false);
        self.chunk_sums.clear();
    }

    /// The vertices removed by the most recent peel, in removal order.  The
    /// sequential and parallel peels produce the exact same sequence — this is
    /// the surface the bit-identity property tests compare.
    pub fn removal_order(&self) -> &[VertexId] {
        &self.removal_order
    }
}

/// Common interface of the peeling priority structures.
pub trait MinDegreeQueue {
    /// Creates the structure from the initial weighted degrees.
    fn from_degrees(degrees: &[Weight]) -> Self;
    /// Removes and returns the alive vertex with the minimum current degree.
    fn pop_min(&mut self) -> Option<(VertexId, Weight)>;
    /// Adds `delta` to the current degree of `v` (no effect if `v` was already popped).
    fn adjust(&mut self, v: VertexId, delta: Weight);
    /// Number of vertices still alive.
    fn len(&self) -> usize;
    /// Returns `true` if no vertex is alive.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Lazy binary-heap implementation of [`MinDegreeQueue`].
#[derive(Debug, Clone)]
pub struct LazyHeapQueue {
    heap: BinaryHeap<Entry>,
    degree: Vec<Weight>,
    version: Vec<u32>,
    alive: Vec<bool>,
    alive_count: usize,
}

impl MinDegreeQueue for LazyHeapQueue {
    fn from_degrees(degrees: &[Weight]) -> Self {
        let n = degrees.len();
        let mut heap = BinaryHeap::with_capacity(n);
        for (v, &d) in degrees.iter().enumerate() {
            heap.push(Entry {
                degree: d,
                vertex: v as VertexId,
                version: 0,
            });
        }
        LazyHeapQueue {
            heap,
            degree: degrees.to_vec(),
            version: vec![0; n],
            alive: vec![true; n],
            alive_count: n,
        }
    }

    fn pop_min(&mut self) -> Option<(VertexId, Weight)> {
        while let Some(entry) = self.heap.pop() {
            let v = entry.vertex as usize;
            if !self.alive[v] || entry.version != self.version[v] {
                continue; // stale entry
            }
            self.alive[v] = false;
            self.alive_count -= 1;
            return Some((entry.vertex, entry.degree));
        }
        None
    }

    fn adjust(&mut self, v: VertexId, delta: Weight) {
        let vi = v as usize;
        if !self.alive[vi] {
            return;
        }
        self.degree[vi] += delta;
        self.version[vi] += 1;
        self.heap.push(Entry {
            degree: self.degree[vi],
            vertex: v,
            version: self.version[vi],
        });
    }

    fn len(&self) -> usize {
        self.alive_count
    }
}

/// Naive re-scan implementation of [`MinDegreeQueue`]: `pop_min` is `O(n)`.
///
/// Kept only as the baseline of the `bench_peeling` ablation; do not use for large
/// graphs.
#[derive(Debug, Clone)]
pub struct RescanQueue {
    degree: Vec<Weight>,
    alive: Vec<bool>,
    alive_count: usize,
}

impl MinDegreeQueue for RescanQueue {
    fn from_degrees(degrees: &[Weight]) -> Self {
        RescanQueue {
            degree: degrees.to_vec(),
            alive: vec![true; degrees.len()],
            alive_count: degrees.len(),
        }
    }

    fn pop_min(&mut self) -> Option<(VertexId, Weight)> {
        let mut best: Option<(VertexId, Weight)> = None;
        for (v, &d) in self.degree.iter().enumerate() {
            if !self.alive[v] {
                continue;
            }
            match best {
                None => best = Some((v as VertexId, d)),
                Some((_, bd)) if d < bd => best = Some((v as VertexId, d)),
                _ => {}
            }
        }
        if let Some((v, _)) = best {
            self.alive[v as usize] = false;
            self.alive_count -= 1;
        }
        best
    }

    fn adjust(&mut self, v: VertexId, delta: Weight) {
        if self.alive[v as usize] {
            self.degree[v as usize] += delta;
        }
    }

    fn len(&self) -> usize {
        self.alive_count
    }
}

/// Segment-tree implementation of [`MinDegreeQueue`] — the structure suggested by the
/// paper for Algorithm 1.  `pop_min` and `adjust` are both `O(log n)` with a very small
/// constant; unlike the lazy heap it never accumulates stale entries, which makes it the
/// better choice when the number of `adjust` calls per removal is large (very dense
/// graphs).
#[derive(Debug, Clone)]
pub struct SegmentTreeQueue {
    /// Number of leaves (padded to the next power of two).
    size: usize,
    /// `tree[i]` holds the (degree, vertex) minimum of the subtree rooted at `i`;
    /// removed vertices hold `f64::INFINITY`.
    tree: Vec<(Weight, VertexId)>,
    degree: Vec<Weight>,
    alive: Vec<bool>,
    alive_count: usize,
}

impl SegmentTreeQueue {
    fn update_leaf(&mut self, v: usize, value: Weight) {
        let mut i = self.size + v;
        self.tree[i] = (value, v as VertexId);
        while i > 1 {
            i /= 2;
            let left = self.tree[2 * i];
            let right = self.tree[2 * i + 1];
            self.tree[i] = if left.0 <= right.0 { left } else { right };
        }
    }
}

impl MinDegreeQueue for SegmentTreeQueue {
    fn from_degrees(degrees: &[Weight]) -> Self {
        let n = degrees.len();
        let size = n.next_power_of_two().max(1);
        let mut queue = SegmentTreeQueue {
            size,
            tree: vec![(Weight::INFINITY, 0); 2 * size],
            degree: degrees.to_vec(),
            alive: vec![true; n],
            alive_count: n,
        };
        for (v, &d) in degrees.iter().enumerate() {
            queue.tree[size + v] = (d, v as VertexId);
        }
        for i in (1..size).rev() {
            let left = queue.tree[2 * i];
            let right = queue.tree[2 * i + 1];
            queue.tree[i] = if left.0 <= right.0 { left } else { right };
        }
        queue
    }

    fn pop_min(&mut self) -> Option<(VertexId, Weight)> {
        if self.alive_count == 0 {
            return None;
        }
        let (degree, vertex) = self.tree[1];
        debug_assert!(
            degree.is_finite(),
            "alive vertices must have finite degrees"
        );
        self.alive[vertex as usize] = false;
        self.alive_count -= 1;
        self.update_leaf(vertex as usize, Weight::INFINITY);
        Some((vertex, degree))
    }

    fn adjust(&mut self, v: VertexId, delta: Weight) {
        let vi = v as usize;
        if !self.alive[vi] {
            return;
        }
        self.degree[vi] += delta;
        self.update_leaf(vi, self.degree[vi]);
    }

    fn len(&self) -> usize {
        self.alive_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<Q: MinDegreeQueue>(degrees: &[Weight]) -> Vec<(VertexId, Weight)> {
        let mut q = Q::from_degrees(degrees);
        assert_eq!(q.len(), degrees.len());
        // Adjust vertex 0 upward and vertex 2 downward before popping.
        q.adjust(0, 10.0);
        q.adjust(2, -10.0);
        let mut order = Vec::new();
        while let Some(item) = q.pop_min() {
            order.push(item);
        }
        assert!(q.is_empty());
        order
    }

    #[test]
    fn heap_and_rescan_agree() {
        let degrees = vec![1.0, 5.0, 3.0, -2.0, 0.5];
        let a = exercise::<LazyHeapQueue>(&degrees);
        let b = exercise::<RescanQueue>(&degrees);
        assert_eq!(a, b);
        // After adjustments the degrees are [11, 5, -7, -2, 0.5] → popped ascending.
        let popped: Vec<VertexId> = a.iter().map(|(v, _)| *v).collect();
        assert_eq!(popped, vec![2, 3, 4, 1, 0]);
    }

    #[test]
    fn segment_tree_agrees_with_other_queues() {
        let degrees = vec![1.0, 5.0, 3.0, -2.0, 0.5, 7.25, 0.0];
        let a = exercise::<LazyHeapQueue>(&degrees);
        let c = exercise::<SegmentTreeQueue>(&degrees);
        // Popping order may differ on exact ties, but the multiset of (vertex, degree)
        // pairs and the sortedness by degree must match.
        let mut a_sorted = a.clone();
        let mut c_sorted = c.clone();
        a_sorted.sort_by_key(|x| x.0);
        c_sorted.sort_by_key(|x| x.0);
        assert_eq!(a_sorted, c_sorted);
        for pair in c.windows(2) {
            assert!(pair[0].1 <= pair[1].1 + 1e-12);
        }
    }

    #[test]
    fn segment_tree_pop_after_empty() {
        let mut q = SegmentTreeQueue::from_degrees(&[2.0]);
        assert_eq!(q.pop_min(), Some((0, 2.0)));
        assert_eq!(q.pop_min(), None);
        q.adjust(0, 5.0); // ignored: vertex already removed
        assert_eq!(q.pop_min(), None);
    }

    #[test]
    fn segment_tree_adjust_changes_order() {
        let mut q = SegmentTreeQueue::from_degrees(&[1.0, 2.0, 3.0]);
        q.adjust(2, -5.0); // degree of 2 becomes -2 → must pop first
        assert_eq!(q.pop_min().unwrap().0, 2);
        assert_eq!(q.pop_min().unwrap().0, 0);
        assert_eq!(q.pop_min().unwrap().0, 1);
    }

    #[test]
    fn adjust_after_pop_is_ignored() {
        let mut q = LazyHeapQueue::from_degrees(&[1.0, 2.0]);
        let (v, _) = q.pop_min().unwrap();
        assert_eq!(v, 0);
        q.adjust(0, -100.0); // vertex 0 is gone; must not resurface
        let (v2, d2) = q.pop_min().unwrap();
        assert_eq!(v2, 1);
        assert_eq!(d2, 2.0);
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn negative_degrees_supported() {
        let mut q = LazyHeapQueue::from_degrees(&[-5.0, -1.0, -3.0]);
        assert_eq!(q.pop_min().unwrap().0, 0);
        assert_eq!(q.pop_min().unwrap().0, 2);
        assert_eq!(q.pop_min().unwrap().0, 1);
    }
}

//! # dcs-densest
//!
//! Classical densest-subgraph machinery that the density-contrast algorithms build on.
//! Everything here predates the DCS paper and is implemented from scratch as a substrate:
//!
//! * [`charikar`] — greedy peeling (Algorithm 1 of the paper, originally Charikar 2000),
//!   generalised to graphs with **signed** edge weights.  On non-negative graphs it is a
//!   2-approximation of the maximum average degree.
//! * [`peel`] — the priority structure used by peeling (a lazy binary heap keyed by the
//!   current weighted degree), plus a naive re-scan variant used for ablation benches.
//! * [`maxflow`] — Dinic's maximum-flow algorithm.
//! * [`goldberg`] — Goldberg's exact maximum-density-subgraph algorithm (binary search
//!   over the density combined with min-cut computations) for non-negative weights.
//! * [`quasi_clique`] — optimal α-quasi-clique extraction (edge-surplus objective,
//!   Tsourakakis et al. 2013), the problem Section III-D of the paper relates the
//!   α-scaled difference graph to; used as an ablation comparator.
//! * [`simplex`] — subgraph embeddings on the standard simplex `Δn` and the graph
//!   affinity objective `f(x) = xᵀAx`.
//! * [`replicator`] — replicator dynamics, the shrink-stage iteration of the original
//!   SEA algorithm (Liu et al., TPAMI 2013).  Only valid for non-negative matrices.
//! * [`expansion`] — the SEA expansion step shared by the original SEA and the paper's
//!   SEACD (it is derived for arbitrary symmetric matrices).
//! * [`sea`] — the original SEA algorithm (shrink via replicator dynamics + expansion),
//!   including the loose objective-improvement stopping rule the paper criticises; it is
//!   the `SEA+Refine` comparator of Tables VII and Fig. 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charikar;
pub mod expansion;
pub mod goldberg;
pub mod maxflow;
pub mod parallel_peel;
pub mod peel;
pub mod quasi_clique;
pub mod replicator;
pub mod sea;
pub mod simplex;

pub use charikar::{
    greedy_peeling, greedy_peeling_until, greedy_peeling_view_into, greedy_peeling_with_profile,
    PeelingProfile, PeelingResult,
};
pub use expansion::{
    expansion_candidates, expansion_candidates_view, expansion_candidates_view_par, expansion_step,
    ExpansionOutcome,
};
pub use goldberg::{
    densest_subgraph_exact, densest_subgraph_exact_until, densest_subgraph_view_until,
    DensestSubgraph,
};
pub use maxflow::FlowNetwork;
pub use parallel_peel::{
    greedy_peeling_parallel_view_into, greedy_peeling_view_auto, ParallelPeelWorkspace,
    PARALLEL_PEEL_THRESHOLD,
};
pub use peel::PeelWorkspace;
pub use quasi_clique::{greedy_quasi_clique, local_search_quasi_clique, QuasiCliqueResult};
pub use replicator::{replicator_dynamics, ReplicatorStop};
pub use sea::{OriginalSea, SeaConfig, SeaResult};
pub use simplex::{DenseEmbedding, Embedding};

//! Parallel greedy peeling, **bit-identical** to the sequential peel.
//!
//! The sequential peel of [`crate::charikar`] repeatedly removes the alive
//! vertex minimising the key `(current weighted degree, vertex id)`.  This
//! module reproduces the *exact* removal sequence — and every float operation
//! along the way — while doing the expensive scans on worker threads:
//!
//! 1. **Init** — workers compute the initial weighted degrees of disjoint
//!    vertex ranges.  Ranges are aligned to `DEGREE_CHUNK`-sized chunks and
//!    the total degree is folded from per-chunk partial sums in ascending
//!    chunk order, the same operations the (chunked) sequential init performs.
//! 2. **Scan rounds** — each worker finds the `batch_per_range` smallest keys
//!    of its range plus a *threshold* (the smallest key it had to leave out;
//!    exhausted ranges report none).  The coordinator merges the per-range
//!    batches into one ascending run and sets `bound` = the minimum threshold:
//!    every alive vertex outside the batch has a key `>= bound`.
//! 3. **Commit** — the coordinator replays removals sequentially from the
//!    merged batch plus a *dirty heap*: removing a vertex updates its
//!    neighbours' degrees (invalidating their batch entries by version bump)
//!    and re-inserts any neighbour whose new key drops below `bound`.  Commits
//!    stop when the best candidate's key reaches `bound` — at that point some
//!    unscanned vertex may be smaller, so the round ends and the workers scan
//!    again.  The smallest alive key is always in the batch at round start, so
//!    every round commits at least one removal.
//!
//! Because candidate selection always yields the globally smallest
//! `(degree, vertex)` key and the neighbour updates run in the same CSR row
//! order as the sequential peel, removal order, densities, best prefix and the
//! interruption behaviour of the `stop` callback are all bit-identical — the
//! property the `parallel_peel_properties` suite pins down.
//!
//! Workers are **persistent**: the workspace holds a [`taskcrew::WorkerCrew`]
//! spawned on first parallel peel and reused across every subsequent round
//! *and* every subsequent solve, so a peel round costs one condvar broadcast
//! instead of two thread spawns.  The shared per-vertex state lives in
//! atomics written only while the other side is parked in the crew's round
//! barrier, so this module needs no `unsafe` (the lifetime erasure lives in
//! the `taskcrew` shim).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering as MemOrd};
use std::sync::Mutex;

use taskcrew::WorkerCrew;

use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};

use crate::charikar::{finish_peel, greedy_peeling_view_into, PeelingResult, DEGREE_CHUNK};
use crate::peel::{Entry, PeelWorkspace};

/// Below this many alive vertices the sequential peel wins (thread setup and
/// barrier traffic dominate): [`greedy_peeling_view_auto`] dispatches on it.
pub const PARALLEL_PEEL_THRESHOLD: usize = 4096;

/// Default number of smallest keys each worker range contributes per scan round.
const DEFAULT_BATCH_PER_RANGE: usize = 128;

/// The ascending `(degree, vertex)` key order, with the exact tie rule of the
/// sequential heap's [`Entry`] (`partial_cmp` collapsed to `Equal`, then vertex
/// id) — *not* `total_cmp`, which orders `-0.0` and `0.0` differently.
#[inline]
fn key_cmp(a: (Weight, VertexId), b: (Weight, VertexId)) -> Ordering {
    a.0.partial_cmp(&b.0)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.1.cmp(&b.1))
}

#[inline]
fn min_key(
    current: Option<(Weight, VertexId)>,
    candidate: (Weight, VertexId),
) -> Option<(Weight, VertexId)> {
    Some(match current {
        None => candidate,
        Some(best) => {
            if key_cmp(candidate, best) == Ordering::Less {
                candidate
            } else {
                best
            }
        }
    })
}

/// Per-worker state: the vertex range, the scan's bounded key heap and its
/// sorted output, the range threshold, and the init phase's chunk sums.
#[derive(Debug, Default)]
struct RangeSlot {
    start: usize,
    end: usize,
    heap: BinaryHeap<Reverse<Entry>>,
    sorted: Vec<Entry>,
    threshold: Option<(Weight, VertexId)>,
    chunk_sums: Vec<Weight>,
}

/// Reusable scratch state of the parallel peel: shared per-vertex atomics
/// (degree bits, version counters, alive flags), one range slot per worker,
/// and the coordinator's merged batch and dirty heap.
///
/// Like [`PeelWorkspace`], a reused instance performs no steady-state heap
/// allocation; it is the parallel-peel-shaped slice of `dcs_core`'s
/// `SolverWorkspace`.
#[derive(Debug, Default)]
pub struct ParallelPeelWorkspace {
    degree_bits: Vec<AtomicU64>,
    version: Vec<AtomicU32>,
    alive: Vec<AtomicBool>,
    slots: Vec<Mutex<RangeSlot>>,
    batch: Vec<Entry>,
    dirty: BinaryHeap<Entry>,
    batch_per_range: usize,
    /// Persistent workers, spawned on the first parallel peel and reused for
    /// every later round/solve; re-spawned only if the thread count changes.
    crew: Option<WorkerCrew>,
}

impl Clone for ParallelPeelWorkspace {
    /// Cloning scratch state yields a fresh (empty) workspace — the buffers are
    /// per-solve caches, not data.
    fn clone(&self) -> Self {
        ParallelPeelWorkspace {
            batch_per_range: self.batch_per_range,
            ..ParallelPeelWorkspace::default()
        }
    }
}

impl ParallelPeelWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        ParallelPeelWorkspace::default()
    }

    /// Overrides how many smallest keys each range contributes per scan round
    /// (`0` restores the default).  Small values force many scan rounds — the
    /// property tests use this to exercise the round protocol on small graphs.
    pub fn set_batch_per_range(&mut self, batch: usize) {
        self.batch_per_range = batch;
    }

    fn effective_batch(&self) -> usize {
        if self.batch_per_range == 0 {
            DEFAULT_BATCH_PER_RANGE
        } else {
            self.batch_per_range
        }
    }

    /// Re-sizes for a universe of `n` vertices split across `threads` ranges,
    /// clearing the alive flags and laying out chunk-aligned ranges.
    fn reset(&mut self, n: usize, threads: usize) {
        if self.degree_bits.len() < n {
            self.degree_bits.resize_with(n, || AtomicU64::new(0));
            self.version.resize_with(n, || AtomicU32::new(0));
            self.alive.resize_with(n, || AtomicBool::new(false));
        }
        for flag in &self.alive[..n] {
            flag.store(false, MemOrd::Relaxed);
        }
        let num_chunks = n.div_ceil(DEGREE_CHUNK);
        let chunks_per = num_chunks.div_ceil(threads).max(1);
        if self.slots.len() != threads {
            self.slots.resize_with(threads, Mutex::default);
        }
        for (t, slot) in self.slots.iter_mut().enumerate() {
            let slot = slot.get_mut().expect("slot poisoned");
            let c0 = (t * chunks_per).min(num_chunks);
            let c1 = ((t + 1) * chunks_per).min(num_chunks);
            slot.start = (c0 * DEGREE_CHUNK).min(n);
            slot.end = (c1 * DEGREE_CHUNK).min(n);
            slot.chunk_sums.clear();
            slot.chunk_sums.resize(c1 - c0, 0.0);
            slot.sorted.clear();
            slot.heap.clear();
            slot.threshold = None;
        }
        self.batch.clear();
        self.dirty.clear();
    }
}

/// Init phase for one range: weighted degrees of the alive vertices (CSR row
/// order, alive-neighbour + sign filtering — the same operations as the
/// sequential init) plus per-chunk partial sums.
fn init_range(
    slot: &mut RangeSlot,
    graph: &SignedGraph,
    positive_only: bool,
    degree_bits: &[AtomicU64],
    version: &[AtomicU32],
    alive: &[AtomicBool],
) {
    for ci in 0..slot.chunk_sums.len() {
        let lo = slot.start + ci * DEGREE_CHUNK;
        let hi = (lo + DEGREE_CHUNK).min(slot.end);
        let mut sum: Weight = 0.0;
        for v in lo..hi {
            if !alive[v].load(MemOrd::Relaxed) {
                continue;
            }
            let (nbrs, nbr_weights) = graph.neighbor_slices(v as VertexId);
            let mut d: Weight = 0.0;
            for (&u, &w) in nbrs.iter().zip(nbr_weights) {
                if (positive_only && w <= 0.0) || !alive[u as usize].load(MemOrd::Relaxed) {
                    continue;
                }
                d += w;
            }
            degree_bits[v].store(d.to_bits(), MemOrd::Relaxed);
            version[v].store(0, MemOrd::Relaxed);
            sum += d;
        }
        slot.chunk_sums[ci] = sum;
    }
}

/// Scan phase for one range: the `batch` smallest `(degree, vertex)` keys of
/// the alive vertices (sorted ascending into `slot.sorted`) and the smallest
/// key left out (`slot.threshold`; `None` when the whole range fit).
fn scan_range(
    slot: &mut RangeSlot,
    batch: usize,
    degree_bits: &[AtomicU64],
    version: &[AtomicU32],
    alive: &[AtomicBool],
) {
    slot.heap.clear();
    slot.threshold = None;
    for v in slot.start..slot.end {
        if !alive[v].load(MemOrd::Relaxed) {
            continue;
        }
        let degree = f64::from_bits(degree_bits[v].load(MemOrd::Relaxed));
        let entry = Entry {
            degree,
            vertex: v as VertexId,
            version: version[v].load(MemOrd::Relaxed),
        };
        if slot.heap.len() < batch {
            slot.heap.push(Reverse(entry));
            continue;
        }
        // `Reverse<Entry>` pops the largest key first, so `peek` is the worst
        // key currently kept.
        let worst = slot.heap.peek().expect("batch > 0").0;
        if key_cmp((degree, entry.vertex), (worst.degree, worst.vertex)) == Ordering::Less {
            let evicted = slot.heap.pop().expect("non-empty").0;
            slot.threshold = min_key(slot.threshold, (evicted.degree, evicted.vertex));
            slot.heap.push(Reverse(entry));
        } else {
            slot.threshold = min_key(slot.threshold, (degree, entry.vertex));
        }
    }
    slot.sorted.clear();
    while let Some(Reverse(entry)) = slot.heap.pop() {
        slot.sorted.push(entry);
    }
    slot.sorted.reverse();
}

/// [`greedy_peeling_view_into`] on
/// `threads` worker threads, bit-identical to the sequential peel (removal
/// order, densities, best subset, `stop` interactions).  `threads <= 1` falls
/// back to the sequential implementation.
pub fn greedy_peeling_parallel_view_into<F: FnMut(u64) -> bool>(
    view: GraphView<'_>,
    ws: &mut PeelWorkspace,
    par: &mut ParallelPeelWorkspace,
    threads: usize,
    mut stop: F,
) -> (PeelingResult, bool) {
    if threads <= 1 {
        return greedy_peeling_view_into(view, ws, stop);
    }
    let n = view.num_vertices();
    let alive_at_start = view.alive_count();
    if alive_at_start == 0 {
        return (
            PeelingResult {
                subset: Vec::new(),
                average_degree: 0.0,
            },
            false,
        );
    }
    let mut peel_span = dcs_obs::trace::span(dcs_obs::trace::Phase::Peel);
    ws.reset(n);
    par.reset(n, threads);
    for v in view.vertices() {
        par.alive[v as usize].store(true, MemOrd::Relaxed);
    }
    let positive_only = view.is_positive_only();
    let graph = view.graph();
    let batch_per_range = par.effective_batch();

    if par.crew.as_ref().map(WorkerCrew::threads) != Some(threads) {
        par.crew = Some(WorkerCrew::new(threads));
    }
    let ParallelPeelWorkspace {
        degree_bits,
        version,
        alive,
        slots,
        batch,
        dirty,
        crew,
        ..
    } = par;
    let crew = crew.as_ref().expect("crew ensured above");
    let (degree_bits, version, alive) = (&degree_bits[..], &version[..], &alive[..]);
    let slots = &slots[..];

    let (alive_count, best_density, best_size, interrupted) = {
        // ---- init round ----
        crew.broadcast(&|i| {
            let mut slot = slots[i].lock().expect("slot poisoned");
            init_range(&mut slot, graph, positive_only, degree_bits, version, alive);
        });
        let mut total_degree: Weight = 0.0;
        for slot in slots.iter() {
            let slot = slot.lock().expect("slot poisoned");
            for &chunk in &slot.chunk_sums {
                total_degree += chunk;
            }
        }
        let mut alive_count = alive_at_start;
        let mut best_density = total_degree / alive_count as Weight;
        let mut best_size = alive_count;
        let mut interrupted = false;

        // ---- scan/commit rounds ----
        'outer: while alive_count > 1 {
            crew.broadcast(&|i| {
                let mut slot = slots[i].lock().expect("slot poisoned");
                scan_range(&mut slot, batch_per_range, degree_bits, version, alive);
            });
            batch.clear();
            dirty.clear();
            let mut bound: Option<(Weight, VertexId)> = None;
            for slot in slots.iter() {
                let slot = slot.lock().expect("slot poisoned");
                batch.extend_from_slice(&slot.sorted);
                if let Some(threshold) = slot.threshold {
                    bound = min_key(bound, threshold);
                }
            }
            batch.sort_unstable_by(|a, b| key_cmp((a.degree, a.vertex), (b.degree, b.vertex)));

            let mut bi = 0usize;
            while alive_count > 1 {
                // Next valid batch entry (skip removed / re-prioritised).
                while bi < batch.len() {
                    let entry = batch[bi];
                    let vi = entry.vertex as usize;
                    if alive[vi].load(MemOrd::Relaxed)
                        && version[vi].load(MemOrd::Relaxed) == entry.version
                    {
                        break;
                    }
                    bi += 1;
                }
                // Next valid dirty entry.
                while let Some(&entry) = dirty.peek() {
                    let vi = entry.vertex as usize;
                    if alive[vi].load(MemOrd::Relaxed)
                        && version[vi].load(MemOrd::Relaxed) == entry.version
                    {
                        break;
                    }
                    dirty.pop();
                }
                let batch_head = batch.get(bi).copied();
                let dirty_head = dirty.peek().copied();
                let candidate = match (batch_head, dirty_head) {
                    (None, None) => break, // round exhausted → rescan
                    (Some(b), None) => {
                        bi += 1;
                        b
                    }
                    (None, Some(_)) => dirty.pop().expect("peeked"),
                    (Some(b), Some(d)) => {
                        if key_cmp((b.degree, b.vertex), (d.degree, d.vertex)) == Ordering::Less {
                            bi += 1;
                            b
                        } else {
                            dirty.pop().expect("peeked")
                        }
                    }
                };
                if let Some(bound) = bound {
                    // Some unscanned vertex may tie or beat this key: end the
                    // round (the candidate is rediscovered by the next scan).
                    if key_cmp((candidate.degree, candidate.vertex), bound) != Ordering::Less {
                        break;
                    }
                }
                if stop(1) {
                    interrupted = true;
                    break 'outer;
                }
                // ---- commit: identical float ops to the sequential peel ----
                let v = candidate.vertex;
                alive[v as usize].store(false, MemOrd::Relaxed);
                let mut removed_weight: Weight = 0.0;
                let (nbrs, nbr_weights) = graph.neighbor_slices(v);
                for (&u, &w) in nbrs.iter().zip(nbr_weights) {
                    if positive_only && w <= 0.0 {
                        continue;
                    }
                    let ui = u as usize;
                    if alive[ui].load(MemOrd::Relaxed) {
                        removed_weight += w;
                        let new_degree = f64::from_bits(degree_bits[ui].load(MemOrd::Relaxed)) - w;
                        degree_bits[ui].store(new_degree.to_bits(), MemOrd::Relaxed);
                        let new_version = version[ui].load(MemOrd::Relaxed).wrapping_add(1);
                        version[ui].store(new_version, MemOrd::Relaxed);
                        let relevant = match bound {
                            None => true,
                            Some(bound) => key_cmp((new_degree, u), bound) == Ordering::Less,
                        };
                        if relevant {
                            dirty.push(Entry {
                                degree: new_degree,
                                vertex: u,
                                version: new_version,
                            });
                        }
                    }
                }
                total_degree -= 2.0 * removed_weight;
                alive_count -= 1;
                ws.removal_order.push(v);
                let density = total_degree / alive_count as Weight;
                if density > best_density {
                    best_density = density;
                    best_size = alive_count;
                }
            }
        }

        (alive_count, best_density, best_size, interrupted)
    };
    peel_span.set_units((alive_at_start - alive_count) as u64);

    // The shared tail reads `ws.alive` for the negative-density fallback: sync
    // it from the atomic flags the commits actually maintained.
    for (slot, flag) in ws.alive[..n].iter_mut().zip(alive.iter()) {
        *slot = flag.load(MemOrd::Relaxed);
    }
    finish_peel(
        view,
        ws,
        best_density,
        best_size,
        alive_at_start,
        interrupted,
    )
}

/// Peels through the parallel implementation when it can win — `threads > 1`
/// and at least [`PARALLEL_PEEL_THRESHOLD`] alive vertices — and through the
/// sequential reference otherwise.  Both paths are bit-identical, so callers
/// may dispatch freely per solve.
pub fn greedy_peeling_view_auto<F: FnMut(u64) -> bool>(
    view: GraphView<'_>,
    ws: &mut PeelWorkspace,
    par: &mut ParallelPeelWorkspace,
    threads: usize,
    stop: F,
) -> (PeelingResult, bool) {
    if threads > 1 && view.alive_count() >= PARALLEL_PEEL_THRESHOLD {
        greedy_peeling_parallel_view_into(view, ws, par, threads, stop)
    } else {
        greedy_peeling_view_into(view, ws, stop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charikar::greedy_peeling_view_into;
    use dcs_graph::{GraphBuilder, GraphView, VertexMask};

    /// Deterministic pseudo-random graph: `n` vertices, ~`m` signed edges.
    fn random_graph(n: u32, m: usize, seed: u64, signed: bool) -> dcs_graph::SignedGraph {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut b = GraphBuilder::new(n as usize);
        for _ in 0..m {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u == v {
                continue;
            }
            let raw = (next() % 1000) as f64 / 100.0 + 0.01;
            let w = if signed && next() % 4 == 0 { -raw } else { raw };
            b.add_edge(u, v, w);
        }
        b.build()
    }

    fn assert_bit_identical(view: GraphView<'_>, threads: usize, batch: usize) {
        let mut seq_ws = PeelWorkspace::new();
        let (seq, seq_int) = greedy_peeling_view_into(view, &mut seq_ws, |_| false);
        let mut par_ws = PeelWorkspace::new();
        let mut par = ParallelPeelWorkspace::new();
        par.set_batch_per_range(batch);
        let (got, got_int) =
            greedy_peeling_parallel_view_into(view, &mut par_ws, &mut par, threads, |_| false);
        assert_eq!(seq_int, got_int);
        assert_eq!(seq.subset, got.subset);
        assert_eq!(
            seq.average_degree.to_bits(),
            got.average_degree.to_bits(),
            "densities must be bit-identical"
        );
        assert_eq!(seq_ws.removal_order(), par_ws.removal_order());
    }

    #[test]
    fn parallel_matches_sequential_on_random_graphs() {
        for seed in 0..4u64 {
            let g = random_graph(300, 1200, seed, false);
            for threads in [2, 3, 4] {
                for batch in [1, 4, 128] {
                    assert_bit_identical(GraphView::full(&g), threads, batch);
                }
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_with_negative_weights() {
        for seed in 10..13u64 {
            let g = random_graph(257, 900, seed, true);
            assert_bit_identical(GraphView::full(&g), 4, 8);
            assert_bit_identical(GraphView::full(&g).positive_part(), 4, 8);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_masked_views() {
        let g = random_graph(300, 1500, 77, true);
        let mut mask = VertexMask::full(g.num_vertices());
        for v in (0..300u32).step_by(7) {
            mask.remove(v);
        }
        assert_bit_identical(GraphView::masked(&g, &mask), 4, 16);
    }

    #[test]
    fn workspace_reuse_and_single_thread_fallback() {
        let g = random_graph(200, 800, 5, false);
        let mut ws = PeelWorkspace::new();
        let mut par = ParallelPeelWorkspace::new();
        par.set_batch_per_range(4);
        let first =
            greedy_peeling_parallel_view_into(GraphView::full(&g), &mut ws, &mut par, 3, |_| false)
                .0;
        // Re-running through the same workspaces must be deterministic.
        let second =
            greedy_peeling_parallel_view_into(GraphView::full(&g), &mut ws, &mut par, 3, |_| false)
                .0;
        assert_eq!(first, second);
        // threads <= 1 routes to the sequential implementation.
        let seq =
            greedy_peeling_parallel_view_into(GraphView::full(&g), &mut ws, &mut par, 1, |_| false)
                .0;
        assert_eq!(first, seq);
    }

    #[test]
    fn interruption_matches_sequential() {
        let g = random_graph(150, 600, 9, true);
        for limit in [1u64, 5, 50] {
            let mut remaining = limit;
            let mut seq_ws = PeelWorkspace::new();
            let (seq, seq_int) = greedy_peeling_view_into(GraphView::full(&g), &mut seq_ws, |u| {
                remaining = remaining.saturating_sub(u);
                remaining == 0
            });
            let mut remaining = limit;
            let mut par_ws = PeelWorkspace::new();
            let mut par = ParallelPeelWorkspace::new();
            par.set_batch_per_range(4);
            let (got, got_int) = greedy_peeling_parallel_view_into(
                GraphView::full(&g),
                &mut par_ws,
                &mut par,
                4,
                |u| {
                    remaining = remaining.saturating_sub(u);
                    remaining == 0
                },
            );
            assert_eq!(seq_int, got_int);
            assert_eq!(seq.subset, got.subset);
            assert_eq!(seq.average_degree.to_bits(), got.average_degree.to_bits());
            assert_eq!(seq_ws.removal_order(), par_ws.removal_order());
        }
    }

    #[test]
    fn auto_dispatch_thresholds() {
        let g = random_graph(100, 300, 3, false);
        let mut ws = PeelWorkspace::new();
        let mut par = ParallelPeelWorkspace::new();
        // Small graph: auto uses the sequential path regardless of threads.
        let auto = greedy_peeling_view_auto(GraphView::full(&g), &mut ws, &mut par, 4, |_| false).0;
        let seq = greedy_peeling_view_into(GraphView::full(&g), &mut ws, |_| false).0;
        assert_eq!(auto, seq);
    }
}

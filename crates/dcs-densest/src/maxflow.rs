//! Dinic's maximum-flow algorithm on floating-point capacities.
//!
//! Used by [`crate::goldberg`] to solve the exact maximum-density-subgraph problem via a
//! sequence of min-cut computations.  The implementation is a standard level-graph /
//! blocking-flow Dinic with an epsilon guard for floating-point capacities.

/// Numerical tolerance below which a residual capacity is considered saturated.
const EPS: f64 = 1e-12;

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    /// Residual capacity.
    cap: f64,
    /// Index of the reverse arc in `graph[to]`.
    rev: usize,
}

/// A flow network with float capacities supporting max-flow / min-cut queries.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<Arc>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no arcs.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.len()
    }

    /// Clears every arc and re-sizes the network to `n` nodes, keeping the allocated
    /// per-node arc storage.
    ///
    /// Goldberg's binary search solves ~64 min-cut instances over the same node set;
    /// rebuilding each instance into a reused network turns what used to be hundreds
    /// of arc-vector allocations per solve into zero in steady state.  The same arena
    /// is then carried across solves by the engine's `SolverWorkspace`.
    pub fn clear_and_resize(&mut self, n: usize) {
        for arcs in &mut self.graph {
            arcs.clear();
        }
        self.graph.resize_with(n, Vec::new);
        self.level.clear();
        self.level.resize(n, 0);
        self.iter.clear();
        self.iter.resize(n, 0);
    }

    /// Adds a directed arc `from -> to` with capacity `cap` (and a zero-capacity reverse
    /// arc).  Negative capacities are clamped to zero.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: f64) {
        let cap = cap.max(0.0);
        let from_len = self.graph[from].len();
        let to_len = self.graph[to].len();
        self.graph[from].push(Arc {
            to,
            cap,
            rev: to_len,
        });
        self.graph[to].push(Arc {
            to: from,
            cap: 0.0,
            rev: from_len,
        });
    }

    /// Adds an undirected edge with capacity `cap` in both directions.
    pub fn add_undirected_edge(&mut self, a: usize, b: usize, cap: f64) {
        let cap = cap.max(0.0);
        let a_len = self.graph[a].len();
        let b_len = self.graph[b].len();
        self.graph[a].push(Arc {
            to: b,
            cap,
            rev: b_len,
        });
        self.graph[b].push(Arc {
            to: a,
            cap,
            rev: a_len,
        });
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for arc in &self.graph[v] {
                if arc.cap > EPS && self.level[arc.to] < 0 {
                    self.level[arc.to] = self.level[v] + 1;
                    queue.push_back(arc.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, v: usize, t: usize, pushed: f64) -> f64 {
        if v == t {
            return pushed;
        }
        while self.iter[v] < self.graph[v].len() {
            let i = self.iter[v];
            let (to, cap) = {
                let arc = &self.graph[v][i];
                (arc.to, arc.cap)
            };
            if cap > EPS && self.level[v] < self.level[to] {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > EPS {
                    let rev = self.graph[v][i].rev;
                    self.graph[v][i].cap -= d;
                    self.graph[to][rev].cap += d;
                    return d;
                }
            }
            self.iter[v] += 1;
        }
        0.0
    }

    /// Computes the maximum flow from `s` to `t`; the residual capacities are left in
    /// place so that [`Self::min_cut_source_side`] can be called afterwards.
    pub fn max_flow(&mut self, s: usize, t: usize) -> f64 {
        let mut flow = 0.0;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, f64::INFINITY);
                if f <= EPS {
                    break;
                }
                flow += f;
            }
        }
        flow
    }

    /// After [`Self::max_flow`], returns the set of nodes reachable from `s` in the
    /// residual graph — the source side of a minimum cut.
    pub fn min_cut_source_side(&self, s: usize) -> Vec<usize> {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(v) = stack.pop() {
            for arc in &self.graph[v] {
                if arc.cap > EPS && !seen[arc.to] {
                    seen[arc.to] = true;
                    stack.push(arc.to);
                }
            }
        }
        (0..n).filter(|&v| seen[v]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        // s -> a -> t with bottleneck 3
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 3.0);
        assert!((net.max_flow(0, 2) - 3.0).abs() < 1e-9);
        let cut = net.min_cut_source_side(0);
        assert_eq!(cut, vec![0, 1]);
    }

    #[test]
    fn parallel_paths() {
        // Two disjoint s->t paths of capacity 2 and 4.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(0, 2, 4.0);
        net.add_edge(2, 3, 4.0);
        assert!((net.max_flow(0, 3) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn classic_diamond() {
        // Classic example with a cross edge; max flow 19.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10.0);
        net.add_edge(0, 2, 10.0);
        net.add_edge(1, 2, 1.0);
        net.add_edge(1, 3, 9.0);
        net.add_edge(2, 3, 10.0);
        assert!((net.max_flow(0, 3) - 19.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4.0);
        assert_eq!(net.max_flow(0, 2), 0.0);
        let cut = net.min_cut_source_side(0);
        assert_eq!(cut, vec![0, 1]);
    }

    #[test]
    fn undirected_edge_flow() {
        // s - a = b - t where a=b is undirected with capacity 2.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 10.0);
        net.add_undirected_edge(1, 2, 2.0);
        net.add_edge(2, 3, 10.0);
        assert!((net.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clear_and_resize_reuses_the_network() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5.0);
        net.add_edge(1, 2, 3.0);
        assert!((net.max_flow(0, 2) - 3.0).abs() < 1e-9);
        // Rebuild a different instance into the same arena.
        net.clear_and_resize(4);
        assert_eq!(net.num_nodes(), 4);
        net.add_edge(0, 1, 2.0);
        net.add_edge(1, 3, 2.0);
        net.add_edge(0, 2, 4.0);
        net.add_edge(2, 3, 4.0);
        assert!((net.max_flow(0, 3) - 6.0).abs() < 1e-9);
        // Shrinking works too.
        net.clear_and_resize(2);
        net.add_edge(0, 1, 1.5);
        assert!((net.max_flow(0, 1) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_capacity_clamped() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -5.0);
        assert_eq!(net.max_flow(0, 1), 0.0);
    }

    #[test]
    fn min_cut_value_matches_flow() {
        // Random-ish small network: check max-flow equals the capacity across the cut.
        let mut net = FlowNetwork::new(6);
        let arcs = [
            (0, 1, 3.0),
            (0, 2, 2.0),
            (1, 3, 2.5),
            (2, 3, 1.0),
            (1, 4, 1.0),
            (2, 4, 2.0),
            (3, 5, 4.0),
            (4, 5, 2.0),
        ];
        for (u, v, c) in arcs {
            net.add_edge(u, v, c);
        }
        let flow = net.max_flow(0, 5);
        let source_side = net.min_cut_source_side(0);
        let in_source = |v: usize| source_side.contains(&v);
        let cut_value: f64 = arcs
            .iter()
            .filter(|(u, v, _)| in_source(*u) && !in_source(*v))
            .map(|(_, _, c)| *c)
            .sum();
        assert!((flow - cut_value).abs() < 1e-9);
    }
}

//! Goldberg's exact maximum-density-subgraph algorithm (max-flow + binary search).
//!
//! For a graph with **non-negative** edge weights, the subgraph maximising the average
//! degree `ρ(S) = W(S)/|S|` can be found in polynomial time (Goldberg 1984).  We use the
//! classical reduction: for a density guess `g`, build the flow network
//!
//! ```text
//!   source s ──(d_v)──▶ v          for every vertex v, d_v = weighted degree of v
//!   v ──(2g)──▶ sink t             for every vertex v
//!   u ◀──(w_uv)──▶ v               for every edge, capacity in both directions
//! ```
//!
//! The min cut is `Σ_v d_v − max_S (W(S) − 2g·|S|)`, so a subgraph with average degree
//! `> g` exists iff the min cut is `< Σ_v d_v`, and the source side of the cut exhibits
//! one.  A binary search over `g` converges to the optimum; for the rational densities
//! arising from rational weights the search terminates exactly once the interval is
//! smaller than `1/(n(n-1))` times the weight granularity, but we simply run a fixed
//! number of iterations and return the best non-empty source side found, which is exact
//! for all practical purposes (and verified against brute force in the tests).
//!
//! This solver is a *substrate*: the paper's DCSAD problem cannot use it directly because
//! the difference graph has negative weights (that is the whole point of Theorem 1), but
//! it provides ground truth on `G_{D+}` for tests and an ablation baseline.

use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};

use crate::maxflow::FlowNetwork;

/// Result of the exact densest-subgraph computation.
#[derive(Debug, Clone, PartialEq)]
pub struct DensestSubgraph {
    /// The optimal vertex subset (sorted ascending).
    pub subset: Vec<VertexId>,
    /// Its average degree `W(S)/|S|` (degree-sum convention).
    pub average_degree: Weight,
}

/// Number of binary-search iterations.  Each halves the candidate interval; 64 rounds
/// drive the interval below 1e-15 of the initial range, far below any meaningful density
/// difference for `f64` weights.
const BINARY_SEARCH_ROUNDS: usize = 64;

/// Computes the subgraph with maximum average degree of a non-negatively weighted graph.
///
/// # Panics
///
/// Panics if the graph contains a negative edge weight — the reduction is only valid for
/// non-negative weights (use the DCS algorithms for signed graphs).
pub fn densest_subgraph_exact(g: &SignedGraph) -> DensestSubgraph {
    densest_subgraph_exact_until(g, |_| false).0
}

/// [`densest_subgraph_exact`] with a **stop callback**: `stop(1)` is invoked before
/// every binary-search round (each round is one max-flow computation) and the search
/// aborts as soon as it returns `true`, returning the best subgraph certified so far.
///
/// The second component reports whether the search was interrupted.  Interruption
/// granularity is one max-flow round — a single flow computation is never cut short.
///
/// # Panics
///
/// Panics if the graph contains a negative edge weight, like [`densest_subgraph_exact`].
pub fn densest_subgraph_exact_until<F: FnMut(u64) -> bool>(
    g: &SignedGraph,
    stop: F,
) -> (DensestSubgraph, bool) {
    assert!(
        g.num_negative_edges() == 0,
        "densest_subgraph_exact requires non-negative edge weights"
    );
    densest_subgraph_view_until(GraphView::full(g), &mut FlowNetwork::new(0), stop)
}

/// [`densest_subgraph_exact_until`] on a [`GraphView`], building every min-cut
/// instance into a reused [`FlowNetwork`] arena.
///
/// The view's surviving edges must be non-negative (a positive-filtered view
/// guarantees this by construction; otherwise the routine panics on the first
/// negative surviving edge).  Dead vertices take no part: they enter the flow
/// network isolated and can never reach the source side of a cut.  The arena keeps
/// its arc storage across the ~64 binary-search rounds *and* across solves, which is
/// the allocation hot path of the exact comparator.
pub fn densest_subgraph_view_until<F: FnMut(u64) -> bool>(
    view: GraphView<'_>,
    net: &mut FlowNetwork,
    mut stop: F,
) -> (DensestSubgraph, bool) {
    let n = view.num_vertices();
    if view.alive_count() == 0 {
        return (
            DensestSubgraph {
                subset: Vec::new(),
                average_degree: 0.0,
            },
            false,
        );
    }
    let mut degrees: Vec<Weight> = vec![0.0; n];
    let mut has_edge = false;
    for v in view.vertices() {
        let mut d = 0.0;
        for e in view.neighbors(v) {
            assert!(
                e.weight >= 0.0,
                "densest_subgraph_exact requires non-negative edge weights"
            );
            d += e.weight;
            has_edge = true;
        }
        degrees[v as usize] = d;
    }
    if !has_edge {
        return (
            DensestSubgraph {
                subset: vec![view.first_alive().expect("alive vertex exists")],
                average_degree: 0.0,
            },
            false,
        );
    }
    let degree_sum: Weight = degrees.iter().sum();

    // The density (degree-sum convention) lies in [0, max over the peel]; the full-graph
    // density is a lower bound and the maximum weighted degree is an upper bound.
    let mut lo: Weight = 0.0;
    let mut hi: Weight = degrees.iter().cloned().fold(0.0, Weight::max);
    let mut best: Option<(Vec<VertexId>, Weight)> = None;

    let mut interrupted = false;
    let mut marks = dcs_graph::VertexSubset::new(0);
    let mut flow_span = dcs_obs::trace::span(dcs_obs::trace::Phase::Flow);
    for _ in 0..BINARY_SEARCH_ROUNDS {
        if stop(1) {
            interrupted = true;
            break;
        }
        flow_span.add_units(1);
        let guess = 0.5 * (lo + hi);
        let candidate = min_cut_candidate(view, net, &degrees, degree_sum, guess);
        match candidate {
            Some(subset) if !subset.is_empty() => {
                let density = view_average_degree(view, &subset, &mut marks);
                if best.as_ref().map(|(_, d)| density > *d).unwrap_or(true) {
                    best = Some((subset, density));
                }
                lo = guess;
            }
            _ => {
                hi = guess;
            }
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }

    let result = match best {
        Some((mut subset, density)) => {
            subset.sort_unstable();
            DensestSubgraph {
                subset,
                average_degree: density,
            }
        }
        None => {
            // All guesses were infeasible, which can only happen if the graph is
            // edgeless (handled above) or the search was interrupted before its first
            // round — return a safe default.
            DensestSubgraph {
                subset: vec![view.first_alive().expect("alive vertex exists")],
                average_degree: 0.0,
            }
        }
    };
    (result, interrupted)
}

/// Average degree of `subset` over the view's surviving edges (degree-sum
/// convention).  `marks` is reused scratch — one membership set serves all ~64
/// binary-search rounds of a solve.
fn view_average_degree(
    view: GraphView<'_>,
    subset: &[VertexId],
    marks: &mut dcs_graph::VertexSubset,
) -> Weight {
    if subset.is_empty() {
        return 0.0;
    }
    marks.reset_universe(view.num_vertices());
    marks.insert_all(subset);
    let mut sum = 0.0;
    for &u in subset {
        for e in view.neighbors(u) {
            if marks.contains(e.neighbor) {
                sum += e.weight;
            }
        }
    }
    sum / subset.len() as Weight
}

/// For a density guess, returns the source side of the min cut (excluding `s`/`t`) if it
/// certifies a subgraph with average degree >= guess, otherwise `None`.
fn min_cut_candidate(
    view: GraphView<'_>,
    net: &mut FlowNetwork,
    degrees: &[Weight],
    degree_sum: Weight,
    guess: Weight,
) -> Option<Vec<VertexId>> {
    let n = view.num_vertices();
    let source = n;
    let sink = n + 1;
    net.clear_and_resize(n + 2);
    for (v, &degree) in degrees.iter().enumerate() {
        net.add_edge(source, v, degree);
        net.add_edge(v, sink, guess); // 2g in the W(S)/(2|S|) formulation == g here:
                                      // with the degree-sum convention ρ(S) = W(S)/|S| where W counts each edge
                                      // twice, the classical construction's `2g` becomes exactly `guess`.
    }
    for (u, v, w) in view.edges() {
        net.add_undirected_edge(u as usize, v as usize, w);
    }
    let cut = net.max_flow(source, sink);
    if cut >= degree_sum - 1e-9 * degree_sum.max(1.0) {
        return None;
    }
    let side = net.min_cut_source_side(source);
    let subset: Vec<VertexId> = side
        .into_iter()
        .filter(|&v| v < n)
        .map(|v| v as VertexId)
        .collect();
    if subset.is_empty() {
        None
    } else {
        Some(subset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn brute_force_densest(g: &SignedGraph) -> (Vec<VertexId>, Weight) {
        let n = g.num_vertices();
        // u64 masks: `1 << n` / `1 << v` on a u32 silently overflows for n >= 32.
        debug_assert!(n < 64, "brute-force subset masks are u64");
        assert!(n <= 16, "exponential brute force is for tiny graphs only");
        let mut best: (Vec<VertexId>, Weight) = (vec![0], 0.0);
        for mask in 1u64..(1u64 << n) {
            let subset: Vec<VertexId> =
                (0..n as u32).filter(|&v| mask & (1u64 << v) != 0).collect();
            let d = g.average_degree(&subset);
            if d > best.1 {
                best = (subset, d);
            }
        }
        best
    }

    #[test]
    fn clique_with_tail_exact() {
        let mut b = GraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(3, 4, 0.5);
        b.add_edge(4, 5, 0.5);
        b.add_edge(5, 6, 0.5);
        b.add_edge(6, 7, 0.5);
        let g = b.build();
        let exact = densest_subgraph_exact(&g);
        assert_eq!(exact.subset, vec![0, 1, 2, 3]);
        assert!((exact.average_degree - 3.0).abs() < 1e-6);
    }

    #[test]
    fn matches_brute_force_on_small_graphs() {
        // A handful of deterministic small weighted graphs.
        let cases: Vec<Vec<(u32, u32, f64)>> = vec![
            vec![(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0), (2, 3, 1.0)],
            vec![
                (0, 1, 5.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 0, 1.0),
                (1, 3, 2.0),
            ],
            vec![
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (1, 2, 1.0),
                (1, 3, 1.0),
                (2, 3, 1.0),
                (4, 5, 3.5),
            ],
        ];
        for edges in cases {
            let n = edges
                .iter()
                .map(|&(u, v, _)| u.max(v) as usize + 1)
                .max()
                .unwrap();
            let g = GraphBuilder::from_edges(n, edges);
            let exact = densest_subgraph_exact(&g);
            let (brute_set, brute_density) = brute_force_densest(&g);
            assert!(
                (exact.average_degree - brute_density).abs() < 1e-6,
                "exact {} vs brute {brute_density} (set {brute_set:?})",
                exact.average_degree
            );
        }
    }

    #[test]
    fn greedy_is_within_factor_two() {
        let mut b = GraphBuilder::new(12);
        // Two overlapping communities with different weights.
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        for u in 5..10u32 {
            for v in (u + 1)..10u32 {
                b.add_edge(u, v, 2.0);
            }
        }
        b.add_edge(10, 11, 0.5);
        let g = b.build();
        let exact = densest_subgraph_exact(&g);
        let greedy = crate::charikar::greedy_peeling(&g);
        assert!(greedy.average_degree >= exact.average_degree / 2.0 - 1e-9);
        assert!(greedy.average_degree <= exact.average_degree + 1e-9);
    }

    #[test]
    fn edgeless_and_empty() {
        let exact = densest_subgraph_exact(&SignedGraph::empty(4));
        assert_eq!(exact.average_degree, 0.0);
        assert_eq!(exact.subset, vec![0]);
        let exact = densest_subgraph_exact(&SignedGraph::empty(0));
        assert!(exact.subset.is_empty());
    }

    #[test]
    fn interruptible_search_returns_best_so_far() {
        let mut b = GraphBuilder::new(6);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(4, 5, 0.25);
        let g = b.build();
        // A couple of rounds are enough to certify *some* non-empty subgraph.
        let mut rounds = 0u64;
        let (partial, interrupted) = densest_subgraph_exact_until(&g, |_| {
            rounds += 1;
            rounds > 3
        });
        assert!(interrupted);
        assert!(!partial.subset.is_empty());
        assert!((g.average_degree(&partial.subset) - partial.average_degree).abs() < 1e-9);
        // Uninterrupted: identical to the plain call.
        let (full, interrupted) = densest_subgraph_exact_until(&g, |_| false);
        assert!(!interrupted);
        assert_eq!(full, densest_subgraph_exact(&g));
    }

    #[test]
    fn view_search_with_reused_arena_matches_exact() {
        use dcs_graph::{GraphView, VertexMask};
        let mut b = GraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(3, 4, 0.5);
        b.add_edge(4, 5, 0.5);
        b.add_edge(5, 6, -2.0); // filtered by the positive view
        b.add_edge(6, 7, 3.5);
        let g = b.build();
        let mut net = FlowNetwork::new(0);

        // Positive view == materialised positive part, arena reused across solves.
        let (of_view, _) =
            densest_subgraph_view_until(GraphView::full(&g).positive_part(), &mut net, |_| false);
        assert_eq!(of_view, densest_subgraph_exact(&g.positive_part()));

        // Masked positive view == induced-then-filtered materialisation (ids mapped).
        let mut mask = VertexMask::full(8);
        mask.remove_all(&[6, 7]);
        let view = GraphView::masked(&g, &mask).positive_part();
        let (masked, _) = densest_subgraph_view_until(view, &mut net, |_| false);
        let alive: Vec<u32> = mask.iter().collect();
        let (induced, back) = g.positive_part().induced_subgraph(&alive);
        let of_induced = densest_subgraph_exact(&induced);
        let mapped: Vec<u32> = of_induced
            .subset
            .iter()
            .map(|&v| back[v as usize])
            .collect();
        assert_eq!(masked.subset, mapped);
        assert!((masked.average_degree - of_induced.average_degree).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let g = GraphBuilder::from_edges(2, vec![(0, 1, -1.0)]);
        densest_subgraph_exact(&g);
    }
}

//! Subgraph embeddings on the standard simplex and the graph-affinity objective.
//!
//! A subgraph embedding is a vector `x ∈ Δn = {x | Σ xᵢ = 1, xᵢ ≥ 0}`; the entry `x_u`
//! is the participation of vertex `u` in the subgraph and the *support set*
//! `S_x = {u | x_u > 0}` is the subgraph itself.  The graph affinity of an embedding is
//! `f(x) = xᵀAx = Σ_{u,v} x_u x_v A(u,v)` (both orientations of every edge contribute,
//! matching Eq. 2 of the paper).
//!
//! [`Embedding`] stores only the non-zero entries, because the algorithms of the paper
//! keep supports small (that is the main reason graph affinity is preferred for
//! story/topic mining).

use rustc_hash::FxHashMap;

use dcs_graph::{GraphView, SignedGraph, VertexId, Weight};

/// A sparse embedding on the standard simplex `Δn`.
///
/// Invariants maintained by the constructors: all stored values are strictly positive and
/// sum to 1 (within floating-point tolerance).  An *empty* embedding (no support) is
/// allowed and represents "no subgraph"; its affinity is 0.
#[derive(Debug, Clone, Default)]
pub struct Embedding {
    values: FxHashMap<VertexId, f64>,
}

impl Embedding {
    /// The embedding `e_u`: all mass on a single vertex.
    pub fn singleton(u: VertexId) -> Self {
        let mut values = FxHashMap::default();
        values.insert(u, 1.0);
        Embedding { values }
    }

    /// The uniform embedding on a set of vertices (each gets `1/|S|`).
    ///
    /// Returns an empty embedding if the slice is empty.  Duplicate vertices are merged.
    pub fn uniform(subset: &[VertexId]) -> Self {
        let mut values = FxHashMap::default();
        if subset.is_empty() {
            return Embedding { values };
        }
        for &v in subset {
            values.insert(v, 0.0);
        }
        let share = 1.0 / values.len() as f64;
        for v in values.values_mut() {
            *v = share;
        }
        Embedding { values }
    }

    /// Builds an embedding from `(vertex, weight)` pairs, dropping non-positive entries
    /// and normalising the rest to sum to 1.  Returns an empty embedding if nothing
    /// positive remains.
    pub fn from_weights<I: IntoIterator<Item = (VertexId, f64)>>(pairs: I) -> Self {
        let mut values: FxHashMap<VertexId, f64> = FxHashMap::default();
        for (v, w) in pairs {
            if w > 0.0 {
                *values.entry(v).or_insert(0.0) += w;
            }
        }
        let total: f64 = values.values().sum();
        if total <= 0.0 {
            return Embedding::default();
        }
        for v in values.values_mut() {
            *v /= total;
        }
        Embedding { values }
    }

    /// The value `x_u` (0 if `u` is outside the support).
    #[inline]
    pub fn get(&self, u: VertexId) -> f64 {
        self.values.get(&u).copied().unwrap_or(0.0)
    }

    /// Number of vertices in the support set.
    pub fn support_size(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the embedding has empty support.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The support set `S_x = {u | x_u > 0}`, sorted ascending.
    pub fn support(&self) -> Vec<VertexId> {
        let mut s: Vec<VertexId> = self.values.keys().copied().collect();
        s.sort_unstable();
        s
    }

    /// Iterates `(vertex, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        self.values.iter().map(|(&v, &x)| (v, x))
    }

    /// Sum of the entries (should be ~1 unless the embedding is empty).
    pub fn mass(&self) -> f64 {
        self.values.values().sum()
    }

    /// Graph affinity `f(x) = xᵀAx` with respect to `graph`.
    pub fn affinity(&self, graph: &SignedGraph) -> Weight {
        let mut total = 0.0;
        for (&u, &xu) in &self.values {
            for e in graph.neighbors(u) {
                if let Some(&xv) = self.values.get(&e.neighbor) {
                    total += xu * xv * e.weight;
                }
            }
        }
        total
    }

    /// The gradient component `∇_u f(x) = 2(Ax)_u` for a single vertex.
    pub fn gradient_at(&self, graph: &SignedGraph, u: VertexId) -> Weight {
        2.0 * self.weighted_sum_at(graph, u)
    }

    /// `(Ax)_u = Σ_v A(u,v)·x_v`.
    pub fn weighted_sum_at(&self, graph: &SignedGraph, u: VertexId) -> Weight {
        let mut s = 0.0;
        for e in graph.neighbors(u) {
            if let Some(&xv) = self.values.get(&e.neighbor) {
                s += e.weight * xv;
            }
        }
        s
    }

    /// [`Self::affinity`] over a [`GraphView`]'s surviving edges: term for term the
    /// affinity on the view's materialisation.  Shared by the expansion candidates
    /// of the SEA solvers and the view-based KKT oracle.
    pub fn affinity_view(&self, view: GraphView<'_>) -> Weight {
        self.values
            .iter()
            .map(|(&u, &xu)| xu * self.weighted_sum_at_view(view, u))
            .sum()
    }

    /// [`Self::weighted_sum_at`] over a [`GraphView`]'s surviving edges.
    pub fn weighted_sum_at_view(&self, view: GraphView<'_>, u: VertexId) -> Weight {
        let mut s = 0.0;
        for e in view.neighbors(u) {
            if let Some(&xv) = self.values.get(&e.neighbor) {
                s += e.weight * xv;
            }
        }
        s
    }

    /// Sets `x_u` to `value` (removing the entry when `value <= 0`) **without**
    /// renormalising.  Callers are responsible for keeping the simplex invariant; the
    /// iterative algorithms move mass between coordinates so the sum is conserved.
    pub fn set(&mut self, u: VertexId, value: f64) {
        if value > 0.0 {
            self.values.insert(u, value);
        } else {
            self.values.remove(&u);
        }
    }

    /// Rescales all entries so they sum to 1 (no-op on an empty embedding).
    pub fn normalize(&mut self) {
        let total: f64 = self.values.values().sum();
        if total > 0.0 {
            for v in self.values.values_mut() {
                *v /= total;
            }
        }
    }

    /// Removes entries below `threshold` and renormalises.  Used to clean up numerical
    /// dust after iterative updates.
    pub fn prune(&mut self, threshold: f64) {
        self.values.retain(|_, v| *v >= threshold);
        self.normalize();
    }

    /// Average degree `W(S_x)/|S_x|` of the support set in `graph` — the paper reports
    /// this alongside the affinity for DCSGA solutions.
    pub fn support_average_degree(&self, graph: &SignedGraph) -> Weight {
        graph.average_degree(&self.support())
    }

    /// Edge density `W(S_x)/|S_x|²` of the support set in `graph`.
    pub fn support_edge_density(&self, graph: &SignedGraph) -> Weight {
        graph.edge_density(&self.support())
    }
}

/// A **dense, indexed** simplex embedding used as reusable solver scratch.
///
/// Where [`Embedding`] stores only the non-zero entries in an `FxHashMap` (the right
/// shape for *results*, whose supports are small), the iterative DCSGA kernels touch
/// their working embedding on every coordinate-descent step — and a fresh hash map
/// per solve is exactly the allocation the steady-state serving paths want to avoid.
/// A `DenseEmbedding` keeps one `f64` slot per vertex of the universe plus a
/// *touched list* of slots that may be non-zero, so
///
/// * reads and writes are direct array indexing,
/// * [`DenseEmbedding::begin`] resets in `O(|touched|)` (not `O(n)`), and
/// * re-solving on a same-sized universe allocates nothing.
///
/// Invariant: every slot outside `touched` holds `0.0`.  The touched list may
/// contain duplicates and zero-valued slots (a coordinate that gained and then lost
/// its mass); [`DenseEmbedding::support_into`] filters and sorts.  Solver
/// boundaries convert to and from the sparse [`Embedding`] by iterating one
/// representation and writing the other ([`DenseEmbedding::set`] /
/// [`Embedding::from_weights`] over the sorted support).
#[derive(Debug, Clone, Default)]
pub struct DenseEmbedding {
    values: Vec<f64>,
    touched: Vec<VertexId>,
}

impl DenseEmbedding {
    /// Resets to the empty embedding over an `n`-vertex universe, reusing storage.
    pub fn begin(&mut self, n: usize) {
        for &v in &self.touched {
            self.values[v as usize] = 0.0;
        }
        self.touched.clear();
        if self.values.len() < n {
            self.values.resize(n, 0.0);
        }
    }

    /// The value `x_u` (0 outside the support).
    #[inline]
    pub fn get(&self, u: VertexId) -> f64 {
        self.values[u as usize]
    }

    /// Sets `x_u` (non-positive values clear the slot), mirroring [`Embedding::set`].
    #[inline]
    pub fn set(&mut self, u: VertexId, value: f64) {
        let slot = &mut self.values[u as usize];
        if value > 0.0 {
            if *slot == 0.0 {
                self.touched.push(u);
            }
            *slot = value;
        } else {
            *slot = 0.0;
        }
    }

    /// Writes the support set `{u | x_u > 0}` into `out`, sorted ascending.
    pub fn support_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(
            self.touched
                .iter()
                .copied()
                .filter(|&v| self.values[v as usize] > 0.0),
        );
        out.sort_unstable();
        out.dedup();
    }
}

impl PartialEq for Embedding {
    /// Two embeddings are equal when they have the same support and the same values up to
    /// 1e-9 (useful in tests; not a strict numerical identity).
    fn eq(&self, other: &Self) -> bool {
        if self.values.len() != other.values.len() {
            return false;
        }
        self.values
            .iter()
            .all(|(v, x)| (other.get(*v) - x).abs() < 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn triangle() -> SignedGraph {
        GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
    }

    #[test]
    fn singleton_and_uniform() {
        let e = Embedding::singleton(2);
        assert_eq!(e.get(2), 1.0);
        assert_eq!(e.get(0), 0.0);
        assert_eq!(e.support(), vec![2]);

        let u = Embedding::uniform(&[0, 1, 2]);
        assert!((u.get(0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((u.mass() - 1.0).abs() < 1e-12);

        let dup = Embedding::uniform(&[1, 1, 2]);
        assert_eq!(dup.support_size(), 2);
        assert!((dup.get(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn affinity_of_uniform_clique() {
        // Motzkin–Straus: uniform embedding on a k-clique has affinity (k-1)/k.
        let g = triangle();
        let x = Embedding::uniform(&[0, 1, 2]);
        assert!((x.affinity(&g) - 2.0 / 3.0).abs() < 1e-12);
        // A single edge {0,1} uniform: affinity = 2 * 0.5 * 0.5 * 1 = 0.5
        let x = Embedding::uniform(&[0, 1]);
        assert!((x.affinity(&g) - 0.5).abs() < 1e-12);
        // Singleton: affinity 0
        assert_eq!(Embedding::singleton(0).affinity(&g), 0.0);
    }

    #[test]
    fn gradient_matches_definition() {
        let g = triangle();
        let x = Embedding::uniform(&[0, 1]);
        // (Ax)_2 = 0.5*1 + 0.5*1 = 1 → ∇_2 = 2
        assert!((x.weighted_sum_at(&g, 2) - 1.0).abs() < 1e-12);
        assert!((x.gradient_at(&g, 2) - 2.0).abs() < 1e-12);
        // (Ax)_0 = x_1 * 1 = 0.5
        assert!((x.gradient_at(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_weights_normalises_and_drops_nonpositive() {
        let x = Embedding::from_weights(vec![(0, 2.0), (1, 2.0), (2, -1.0), (3, 0.0)]);
        assert_eq!(x.support(), vec![0, 1]);
        assert!((x.get(0) - 0.5).abs() < 1e-12);
        let empty = Embedding::from_weights(vec![(0, -1.0)]);
        assert!(empty.is_empty());
        assert_eq!(empty.affinity(&triangle()), 0.0);
    }

    #[test]
    fn set_prune_normalize() {
        let mut x = Embedding::uniform(&[0, 1, 2]);
        x.set(2, 0.0);
        assert_eq!(x.support(), vec![0, 1]);
        x.normalize();
        assert!((x.mass() - 1.0).abs() < 1e-12);
        let mut y = Embedding::from_weights(vec![(0, 1.0), (1, 1e-15)]);
        y.prune(1e-9);
        assert_eq!(y.support(), vec![0]);
        assert!((y.mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_metrics() {
        let g = triangle();
        let x = Embedding::uniform(&[0, 1, 2]);
        assert!((x.support_average_degree(&g) - 2.0).abs() < 1e-12);
        assert!((x.support_edge_density(&g) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dense_embedding_set_support_and_reset() {
        let mut dense = DenseEmbedding::default();
        dense.begin(5);
        dense.set(3, 2.0);
        dense.set(1, 2.0);
        dense.set(1, 0.0); // dropped again
        dense.set(4, 6.0);
        let mut support = Vec::new();
        dense.support_into(&mut support);
        assert_eq!(support, vec![3, 4]);
        assert_eq!(dense.get(1), 0.0);
        // begin() clears every previously touched slot.
        dense.begin(5);
        dense.set(0, 0.5);
        dense.set(2, 0.5);
        dense.support_into(&mut support);
        assert_eq!(support, vec![0, 2]);
        assert_eq!(dense.get(3), 0.0);
        assert_eq!(dense.get(4), 0.0);
        // A re-gained slot does not duplicate in the support.
        dense.set(0, 0.0);
        dense.set(0, 0.5);
        dense.support_into(&mut support);
        assert_eq!(support, vec![0, 2]);
    }

    #[test]
    fn negative_weights_in_affinity() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 2.0), (1, 2, -4.0)]);
        let x = Embedding::uniform(&[0, 1, 2]);
        // f = 2*(1/9)*2 + 2*(1/9)*(-4) = (4 - 8)/9
        assert!((x.affinity(&g) - (-4.0 / 9.0)).abs() < 1e-12);
    }
}

//! Replicator dynamics — the shrink-stage iteration of the original SEA algorithm.
//!
//! For a **non-negative** symmetric affinity matrix `A`, the replicator equation
//!
//! ```text
//!   x_i(t+1) = x_i(t) · (Ax)_i / (xᵀAx)
//! ```
//!
//! keeps `x` on the simplex and never decreases `f(x) = xᵀAx` (it is a special case of
//! the Baum–Eagon inequality).  The iteration is only defined when `xᵀAx > 0` and only
//! converges for non-negative matrices — this is exactly why the paper replaces it with
//! the 2-coordinate-descent shrink when the difference graph carries negative weights.

use dcs_graph::{SignedGraph, VertexId, Weight};

use crate::simplex::Embedding;

/// Stopping rule for [`replicator_dynamics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicatorStop {
    /// Stop when the objective improves by less than `eps` in one iteration.
    ///
    /// This is the (loose) rule used by the original SEA implementation; the paper shows
    /// it may stop before a local KKT point is reached, causing errors in the following
    /// expansion stage.
    ObjectiveImprovement {
        /// Minimum objective improvement per iteration.
        eps: f64,
    },
    /// Stop when the local KKT gap
    /// `max_{k∈S, x_k<1} ∇_k f(x) − min_{k∈S, x_k>0} ∇_k f(x)` drops below `eps`.
    KktGap {
        /// Maximum allowed KKT gap.
        eps: f64,
    },
}

/// Outcome of a replicator-dynamics run.
#[derive(Debug, Clone)]
pub struct ReplicatorOutcome {
    /// Final embedding.
    pub embedding: Embedding,
    /// Final objective `f(x)`.
    pub objective: Weight,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the stopping rule was satisfied (as opposed to hitting `max_iters`).
    pub converged: bool,
}

/// Runs replicator dynamics on the support of `x0`, restricted to graph `g`.
///
/// `g` must have non-negative weights on the support of `x0` (weights outside the support
/// are never touched).  Vertices never enter the support: if `x_i(0) = 0` then
/// `x_i(t) = 0` forever, which is why SEA needs an expansion stage at all.
pub fn replicator_dynamics(
    g: &SignedGraph,
    x0: &Embedding,
    stop: ReplicatorStop,
    max_iters: usize,
) -> ReplicatorOutcome {
    let mut x = x0.clone();
    let support: Vec<VertexId> = x.support();
    debug_assert!(
        support.iter().all(|&u| {
            g.neighbors(u)
                .all(|e| e.weight >= 0.0 || x.get(e.neighbor) == 0.0)
        }),
        "replicator dynamics requires non-negative weights on the support"
    );

    let mut objective = x.affinity(g);
    if objective <= 0.0 || support.len() <= 1 {
        // Fixed point (or undefined update); a singleton support is always a local KKT
        // point on its own support.
        return ReplicatorOutcome {
            embedding: x,
            objective: objective.max(0.0),
            iterations: 0,
            converged: true,
        };
    }

    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iters {
        iterations += 1;
        // Compute (Ax)_i for i in support.
        let mut ax: Vec<(VertexId, f64)> = Vec::with_capacity(support.len());
        for &u in &support {
            if x.get(u) == 0.0 {
                continue;
            }
            ax.push((u, x.weighted_sum_at(g, u)));
        }
        let f = objective;
        // Update.
        for &(u, axu) in &ax {
            let xu = x.get(u);
            if xu > 0.0 {
                x.set(u, xu * axu / f);
            }
        }
        // Numerical safety: renormalise drift.
        x.normalize();
        let new_objective = x.affinity(g);

        let stop_now = match stop {
            ReplicatorStop::ObjectiveImprovement { eps } => new_objective - objective <= eps,
            ReplicatorStop::KktGap { eps } => kkt_gap_on_support(g, &x) <= eps,
        };
        objective = new_objective;
        if stop_now {
            converged = true;
            break;
        }
    }

    ReplicatorOutcome {
        embedding: x,
        objective,
        iterations,
        converged,
    }
}

/// The local KKT gap on the support of `x`:
/// `max_{k ∈ S_x} ∇_k f(x) − min_{k ∈ S_x, x_k > 0} ∇_k f(x)` (0 if the support has at
/// most one vertex).
pub fn kkt_gap_on_support(g: &SignedGraph, x: &Embedding) -> f64 {
    let support = x.support();
    if support.len() <= 1 {
        return 0.0;
    }
    let mut max_grad = f64::NEG_INFINITY;
    let mut min_grad_pos = f64::INFINITY;
    for &u in &support {
        let grad = x.gradient_at(g, u);
        let xu = x.get(u);
        if xu < 1.0 {
            max_grad = max_grad.max(grad);
        }
        if xu > 0.0 {
            min_grad_pos = min_grad_pos.min(grad);
        }
    }
    if max_grad == f64::NEG_INFINITY || min_grad_pos == f64::INFINITY {
        0.0
    } else {
        (max_grad - min_grad_pos).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn k4() -> SignedGraph {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.build()
    }

    #[test]
    fn converges_to_motzkin_straus_on_clique() {
        // On K4 the maximiser is the uniform vector with value 1 - 1/4 = 0.75; starting
        // from a skewed interior point the replicator converges there.
        let g = k4();
        let x0 = Embedding::from_weights(vec![(0, 0.4), (1, 0.3), (2, 0.2), (3, 0.1)]);
        let out = replicator_dynamics(&g, &x0, ReplicatorStop::KktGap { eps: 1e-10 }, 10_000);
        assert!(out.converged);
        assert!((out.objective - 0.75).abs() < 1e-6);
        for v in 0..4u32 {
            assert!((out.embedding.get(v) - 0.25).abs() < 1e-4);
        }
    }

    #[test]
    fn objective_never_decreases() {
        let g = GraphBuilder::from_edges(
            5,
            vec![
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 3.0),
                (3, 4, 1.0),
                (0, 2, 1.5),
                (1, 3, 0.5),
            ],
        );
        let x0 = Embedding::uniform(&[0, 1, 2, 3, 4]);
        let mut prev = x0.affinity(&g);
        let mut x = x0;
        for _ in 0..50 {
            let out = replicator_dynamics(
                &g,
                &x,
                ReplicatorStop::ObjectiveImprovement { eps: -1.0 }, // force exactly 1 step
                1,
            );
            assert!(out.objective >= prev - 1e-12);
            prev = out.objective;
            x = out.embedding;
        }
    }

    #[test]
    fn zero_objective_is_fixed_point() {
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0)]);
        let x0 = Embedding::singleton(2);
        let out = replicator_dynamics(&g, &x0, ReplicatorStop::KktGap { eps: 1e-9 }, 100);
        assert_eq!(out.iterations, 0);
        assert!(out.converged);
        assert_eq!(out.objective, 0.0);
    }

    #[test]
    fn loose_stop_may_miss_kkt() {
        // A path graph: start from a point where the objective improves very slowly; the
        // objective-improvement rule stops early, leaving a positive KKT gap.
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let x0 = Embedding::from_weights(vec![(0, 0.49), (1, 0.02), (2, 0.49)]);
        let loose = replicator_dynamics(
            &g,
            &x0,
            ReplicatorStop::ObjectiveImprovement { eps: 1e-6 },
            10_000,
        );
        let strict = replicator_dynamics(&g, &x0, ReplicatorStop::KktGap { eps: 1e-9 }, 100_000);
        assert!(strict.objective >= loose.objective - 1e-12);
        // The strict rule actually reaches a local KKT point.
        assert!(strict.converged);
        assert!(kkt_gap_on_support(&g, &strict.embedding) <= 1e-9);
    }

    #[test]
    fn kkt_gap_zero_on_singleton() {
        let g = k4();
        assert_eq!(kkt_gap_on_support(&g, &Embedding::singleton(1)), 0.0);
    }
}

//! Optimal quasi-clique extraction (Tsourakakis et al., KDD 2013).
//!
//! The DCS paper relates its α-scaled difference graph (Section III-D) to the *optimal
//! α-quasi-clique* problem, which maximises the **edge surplus**
//!
//! ```text
//! f_α(S) = w(E(S)) − α · |S|(|S|−1)/2
//! ```
//!
//! i.e. the total induced edge weight minus α times the number of vertex pairs.  Unlike
//! the average degree, this objective explicitly rewards near-clique structure, so it is
//! a useful comparison point between the paper's two density measures: it sits between
//! DCSAD (which favours large subgraphs) and DCSGA (whose optimum is a positive clique).
//!
//! Two standard heuristics are implemented, following the original paper:
//!
//! * [`greedy_quasi_clique`] — peel the vertex of minimum weighted degree, keep the best
//!   prefix by edge surplus (the `GreedyOQC` algorithm), and
//! * [`local_search_quasi_clique`] — iterated add/remove passes from a seed subset
//!   (the `LocalSearchOQC` algorithm), which never returns a worse subset than its seed.
//!
//! Both accept signed graphs; on a difference graph they optimise the *contrast* edge
//! surplus, which is how the ablation benches use them.

use dcs_graph::{SignedGraph, VertexId, VertexSubset, Weight};

use crate::peel::{LazyHeapQueue, MinDegreeQueue};

/// Result of a quasi-clique search.
#[derive(Debug, Clone, PartialEq)]
pub struct QuasiCliqueResult {
    /// The selected vertices, sorted ascending.
    pub subset: Vec<VertexId>,
    /// The edge surplus `w(E(S)) − α·|S|(|S|−1)/2` of the subset.
    pub edge_surplus: Weight,
    /// The induced total edge weight `w(E(S))` (each undirected edge counted once).
    pub total_edge_weight: Weight,
    /// The α used for the search.
    pub alpha: Weight,
}

impl QuasiCliqueResult {
    fn for_subset(g: &SignedGraph, subset: Vec<VertexId>, alpha: Weight) -> Self {
        let total_edge_weight = g.total_edge_weight(&subset);
        QuasiCliqueResult {
            edge_surplus: edge_surplus(total_edge_weight, subset.len(), alpha),
            total_edge_weight,
            subset,
            alpha,
        }
    }

    /// The fraction of present pair weight relative to a full unit-weight clique,
    /// `w(E(S)) / (|S|(|S|−1)/2)`; `0` for subsets smaller than two vertices.
    pub fn clique_ratio(&self) -> Weight {
        let pairs = pair_count(self.subset.len());
        if pairs == 0.0 {
            0.0
        } else {
            self.total_edge_weight / pairs
        }
    }
}

fn pair_count(size: usize) -> Weight {
    (size as Weight) * (size.saturating_sub(1) as Weight) / 2.0
}

fn edge_surplus(total_edge_weight: Weight, size: usize, alpha: Weight) -> Weight {
    total_edge_weight - alpha * pair_count(size)
}

/// `GreedyOQC`: peel the minimum-weighted-degree vertex, keep the best prefix by edge
/// surplus.
///
/// Runs in `O((n + m) log n)` like ordinary greedy peeling.  A single vertex has surplus
/// `0`, so the returned surplus is never negative.
pub fn greedy_quasi_clique(g: &SignedGraph, alpha: Weight) -> QuasiCliqueResult {
    let n = g.num_vertices();
    if n == 0 {
        return QuasiCliqueResult {
            subset: Vec::new(),
            edge_surplus: 0.0,
            total_edge_weight: 0.0,
            alpha,
        };
    }

    let degrees: Vec<Weight> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    // Total *edge* weight of the current prefix (each edge once): half the degree sum.
    let mut total_edge_weight: Weight = degrees.iter().sum::<Weight>() / 2.0;
    let mut queue = LazyHeapQueue::from_degrees(&degrees);
    let mut alive = vec![true; n];
    let mut alive_count = n;

    let mut best_size = n;
    let mut best_surplus = edge_surplus(total_edge_weight, n, alpha);
    let mut removal_order: Vec<VertexId> = Vec::with_capacity(n);

    while alive_count > 1 {
        let (v, degree) = queue
            .pop_min()
            .expect("queue holds every vertex that is still alive");
        alive[v as usize] = false;
        alive_count -= 1;
        removal_order.push(v);
        total_edge_weight -= degree;
        for e in g.neighbors(v) {
            if alive[e.neighbor as usize] {
                queue.adjust(e.neighbor, -e.weight);
            }
        }
        let surplus = edge_surplus(total_edge_weight, alive_count, alpha);
        if surplus > best_surplus {
            best_surplus = surplus;
            best_size = alive_count;
        }
    }

    // Reconstruct the best prefix: all vertices except the first `n - best_size` removed.
    let mut subset: Vec<VertexId> = (0..n as VertexId).collect();
    let removed: VertexSubset = VertexSubset::from_slice(n, &removal_order[..n - best_size]);
    subset.retain(|&v| !removed.contains(v));
    QuasiCliqueResult::for_subset(g, subset, alpha)
}

/// `LocalSearchOQC`: hill-climb the edge surplus from a seed subset by repeatedly adding
/// the best outside vertex or dropping the worst inside vertex until no single move
/// improves the objective (or `max_passes` full passes were made).
///
/// The returned subset never has a smaller edge surplus than the seed.
pub fn local_search_quasi_clique(
    g: &SignedGraph,
    alpha: Weight,
    seed: &[VertexId],
    max_passes: usize,
) -> QuasiCliqueResult {
    let n = g.num_vertices();
    let mut members = VertexSubset::from_slice(n, seed);
    if members.is_empty() && n > 0 {
        // An empty seed would never grow (adding to an empty set changes surplus by 0),
        // so seed with the heaviest edge instead.
        if let Some((u, v, _)) = g.max_weight_edge() {
            members.insert(u);
            members.insert(v);
        }
    }

    for _ in 0..max_passes {
        let mut improved = false;

        // Addition pass: adding v changes the surplus by deg_S(v) − α·|S|.
        for v in 0..n as VertexId {
            if members.contains(v) {
                continue;
            }
            let gain = g.weighted_degree_in(v, &members) - alpha * members.len() as Weight;
            if gain > 1e-12 {
                members.insert(v);
                improved = true;
            }
        }

        // Removal pass: removing v changes the surplus by α·(|S|−1) − deg_S(v).
        for v in members.to_sorted_vec() {
            if members.len() <= 1 {
                break;
            }
            let gain = alpha * (members.len() as Weight - 1.0) - g.weighted_degree_in(v, &members);
            if gain > 1e-12 {
                members.remove(v);
                improved = true;
            }
        }

        if !improved {
            break;
        }
    }

    QuasiCliqueResult::for_subset(g, members.into_sorted_vec(), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// A 5-clique (unit weights) with a sparse tail attached.
    fn clique_with_tail() -> SignedGraph {
        let mut b = GraphBuilder::new(9);
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(4, 5, 1.0);
        b.add_edge(5, 6, 1.0);
        b.add_edge(6, 7, 1.0);
        b.add_edge(7, 8, 1.0);
        b.build()
    }

    #[test]
    fn surplus_arithmetic() {
        assert_eq!(pair_count(0), 0.0);
        assert_eq!(pair_count(1), 0.0);
        assert_eq!(pair_count(4), 6.0);
        assert_eq!(edge_surplus(10.0, 4, 0.5), 7.0);
    }

    #[test]
    fn greedy_extracts_the_planted_clique() {
        let g = clique_with_tail();
        let result = greedy_quasi_clique(&g, 1.0 / 3.0);
        assert_eq!(result.subset, vec![0, 1, 2, 3, 4]);
        // 10 edges − (1/3)·10 pairs.
        assert!((result.edge_surplus - (10.0 - 10.0 / 3.0)).abs() < 1e-9);
        assert!((result.clique_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_controls_the_size() {
        let g = clique_with_tail();
        // With a tiny α the whole (connected) graph has the best surplus…
        let loose = greedy_quasi_clique(&g, 0.01);
        // …with a large α only the densest core survives.
        let strict = greedy_quasi_clique(&g, 0.9);
        assert!(loose.subset.len() >= strict.subset.len());
        assert!(strict.subset.len() >= 2);
        assert!(strict.clique_ratio() > 0.8);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let empty = SignedGraph::empty(0);
        let r = greedy_quasi_clique(&empty, 0.5);
        assert!(r.subset.is_empty());
        assert_eq!(r.edge_surplus, 0.0);

        let single = SignedGraph::empty(1);
        let r = greedy_quasi_clique(&single, 0.5);
        assert_eq!(r.subset.len(), 1);
        assert_eq!(r.edge_surplus, 0.0);
    }

    #[test]
    fn greedy_never_returns_negative_surplus() {
        // A graph with only a negative edge: the best subset is a single vertex.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, -5.0)]);
        let r = greedy_quasi_clique(&g, 0.5);
        assert!(r.edge_surplus >= 0.0);
        assert!(r.subset.len() <= 1 || r.total_edge_weight >= 0.0);
    }

    #[test]
    fn local_search_improves_a_poor_seed() {
        let g = clique_with_tail();
        // Seed with a tail vertex only; local search should grow into the clique region
        // and never end up worse than the seed.
        let seed = vec![7u32];
        let seed_surplus = edge_surplus(g.total_edge_weight(&seed), seed.len(), 1.0 / 3.0);
        let result = local_search_quasi_clique(&g, 1.0 / 3.0, &seed, 50);
        assert!(result.edge_surplus >= seed_surplus - 1e-9);
        assert!(result.subset.len() >= 2);
    }

    #[test]
    fn local_search_with_empty_seed_uses_heaviest_edge() {
        let g = clique_with_tail();
        let result = local_search_quasi_clique(&g, 1.0 / 3.0, &[], 50);
        assert!(result.subset.len() >= 2);
        assert!(result.edge_surplus > 0.0);
    }

    #[test]
    fn local_search_refines_the_greedy_answer_on_signed_graphs() {
        // Difference-graph style input: a positive near-clique plus negative edges.
        let mut b = GraphBuilder::new(8);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                if (u, v) != (2, 3) {
                    b.add_edge(u, v, 2.0);
                }
            }
        }
        b.add_edge(3, 4, -3.0);
        b.add_edge(4, 5, 1.0);
        let g = b.build();

        let greedy = greedy_quasi_clique(&g, 0.5);
        let refined = local_search_quasi_clique(&g, 0.5, &greedy.subset, 50);
        assert!(refined.edge_surplus >= greedy.edge_surplus - 1e-9);
        // Vertices incident only to the negative edge must not be selected.
        assert!(!refined.subset.contains(&4) || refined.total_edge_weight > 0.0);
    }
}

//! The original SEA algorithm (Liu et al., TPAMI 2013): Shrink-and-ExpAnsion for the
//! graph-affinity maximisation `max_{x∈Δn} xᵀAx` on non-negatively weighted graphs.
//!
//! This is the `SEA` part of the paper's `SEA+Refine` comparator (Tables VII, Fig. 2):
//!
//! * **Shrink** — replicator dynamics on the current support, stopped with the *loose*
//!   objective-improvement rule `f(x) − f(x_old) ≤ ε` used by the original
//!   implementation (configurable; the paper shows this rule may stop short of a local
//!   KKT point).
//! * **Expansion** — the step of [`crate::expansion`], adding every vertex whose gradient
//!   exceeds `λ = 2f(x)`.
//! * The outer loop repeats until no candidate remains; the algorithm is run once per
//!   initial vertex (`x = e_u` for every `u ∈ V`), exactly as in the original paper.
//!
//! Expansion errors (objective decreasing after an expansion because the shrink had not
//! reached a local KKT point) are counted and reported; this is the quantity plotted in
//! Fig. 2(b).

use dcs_graph::{SignedGraph, VertexId, Weight};

use crate::expansion::{expansion_candidates, expansion_step};
use crate::replicator::{replicator_dynamics, ReplicatorStop};
use crate::simplex::Embedding;

/// Configuration of the original SEA algorithm.
#[derive(Debug, Clone, Copy)]
pub struct SeaConfig {
    /// Stopping rule of the shrink stage.  The original implementation (and the paper's
    /// `SEA+Refine` runs) use `ObjectiveImprovement { eps: 1e-6 }`.
    pub shrink_stop: ReplicatorStop,
    /// Maximum replicator iterations per shrink stage.
    pub shrink_max_iters: usize,
    /// Tolerance when selecting expansion candidates (`∇_i > λ + tol`).
    pub candidate_tolerance: f64,
    /// Maximum number of shrink+expansion rounds per initialisation.
    pub max_rounds: usize,
}

impl Default for SeaConfig {
    fn default() -> Self {
        SeaConfig {
            shrink_stop: ReplicatorStop::ObjectiveImprovement { eps: 1e-6 },
            shrink_max_iters: 10_000,
            candidate_tolerance: 1e-9,
            max_rounds: 1_000,
        }
    }
}

/// Result of one SEA run (a single initialisation).
#[derive(Debug, Clone)]
pub struct SeaRun {
    /// Final embedding.
    pub embedding: Embedding,
    /// Final objective `f(x)`.
    pub objective: Weight,
    /// Number of shrink+expansion rounds.
    pub rounds: usize,
    /// Number of expansion steps that decreased the objective.
    pub expansion_errors: usize,
}

/// Result of a full SEA sweep over many initialisations.
#[derive(Debug, Clone)]
pub struct SeaResult {
    /// The best embedding found over all initialisations.
    pub best: Embedding,
    /// Its objective.
    pub best_objective: Weight,
    /// Total number of expansion errors over all initialisations.
    pub expansion_errors: usize,
    /// Number of initialisations performed.
    pub initializations: usize,
    /// Every distinct local solution found (one per initialisation), useful for the
    /// all-cliques analyses (Fig. 3); kept only when `collect_all` is requested.
    pub all_solutions: Vec<Embedding>,
}

/// The original SEA solver.
#[derive(Debug, Clone, Default)]
pub struct OriginalSea {
    config: SeaConfig,
}

impl OriginalSea {
    /// Creates a solver with the given configuration.
    pub fn new(config: SeaConfig) -> Self {
        OriginalSea { config }
    }

    /// Access to the configuration.
    pub fn config(&self) -> &SeaConfig {
        &self.config
    }

    /// Runs SEA from a single initial embedding.
    ///
    /// `g` must be non-negatively weighted (the replicator dynamic requires it); in the
    /// DCS pipeline SEA is always run on `G_{D+}`.
    pub fn run_from(&self, g: &SignedGraph, init: Embedding) -> SeaRun {
        assert_eq!(
            g.num_negative_edges(),
            0,
            "the original SEA requires non-negative edge weights (run it on G_D+)"
        );
        let mut x = init;
        let mut rounds = 0usize;
        let mut expansion_errors = 0usize;
        loop {
            rounds += 1;
            // Shrink.
            let shrink =
                replicator_dynamics(g, &x, self.config.shrink_stop, self.config.shrink_max_iters);
            x = shrink.embedding;
            x.prune(1e-12);
            // Expansion candidates.
            let z = expansion_candidates(g, &x, self.config.candidate_tolerance);
            if z.is_empty() || rounds >= self.config.max_rounds {
                let objective = x.affinity(g);
                return SeaRun {
                    embedding: x,
                    objective,
                    rounds,
                    expansion_errors,
                };
            }
            let out = expansion_step(g, &x, &z);
            if out.is_error() {
                expansion_errors += 1;
            }
            x = out.embedding;
            x.prune(1e-12);
        }
    }

    /// Runs SEA once per vertex of `g` (the original initialisation scheme) and returns
    /// the best solution.  Set `collect_all` to keep every per-initialisation solution
    /// (needed by the clique-census experiments).
    ///
    /// `limit` optionally caps the number of initialisations (in vertex-id order); the
    /// paper's comparator uses all `n`, which is exactly why it is slow on large graphs.
    pub fn run_all_vertices(
        &self,
        g: &SignedGraph,
        limit: Option<usize>,
        collect_all: bool,
    ) -> SeaResult {
        let n = g.num_vertices();
        let limit = limit.unwrap_or(n).min(n);
        let mut best = Embedding::default();
        let mut best_objective = 0.0;
        let mut expansion_errors = 0;
        let mut all_solutions = Vec::new();
        let mut initializations = 0;
        for u in 0..limit as VertexId {
            // Isolated vertices (in G_D+) can never seed anything better than 0.
            if g.degree(u) == 0 {
                continue;
            }
            initializations += 1;
            let run = self.run_from(g, Embedding::singleton(u));
            expansion_errors += run.expansion_errors;
            if run.objective > best_objective {
                best_objective = run.objective;
                best = run.embedding.clone();
            }
            if collect_all {
                all_solutions.push(run.embedding);
            }
        }
        SeaResult {
            best,
            best_objective,
            expansion_errors,
            initializations,
            all_solutions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// K5 with unit weights plus a pendant path; the affinity optimum is the uniform
    /// embedding on the K5 with value 1 - 1/5 = 0.8 (Motzkin–Straus).
    fn k5_with_path() -> SignedGraph {
        let mut b = GraphBuilder::new(9);
        for u in 0..5u32 {
            for v in (u + 1)..5u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.add_edge(4, 5, 0.4);
        b.add_edge(5, 6, 0.4);
        b.add_edge(6, 7, 0.4);
        b.add_edge(7, 8, 0.4);
        b.build()
    }

    #[test]
    fn finds_the_clique() {
        let g = k5_with_path();
        let sea = OriginalSea::default();
        let res = sea.run_all_vertices(&g, None, false);
        assert!(
            (res.best_objective - 0.8).abs() < 1e-3,
            "objective {}",
            res.best_objective
        );
        let support = res.best.support();
        assert_eq!(support, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_init_from_clique_vertex() {
        let g = k5_with_path();
        let sea = OriginalSea::default();
        let run = sea.run_from(&g, Embedding::singleton(0));
        assert!(run.objective >= 0.8 - 1e-3);
        assert!(run.rounds >= 1);
    }

    #[test]
    fn collects_all_solutions() {
        let g = k5_with_path();
        let sea = OriginalSea::default();
        let res = sea.run_all_vertices(&g, None, true);
        assert_eq!(res.all_solutions.len(), res.initializations);
        assert!(res.initializations <= g.num_vertices());
    }

    #[test]
    fn limit_caps_initializations() {
        let g = k5_with_path();
        let sea = OriginalSea::default();
        let res = sea.run_all_vertices(&g, Some(2), false);
        assert!(res.initializations <= 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let g = GraphBuilder::from_edges(2, vec![(0, 1, -1.0)]);
        OriginalSea::default().run_from(&g, Embedding::singleton(0));
    }

    #[test]
    fn strict_shrink_never_errors() {
        // With the KKT-gap shrink rule the expansion should never decrease the objective.
        let g = k5_with_path();
        let sea = OriginalSea::new(SeaConfig {
            shrink_stop: ReplicatorStop::KktGap { eps: 1e-10 },
            shrink_max_iters: 100_000,
            ..SeaConfig::default()
        });
        let res = sea.run_all_vertices(&g, None, false);
        assert_eq!(res.expansion_errors, 0);
        assert!((res.best_objective - 0.8).abs() < 1e-3);
    }
}

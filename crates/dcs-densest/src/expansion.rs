//! The SEA expansion step (Appendix A of the paper, originally Liu et al. 2013).
//!
//! Given a *local* KKT point `x` on its support `S_x` and a set `Z` of vertices whose
//! gradient exceeds `λ = 2f(x)`, the expansion moves mass from `S_x` onto `Z` along the
//! direction
//!
//! ```text
//!   b_i = −x_i·s   for i ∈ S_x,      b_i = γ_i   for i ∈ Z,
//!   γ_i = (Dx)_i − f(x),   s = Σ_{i∈Z} γ_i .
//! ```
//!
//! Since `Σ_i b_i = 0` the iterate stays on the simplex for any step `τ ∈ [0, 1/s]`.
//! The objective change is the quadratic
//! `f(x+τb) − f(x) = 2ζτ − a·τ²` with `ζ = Σ γ_i²` and
//! `a = f(x)·s² + 2sζ − ω`, `ω = Σ_{i,j∈Z} γ_i γ_j D(i,j)`  — note the paper's Appendix
//! states the linear term with a flipped sign; the derivation (and the original SEA
//! paper) give `+2ζτ`, which is what we implement, otherwise the step could never
//! increase the objective.
//!
//! The optimal step is `τ = 1/s` when `a ≤ 0` and `min(1/s, ζ/a)` otherwise.
//!
//! The step is valid for arbitrary symmetric matrices (no non-negativity needed), so the
//! same routine serves both the original SEA (`dcs-densest::sea`) and the paper's SEACD
//! (`dcs-core`).  **However**, the objective is only guaranteed to increase if `x` really
//! is a local KKT point on its support — when the shrink stage stops early (the loose
//! objective-improvement rule) the expansion may *decrease* the objective.  Those events
//! are the "errors in expansion" the paper reports in Table VII / Fig. 2(b), and the
//! caller can detect them by comparing [`ExpansionOutcome::objective_after`] with
//! [`ExpansionOutcome::objective_before`].

use dcs_graph::{GraphView, SignedGraph, VertexId};
use rustc_hash::FxHashMap;

use crate::simplex::Embedding;

/// Result of one expansion step.
#[derive(Debug, Clone)]
pub struct ExpansionOutcome {
    /// The embedding after the step.
    pub embedding: Embedding,
    /// Objective before the step.
    pub objective_before: f64,
    /// Objective after the step.
    pub objective_after: f64,
    /// The step length `τ` that was taken (0 when `Z` was empty).
    pub tau: f64,
}

impl ExpansionOutcome {
    /// `true` when the step decreased the objective (an "error in expansion").
    pub fn is_error(&self) -> bool {
        self.objective_after < self.objective_before - 1e-12
    }
}

/// Performs one SEA expansion step of `x` by the vertex set `expand_by` (the set `Z`).
///
/// Vertices of `expand_by` that are already in the support are ignored.  If `Z` is empty
/// (or the direction degenerates, `s ≤ 0`) the embedding is returned unchanged.
pub fn expansion_step(g: &SignedGraph, x: &Embedding, expand_by: &[VertexId]) -> ExpansionOutcome {
    let objective_before = x.affinity(g);
    let z: Vec<VertexId> = expand_by
        .iter()
        .copied()
        .filter(|&v| x.get(v) == 0.0)
        .collect();
    if z.is_empty() {
        return ExpansionOutcome {
            embedding: x.clone(),
            objective_before,
            objective_after: objective_before,
            tau: 0.0,
        };
    }

    // γ_i for i ∈ Z.
    let mut gamma: FxHashMap<VertexId, f64> = FxHashMap::default();
    for &i in &z {
        gamma.insert(i, x.weighted_sum_at(g, i) - objective_before);
    }
    let s: f64 = gamma.values().sum();
    if s <= 0.0 {
        return ExpansionOutcome {
            embedding: x.clone(),
            objective_before,
            objective_after: objective_before,
            tau: 0.0,
        };
    }
    let zeta: f64 = gamma.values().map(|g| g * g).sum();
    // ω = Σ_{i,j∈Z} γ_i γ_j D(i,j): iterate the adjacency of Z members.
    let mut omega = 0.0;
    for (&i, &gi) in &gamma {
        for e in g.neighbors(i) {
            if let Some(&gj) = gamma.get(&e.neighbor) {
                omega += gi * gj * e.weight;
            }
        }
    }
    let a = objective_before * s * s + 2.0 * s * zeta - omega;
    let tau = if a <= 0.0 {
        1.0 / s
    } else {
        (1.0 / s).min(zeta / a)
    };

    // Apply x ← x + τ·b.
    let mut new_x = x.clone();
    let shrink_factor = 1.0 - tau * s;
    for (v, xv) in x.iter() {
        new_x.set(v, xv * shrink_factor);
    }
    for (&i, &gi) in &gamma {
        new_x.set(i, tau * gi);
    }
    new_x.normalize();
    let objective_after = new_x.affinity(g);

    ExpansionOutcome {
        embedding: new_x,
        objective_before,
        objective_after,
        tau,
    }
}

/// Computes the expansion candidate set `Z = {i ∈ V | ∇_i f(x) > λ + tol}` with
/// `λ = 2 f(x)`, looking only at vertices adjacent to the support (all others have a zero
/// gradient on a non-negatively weighted graph, and cannot improve a KKT point on a
/// signed graph either).
pub fn expansion_candidates(g: &SignedGraph, x: &Embedding, tol: f64) -> Vec<VertexId> {
    expansion_candidates_view(GraphView::full(g), x, tol)
}

/// [`expansion_candidates`] on a [`GraphView`]: dead vertices are never candidates
/// and filtered edges do not contribute to gradients, so the set `Z` is exactly the
/// one the materialised view would produce.  The embedding's support must be alive in
/// the view (the solvers only ever seed alive vertices).
pub fn expansion_candidates_view(view: GraphView<'_>, x: &Embedding, tol: f64) -> Vec<VertexId> {
    let lambda = 2.0 * x.affinity_view(view);
    let mut seen: FxHashMap<VertexId, ()> = FxHashMap::default();
    let mut z = Vec::new();
    for (u, _) in x.iter() {
        for e in view.neighbors(u) {
            let v = e.neighbor;
            if x.get(v) > 0.0 || seen.contains_key(&v) {
                continue;
            }
            seen.insert(v, ());
            if 2.0 * x.weighted_sum_at_view(view, v) > lambda + tol {
                z.push(v);
            }
        }
    }
    z.sort_unstable();
    z
}

/// [`expansion_candidates_view`] scanned by `threads` workers over disjoint vertex
/// ranges.
///
/// **Bit-identical to the sequential scan.** Each worker walks a contiguous alive
/// range and keeps the unsupported vertices with at least one supported neighbour
/// whose gradient beats `λ + tol` — the same set the sequential scan reaches through
/// the support's adjacency lists, because edge visibility in a [`GraphView`] is
/// symmetric.  Per-range hits are already ascending, so concatenating the ranges in
/// order reproduces the sequential sorted output exactly.
pub fn expansion_candidates_view_par(
    view: GraphView<'_>,
    x: &Embedding,
    tol: f64,
    threads: usize,
) -> Vec<VertexId> {
    if threads <= 1 {
        return expansion_candidates_view(view, x, tol);
    }
    let lambda = 2.0 * x.affinity_view(view);
    let n = view.num_vertices();
    let chunk = n.div_ceil(threads).max(1);

    let per_range: Vec<Vec<VertexId>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let v0 = (t * chunk).min(n);
                    let v1 = ((t + 1) * chunk).min(n);
                    let mut hits = Vec::new();
                    for v in v0..v1 {
                        let v = v as VertexId;
                        if !view.is_alive(v) || x.get(v) > 0.0 {
                            continue;
                        }
                        if !view.neighbors(v).any(|e| x.get(e.neighbor) > 0.0) {
                            continue;
                        }
                        if 2.0 * x.weighted_sum_at_view(view, v) > lambda + tol {
                            hits.push(v);
                        }
                    }
                    hits
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("expansion scan worker panicked"))
            .collect()
    });

    let mut z = Vec::with_capacity(per_range.iter().map(Vec::len).sum());
    for hits in per_range {
        z.extend(hits);
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    fn k4() -> SignedGraph {
        let mut b = GraphBuilder::new(4);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        b.build()
    }

    #[test]
    fn expansion_from_edge_into_clique_improves() {
        // Uniform on {0,1} (a local KKT point of K4 restricted to {0,1}, f=0.5); vertices
        // 2 and 3 have gradient 2·(0.5+0.5)=2 > λ=1 → expanding should increase f.
        let g = k4();
        let x = Embedding::uniform(&[0, 1]);
        let z = expansion_candidates(&g, &x, 1e-12);
        assert_eq!(z, vec![2, 3]);
        let out = expansion_step(&g, &x, &z);
        assert!(out.objective_after > out.objective_before);
        assert!(!out.is_error());
        assert!(out.embedding.support_size() >= 3);
        // Mass is conserved.
        assert!((out.embedding.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_z_is_noop() {
        let g = k4();
        let x = Embedding::uniform(&[0, 1, 2, 3]); // global optimum, no candidates
        let z = expansion_candidates(&g, &x, 1e-9);
        assert!(z.is_empty());
        let out = expansion_step(&g, &x, &z);
        assert_eq!(out.tau, 0.0);
        assert!((out.objective_after - out.objective_before).abs() < 1e-12);
    }

    #[test]
    fn already_supported_vertices_ignored() {
        let g = k4();
        let x = Embedding::uniform(&[0, 1]);
        let out = expansion_step(&g, &x, &[0, 1]);
        assert_eq!(out.tau, 0.0);
        assert_eq!(out.embedding, x);
    }

    #[test]
    fn expansion_error_detectable_when_not_kkt() {
        // Non-KKT starting point: heavily skewed mass on {0,1} of a path 0-1-2 with a
        // much heavier far edge; expanding towards 2 from a non-KKT x can reduce f.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (1, 2, 10.0)]);
        // x is NOT a local KKT point on {0,1} (gradients differ).
        let x = Embedding::from_weights(vec![(0, 0.95), (1, 0.05)]);
        let z = expansion_candidates(&g, &x, 1e-12);
        assert_eq!(z, vec![2]);
        let out = expansion_step(&g, &x, &z);
        // Either it improves or it is flagged as an error — never silently wrong.
        if out.objective_after < out.objective_before {
            assert!(out.is_error());
        }
    }

    #[test]
    fn candidates_respect_tolerance() {
        let g = k4();
        let x = Embedding::uniform(&[0, 1]);
        // With an absurdly large tolerance nothing qualifies.
        assert!(expansion_candidates(&g, &x, 100.0).is_empty());
    }

    #[test]
    fn works_with_negative_weights() {
        // Vertex 2 is attached to the support by a positive and a negative edge; its
        // gradient is 2·(0.5·3 − 0.5·1) = 2 > λ = 2·f = 2·0.5 = 1, so it is a candidate,
        // and the expansion must still conserve mass and compute a finite objective.
        let g = GraphBuilder::from_edges(3, vec![(0, 1, 1.0), (0, 2, 3.0), (1, 2, -1.0)]);
        let x = Embedding::uniform(&[0, 1]);
        let z = expansion_candidates(&g, &x, 1e-12);
        assert_eq!(z, vec![2]);
        let out = expansion_step(&g, &x, &z);
        assert!((out.embedding.mass() - 1.0).abs() < 1e-9);
        assert!(out.objective_after.is_finite());
    }
}

//! Greedy peeling for the maximum-average-degree subgraph (Algorithm 1 of the paper).
//!
//! Starting from the full vertex set, the algorithm repeatedly removes the vertex with
//! the minimum current weighted degree and remembers the best prefix by average degree
//! `ρ(S) = W(S)/|S|` (degree-sum convention, see [`dcs_graph::SignedGraph::total_degree`]).
//!
//! On graphs with non-negative weights this is Charikar's classical 2-approximation of
//! the densest subgraph.  On signed graphs (the difference graph `G_D`) no approximation
//! guarantee exists — the DCSAD problem is `O(n^{1-ε})`-inapproximable — but the peel is
//! still a useful candidate generator, which is exactly how `DCSGreedy` uses it.

use dcs_graph::{SignedGraph, VertexId, Weight};

use crate::peel::{LazyHeapQueue, MinDegreeQueue, RescanQueue};

/// Result of a greedy peeling run.
#[derive(Debug, Clone, PartialEq)]
pub struct PeelingResult {
    /// The best vertex subset encountered during the peel (sorted ascending).
    pub subset: Vec<VertexId>,
    /// Its average degree `ρ(S) = W(S)/|S|` (degree-sum convention).
    pub average_degree: Weight,
}

/// Optional per-step trace of a peeling run (used by ablation benches and tests).
#[derive(Debug, Clone, Default)]
pub struct PeelingProfile {
    /// Vertices in removal order.
    pub removal_order: Vec<VertexId>,
    /// `densities[i]` is the average degree of the subset *before* the i-th removal;
    /// `densities[0]` is the density of the full vertex set.
    pub densities: Vec<Weight>,
}

/// Runs greedy peeling with the lazy-heap priority structure.
pub fn greedy_peeling(g: &SignedGraph) -> PeelingResult {
    peel_impl::<LazyHeapQueue, _>(g, false, |_| false).0
}

/// Runs greedy peeling with a **stop callback**: `stop(units)` is invoked once per
/// vertex removal (with `units = 1`) and peeling aborts as soon as it returns `true`.
///
/// The returned result is the best prefix seen *so far* — always a valid subset of the
/// graph, just not necessarily the full peel's best.  The second component reports
/// whether the peel was interrupted.  This is the interruption primitive the
/// `dcs-core` engine layer builds its deadline/cancellation/budget support on.
pub fn greedy_peeling_until<F: FnMut(u64) -> bool>(
    g: &SignedGraph,
    stop: F,
) -> (PeelingResult, bool) {
    let (result, _, interrupted) = peel_impl::<LazyHeapQueue, _>(g, false, stop);
    (result, interrupted)
}

/// Runs greedy peeling and also returns the full removal trace.
pub fn greedy_peeling_with_profile(g: &SignedGraph) -> (PeelingResult, PeelingProfile) {
    let (res, profile, _) = peel_impl::<LazyHeapQueue, _>(g, true, |_| false);
    (res, profile.expect("profile requested"))
}

/// Runs greedy peeling with the naive re-scan structure (ablation baseline only).
pub fn greedy_peeling_rescan(g: &SignedGraph) -> PeelingResult {
    peel_impl::<RescanQueue, _>(g, false, |_| false).0
}

/// Runs greedy peeling with the segment-tree priority structure suggested by the paper.
pub fn greedy_peeling_segment_tree(g: &SignedGraph) -> PeelingResult {
    peel_impl::<crate::peel::SegmentTreeQueue, _>(g, false, |_| false).0
}

fn peel_impl<Q: MinDegreeQueue, F: FnMut(u64) -> bool>(
    g: &SignedGraph,
    want_profile: bool,
    mut stop: F,
) -> (PeelingResult, Option<PeelingProfile>, bool) {
    let n = g.num_vertices();
    if n == 0 {
        return (
            PeelingResult {
                subset: Vec::new(),
                average_degree: 0.0,
            },
            want_profile.then(PeelingProfile::default),
            false,
        );
    }

    let degrees: Vec<Weight> = (0..n).map(|v| g.weighted_degree(v as VertexId)).collect();
    // W(S) in the degree-sum convention = Σ_v deg(v) for the current S.
    let mut total_degree: Weight = degrees.iter().sum();
    let mut queue = Q::from_degrees(&degrees);
    let mut alive = vec![true; n];
    let mut alive_count = n;

    let mut best_density = total_degree / n as Weight;
    let mut best_size = n; // the best prefix is identified by how many vertices remain
    let mut removal_order: Vec<VertexId> = Vec::with_capacity(n);
    let mut densities: Vec<Weight> = Vec::new();
    if want_profile {
        densities.push(best_density);
    }

    let mut interrupted = false;
    while alive_count > 1 {
        if stop(1) {
            interrupted = true;
            break;
        }
        let (v, _deg) = queue.pop_min().expect("queue not empty");
        alive[v as usize] = false;
        // Removing v removes every edge (v, u) with u alive: the degree-sum drops by
        // twice the degree of v within the remaining subgraph.
        let mut removed_weight = 0.0;
        for e in g.neighbors(v) {
            if alive[e.neighbor as usize] {
                removed_weight += e.weight;
                queue.adjust(e.neighbor, -e.weight);
            }
        }
        total_degree -= 2.0 * removed_weight;
        alive_count -= 1;
        removal_order.push(v);

        let density = total_degree / alive_count as Weight;
        if want_profile {
            densities.push(density);
        }
        if density > best_density {
            best_density = density;
            best_size = alive_count;
        }
    }

    // A single vertex has density 0 by convention; if every encountered prefix had
    // negative density (possible on signed graphs) the best answer is the last surviving
    // vertex alone.
    if best_density < 0.0 {
        let last = (0..n as VertexId)
            .find(|&v| alive[v as usize])
            .expect("one vertex remains");
        let result = PeelingResult {
            subset: vec![last],
            average_degree: 0.0,
        };
        let profile = want_profile.then_some(PeelingProfile {
            removal_order,
            densities,
        });
        return (result, profile, interrupted);
    }

    // Reconstruct the best subset: the vertices not among the first (n - best_size)
    // removals.
    let removed_prefix = n - best_size;
    let mut in_best = vec![true; n];
    for &v in removal_order.iter().take(removed_prefix) {
        in_best[v as usize] = false;
    }
    let subset: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| in_best[v as usize])
        .collect();

    debug_assert_eq!(subset.len(), best_size);
    let result = PeelingResult {
        average_degree: best_density,
        subset,
    };
    let profile = want_profile.then_some(PeelingProfile {
        removal_order,
        densities,
    });
    (result, profile, interrupted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_graph::GraphBuilder;

    /// A 4-clique with unit weights attached to a long path: the clique is the densest
    /// subgraph (average degree 3) and greedy peeling finds it exactly.
    fn clique_with_tail() -> SignedGraph {
        let mut b = GraphBuilder::new(10);
        for u in 0..4u32 {
            for v in (u + 1)..4u32 {
                b.add_edge(u, v, 1.0);
            }
        }
        for v in 3..9u32 {
            b.add_edge(v, v + 1, 0.1);
        }
        b.build()
    }

    #[test]
    fn finds_planted_clique() {
        let g = clique_with_tail();
        let res = greedy_peeling(&g);
        assert_eq!(res.subset, vec![0, 1, 2, 3]);
        assert!((res.average_degree - 3.0).abs() < 1e-9);
    }

    #[test]
    fn heap_and_rescan_agree() {
        let g = clique_with_tail();
        let a = greedy_peeling(&g);
        let b = greedy_peeling_rescan(&g);
        let c = greedy_peeling_segment_tree(&g);
        assert_eq!(a.subset, b.subset);
        assert!((a.average_degree - b.average_degree).abs() < 1e-12);
        assert_eq!(a.subset, c.subset);
        assert!((a.average_degree - c.average_degree).abs() < 1e-12);
    }

    #[test]
    fn profile_is_consistent() {
        let g = clique_with_tail();
        let (res, profile) = greedy_peeling_with_profile(&g);
        assert_eq!(profile.removal_order.len(), g.num_vertices() - 1);
        assert_eq!(profile.densities.len(), g.num_vertices());
        let best_from_profile = profile
            .densities
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((best_from_profile - res.average_degree).abs() < 1e-12);
        // Re-evaluate the returned subset against the graph.
        assert!((g.average_degree(&res.subset) - res.average_degree).abs() < 1e-9);
    }

    #[test]
    fn handles_negative_weights() {
        // Two vertices joined by a +10 edge, plus a hub connected to everything with -1:
        // the peel must shed the hub and keep the heavy pair.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 10.0);
        for v in 0..4u32 {
            b.add_edge(4, v, -1.0);
        }
        let g = b.build();
        let res = greedy_peeling(&g);
        assert_eq!(res.subset, vec![0, 1]);
        assert!((res.average_degree - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_vertex_and_empty() {
        let g = SignedGraph::empty(1);
        let res = greedy_peeling(&g);
        assert_eq!(res.subset, vec![0]);
        assert_eq!(res.average_degree, 0.0);

        let g = SignedGraph::empty(0);
        let res = greedy_peeling(&g);
        assert!(res.subset.is_empty());
    }

    #[test]
    fn interruptible_peel_returns_best_so_far() {
        let g = clique_with_tail();
        // Never stopped: identical to the plain peel.
        let (full, interrupted) = greedy_peeling_until(&g, |_| false);
        assert!(!interrupted);
        assert_eq!(full, greedy_peeling(&g));
        // Stopped after a few removals: still a valid subset with a consistent density.
        let mut budget = 3u64;
        let (partial, interrupted) = greedy_peeling_until(&g, |units| {
            budget = budget.saturating_sub(units);
            budget == 0
        });
        assert!(interrupted);
        assert!(!partial.subset.is_empty());
        assert!(partial
            .subset
            .iter()
            .all(|&v| (v as usize) < g.num_vertices()));
        assert!((g.average_degree(&partial.subset) - partial.average_degree).abs() < 1e-9);
        // Stopped immediately: the full vertex set (nothing peeled yet).
        let (none, interrupted) = greedy_peeling_until(&g, |_| true);
        assert!(interrupted);
        assert_eq!(none.subset.len(), g.num_vertices());
    }

    #[test]
    fn two_approximation_on_positive_graphs() {
        // Random-ish small positive graph; compare against brute force.
        let mut b = GraphBuilder::new(8);
        let edges = [
            (0, 1, 3.0),
            (1, 2, 1.0),
            (2, 3, 2.0),
            (3, 0, 1.5),
            (0, 2, 0.5),
            (4, 5, 4.0),
            (5, 6, 1.0),
            (6, 7, 2.5),
            (4, 6, 3.5),
            (1, 5, 0.2),
        ];
        for (u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        let g = b.build();
        // Brute force optimum
        let n = g.num_vertices();
        let mut best = 0.0f64;
        for mask in 1u32..(1 << n) {
            let subset: Vec<u32> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
            best = best.max(g.average_degree(&subset));
        }
        let res = greedy_peeling(&g);
        assert!(res.average_degree * 2.0 + 1e-9 >= best);
        assert!(res.average_degree <= best + 1e-9);
    }
}
